//! Property-based tests for the platform models.

use pim_baselines::bitserial::BitSerialModel;
use pim_baselines::coruscant::CoruscantModel;
use pim_baselines::cpu::CpuModel;
use pim_baselines::gpu::GpuModel;
use pim_baselines::platform::{Platform, PlatformKind, Workload};
use pim_device::schedule::WorkCounts;
use pim_workloads::polybench::Kernel;
use pim_workloads::profile::KernelProfile;
use proptest::prelude::*;

fn profile(flops: f64, bytes: f64, small: bool) -> KernelProfile {
    KernelProfile {
        name: "p".into(),
        flops,
        bytes,
        working_set: bytes / 2.0,
        small,
        cpu_efficiency: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Host models are monotone in flops and bytes.
    #[test]
    fn cpu_monotone(flops in 1e6f64..1e10, bytes in 1e4f64..1e9, small in any::<bool>()) {
        for model in [CpuModel::cpu_rm(), CpuModel::cpu_dram()] {
            let base = model.run_profile(&profile(flops, bytes, small));
            let more_flops = model.run_profile(&profile(flops * 2.0, bytes, small));
            let more_bytes = model.run_profile(&profile(flops, bytes * 2.0, small));
            // When compute hides entirely under memory, the total equals the
            // memory time for both points; allow FP rounding at equality.
            let eps = 1e-9 * base.total_ns();
            prop_assert!(more_flops.total_ns() >= base.total_ns() - eps);
            prop_assert!(more_bytes.total_ns() >= base.total_ns() - eps);
            prop_assert!(more_flops.total_pj() > base.total_pj());
            prop_assert!(base.total_ns() > 0.0 && base.total_pj() > 0.0);
        }
    }

    /// The GPU's transfer fraction falls as arithmetic intensity rises.
    #[test]
    fn gpu_transfer_fraction_falls_with_intensity(bytes in 1e6f64..1e8) {
        let gpu = GpuModel::paper_default();
        let lean = gpu.transfer_fraction(&profile(bytes * 0.25, bytes, true));
        let dense = gpu.transfer_fraction(&profile(bytes * 500.0, bytes, false));
        prop_assert!(dense < lean, "dense {dense} vs lean {lean}");
    }

    /// PIM op models scale linearly in work (no waves: plain counts).
    #[test]
    fn pim_work_models_linear(muls in 1u64..10_000_000, adds in 0u64..10_000_000) {
        let w1 = WorkCounts { word_muls: muls, word_adds: adds, elements_moved: 0 };
        let w2 = WorkCounts { word_muls: 2 * muls, word_adds: 2 * adds, elements_moved: 0 };
        let cor = CoruscantModel::paper_default();
        prop_assert!((cor.run_work(&w2).total_ns() - 2.0 * cor.run_work(&w1).total_ns()).abs()
            < 1e-6 * cor.run_work(&w2).total_ns().max(1.0));
        for bs in [BitSerialModel::elp2im(), BitSerialModel::felix()] {
            let r1 = bs.run_work(&w1);
            let r2 = bs.run_work(&w2);
            prop_assert!((r2.total_pj() - 2.0 * r1.total_pj()).abs() < 1e-6 * r2.total_pj().max(1.0));
        }
    }

    /// Every platform prices every kernel with positive, finite results at
    /// arbitrary scales.
    #[test]
    fn platforms_total_and_finite(idx in 0usize..9, scale in 0.01f64..0.2) {
        let workload = Workload::from_kernel(&Kernel::ALL[idx].scaled(scale));
        for kind in PlatformKind::FIGURE_17 {
            let r = Platform::new(kind).unwrap().run(&workload).unwrap();
            prop_assert!(r.total_ns().is_finite() && r.total_ns() > 0.0, "{kind}");
            prop_assert!(r.total_pj().is_finite() && r.total_pj() > 0.0, "{kind}");
        }
    }

    /// Speedups are scale-stable for the large kernels: doubling the
    /// problem does not flip who wins.
    #[test]
    fn ordering_stable_across_scales(scale in 0.2f64..0.4) {
        let run = |s: f64, kind: PlatformKind| {
            let w = Workload::from_kernel(&Kernel::Gemm.scaled(s));
            Platform::new(kind).unwrap().run(&w).unwrap().total_ns()
        };
        for kind in [PlatformKind::StPimE, PlatformKind::CpuRm] {
            let stpim_small = run(scale, PlatformKind::StPim);
            let other_small = run(scale, kind);
            let stpim_big = run(scale * 2.0, PlatformKind::StPim);
            let other_big = run(scale * 2.0, kind);
            prop_assert_eq!(
                stpim_small < other_small,
                stpim_big < other_big,
                "{} ordering flips between scales", kind
            );
        }
    }
}
