fn main() {
    use pim_baselines::platform::{Platform, PlatformKind, Workload};
    use pim_workloads::polybench::Kernel;
    for kernel in [Kernel::Gemm, Kernel::Atax] {
        println!("=== {} (full size) ===", kernel.name());
        let w = Workload::from_kernel(&kernel.paper_instance());
        let mut cpu_rm = 0.0;
        for k in PlatformKind::FIGURE_17 {
            let r = Platform::new(k).unwrap().run(&w).unwrap();
            if k == PlatformKind::CpuRm {
                cpu_rm = r.total_ns();
            }
            println!("{:10} {:14.3} ms  speedup {:8.2}x  {:12.3} mJ  t[p={:.2} r={:.2} w={:.2} s={:.2} o={:.2}]",
                k.name(), r.total_ns()/1e6, cpu_rm/r.total_ns(), r.total_pj()/1e9,
                r.time.process_ns/r.total_ns(), r.time.read_ns/r.total_ns(),
                r.time.write_ns/r.total_ns(), r.time.shift_ns/r.total_ns(),
                r.time.overlapped_ns/r.total_ns());
        }
    }
}
