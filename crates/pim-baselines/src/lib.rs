//! Comparison platforms for the StreamPIM evaluation (paper §V-A).
//!
//! Seven platforms are modelled, all pricing *the same work* derived from a
//! workload's profile/schedule:
//!
//! | Platform    | Module        | Notes                                        |
//! |-------------|---------------|----------------------------------------------|
//! | CPU-RM      | [`cpu`]       | 16-core x86 host on racetrack main memory    |
//! | CPU-DRAM    | [`cpu`]       | same host on DDR4-2400                       |
//! | GPU         | [`gpu`]       | discrete GPU with PCIe staging (Figure 3b)   |
//! | StPIM       | `pim-device`  | the paper's design (wrapped by [`platform`]) |
//! | StPIM-e     | `pim-device`  | electrical in-subarray buses                 |
//! | CORUSCANT   | [`coruscant`] | transverse-read process-in-RM (MICRO'22)     |
//! | ELP2IM      | [`bitserial`] | bit-serial process-in-DRAM (HPCA'20)         |
//! | FELIX       | [`bitserial`] | bit-serial process-in-NVM (ICCAD'18)         |
//!
//! Machine parameters live in [`calib`] — one global calibration, never
//! tuned per workload (see `DESIGN.md` §6).

pub mod bitserial;
pub mod calib;
pub mod coruscant;
pub mod cpu;
pub mod gpu;
pub mod platform;

pub use calib::HostCalib;
pub use platform::{
    add_pim_static_power, dnn_end_to_end, Platform, PlatformKind, Workload, PIM_STATIC_W,
};
