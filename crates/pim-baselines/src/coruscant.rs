//! CORUSCANT: the state-of-the-art transverse-read process-in-RM baseline
//! (Ollivier et al., MICRO 2022; paper §II-B and Figure 4).
//!
//! CORUSCANT computes with CMOS units fed by **transverse reads** (TR): a TR
//! senses a whole span of domains at once, giving the one-counts that its
//! counter-based adders consume. Every arithmetic step still converts
//! between magnetic and electrical form — TRs to fetch, writes to store the
//! intermediate partial results — and RM writes are the slowest, hungriest
//! operation in the technology. That conversion traffic is precisely what
//! StreamPIM eliminates; this model reproduces its cost.
//!
//! Operations are row-wide (all save tracks move in lockstep, so one
//! operation processes `words_per_row` elements in parallel), and — as in
//! the paper's evaluation — the platform is *idealized*: inter-subarray and
//! inter-bank data movement is free.

use pim_device::report::ExecReport;
use pim_device::schedule::{Schedule, WorkCounts};
use rm_core::{EnergyBreakdown, EnergyParams, OpCounters, TimeBreakdown, TimingParams};
use serde::{Deserialize, Serialize};

/// CMOS counter-datapath latency of one row-wide multiply, ns. Chosen so
/// the compute share of a multiply is ~30% (Figure 4a).
const CMOS_MUL_NS: f64 = 12.1;
/// CMOS counter-datapath energy of one row-wide multiply, pJ (compute
/// share ~29%, Figure 4b).
const CMOS_MUL_PJ: f64 = 13.4;
/// CMOS latency of one row-wide add, ns.
const CMOS_ADD_NS: f64 = 4.5;
/// CMOS energy of one row-wide add, pJ.
const CMOS_ADD_PJ: f64 = 7.7;

/// The CORUSCANT platform model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoruscantModel {
    /// Element width in bits.
    pub word_bits: u32,
    /// Words processed per row-wide operation.
    pub words_per_row: u32,
    /// PIM subarrays working in parallel (identical to StreamPIM's 512 for
    /// fairness, per §V-A).
    pub subarrays: u32,
    /// RM timing constants.
    pub timing: TimingParams,
    /// RM energy constants.
    pub energy: EnergyParams,
}

/// Cost of one row-wide operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RowOpCost {
    /// Transverse reads.
    pub tr: f64,
    /// RM writes (intermediate partial results + final result).
    pub writes: f64,
    /// Shift steps.
    pub shifts: f64,
    /// CMOS datapath time, ns.
    pub cmos_ns: f64,
    /// CMOS datapath energy, pJ.
    pub cmos_pj: f64,
}

impl CoruscantModel {
    /// The paper's configuration: 8-bit words, 512-track rows, 512 PIM
    /// subarrays, Table III constants.
    pub fn paper_default() -> Self {
        CoruscantModel {
            word_bits: 8,
            words_per_row: 64,
            subarrays: 512,
            timing: TimingParams::paper_default(),
            energy: EnergyParams::paper_default(),
        }
    }

    /// Cost of one row-wide multiplication: transverse reads fetch both
    /// operands' counts in bulk (that is CORUSCANT's key trick — TR counts
    /// a whole span in one sense), the CMOS counter datapath multiplies,
    /// and the product plus carry row are written back.
    pub fn mul_cost(&self) -> RowOpCost {
        RowOpCost {
            tr: 1.5,
            writes: 2.0,
            shifts: 1.0,
            cmos_ns: CMOS_MUL_NS,
            cmos_pj: CMOS_MUL_PJ,
        }
    }

    /// Cost of one row-wide addition: one TR per the second operand (the
    /// first is already latched), one write for the sum, one re-align
    /// shift.
    pub fn add_cost(&self) -> RowOpCost {
        RowOpCost {
            tr: 1.0,
            writes: 1.0,
            shifts: 1.0,
            cmos_ns: CMOS_ADD_NS,
            cmos_pj: CMOS_ADD_PJ,
        }
    }

    fn op_time_ns(&self, c: &RowOpCost) -> f64 {
        c.tr * self.timing.transverse_read_ns
            + c.writes * self.timing.write_ns
            + c.shifts * self.timing.shift_ns
            + c.cmos_ns
    }

    /// Lanes available device-wide for independent dot products.
    fn lane_capacity(&self) -> u64 {
        self.subarrays as u64 * self.words_per_row as u64
    }

    /// Prices a schedule on this platform using the wave model: each dot
    /// product is a serial multiply-accumulate chain (every step's partial
    /// result is written back before the next can start — the conversion
    /// overhead StreamPIM's streaming pipeline eliminates), while
    /// independent dots fill the device's lanes.
    pub fn run_schedule(&self, schedule: &Schedule) -> ExecReport {
        let groups = schedule.op_groups();
        let mul = self.mul_cost();
        let add = self.add_cost();
        let mac_ns = self.op_time_ns(&mul) + self.op_time_ns(&add);

        let mut time_ns = 0.0;
        let mut rowops_mul = 0.0;
        let mut rowops_add = 0.0;
        for &(len, count) in &groups.dots {
            let waves = count.div_ceil(self.lane_capacity()) as f64;
            time_ns += waves * len as f64 * mac_ns;
            // Physical row operations: one per MAC step per active row.
            let active_rows = count.div_ceil(self.words_per_row as u64) as f64;
            rowops_mul += active_rows * len as f64;
            rowops_add += active_rows * len as f64;
        }
        // Element-wise work has no dependency chains: full row parallelism.
        let ew_rows = groups
            .elementwise_elements
            .div_ceil(self.words_per_row as u64) as f64;
        time_ns += (ew_rows / self.subarrays as f64).ceil() * self.op_time_ns(&add);
        rowops_add += ew_rows;

        self.report_from_rowops(time_ns, rowops_mul, rowops_add, schedule.work_counts())
    }

    fn report_from_rowops(
        &self,
        time_ns: f64,
        rowops_mul: f64,
        rowops_add: f64,
        w: WorkCounts,
    ) -> ExecReport {
        let mul = self.mul_cost();
        let add = self.add_cost();
        let mac_ns = self.op_time_ns(&mul) + self.op_time_ns(&add);
        // Split the wall-clock into the shares of the underlying ops.
        let share = |ns: f64| if mac_ns > 0.0 { ns / mac_ns } else { 0.0 };
        let tr_share = share((mul.tr + add.tr) * self.timing.transverse_read_ns);
        let wr_share = share((mul.writes + add.writes) * self.timing.write_ns);
        let sh_share = share((mul.shifts + add.shifts) * self.timing.shift_ns);
        let cm_share = share(mul.cmos_ns + add.cmos_ns);

        let time = TimeBreakdown {
            read_ns: time_ns * tr_share,
            write_ns: time_ns * wr_share,
            shift_ns: time_ns * sh_share,
            process_ns: time_ns * cm_share,
            overlapped_ns: 0.0,
        };
        let energy = EnergyBreakdown {
            read_pj: (rowops_mul * mul.tr + rowops_add * add.tr) * self.energy.transverse_read_pj,
            write_pj: (rowops_mul * mul.writes + rowops_add * add.writes) * self.energy.write_pj,
            shift_pj: (rowops_mul * mul.shifts + rowops_add * add.shifts) * self.energy.shift_pj,
            compute_pj: rowops_mul * mul.cmos_pj + rowops_add * add.cmos_pj,
            other_pj: 0.0,
        };
        let counters = OpCounters {
            transverse_reads: (rowops_mul * mul.tr + rowops_add * add.tr) as u64,
            writes: (rowops_mul * mul.writes + rowops_add * add.writes) as u64,
            shifts: (rowops_mul * mul.shifts + rowops_add * add.shifts) as u64,
            pim_muls: w.word_muls,
            pim_adds: w.word_adds,
            ..OpCounters::default()
        };
        ExecReport {
            time,
            energy,
            counters,
            ..ExecReport::default()
        }
    }

    /// Prices word-level work counts on this platform (fully parallel
    /// approximation; the Figure 4 micro-op breakdowns use this).
    pub fn run_work(&self, w: &WorkCounts) -> ExecReport {
        let row_muls = w.word_muls as f64 / self.words_per_row as f64;
        let row_adds = w.word_adds as f64 / self.words_per_row as f64;
        let mul = self.mul_cost();
        let add = self.add_cost();

        let scale = |ops: f64| ops / self.subarrays as f64;
        let time = TimeBreakdown {
            read_ns: scale(
                (row_muls * mul.tr + row_adds * add.tr) * self.timing.transverse_read_ns,
            ),
            write_ns: scale((row_muls * mul.writes + row_adds * add.writes) * self.timing.write_ns),
            shift_ns: scale((row_muls * mul.shifts + row_adds * add.shifts) * self.timing.shift_ns),
            process_ns: scale(row_muls * mul.cmos_ns + row_adds * add.cmos_ns),
            // TR/write/compute strictly alternate per step: no overlap.
            overlapped_ns: 0.0,
        };
        let energy = EnergyBreakdown {
            read_pj: (row_muls * mul.tr + row_adds * add.tr) * self.energy.transverse_read_pj,
            write_pj: (row_muls * mul.writes + row_adds * add.writes) * self.energy.write_pj,
            shift_pj: (row_muls * mul.shifts + row_adds * add.shifts) * self.energy.shift_pj,
            compute_pj: row_muls * mul.cmos_pj + row_adds * add.cmos_pj,
            other_pj: 0.0,
        };
        let counters = OpCounters {
            transverse_reads: (row_muls * mul.tr + row_adds * add.tr) as u64,
            writes: (row_muls * mul.writes + row_adds * add.writes) as u64,
            shifts: (row_muls * mul.shifts + row_adds * add.shifts) as u64,
            pim_muls: w.word_muls,
            pim_adds: w.word_adds,
            ..OpCounters::default()
        };
        ExecReport {
            time,
            energy,
            counters,
            ..ExecReport::default()
        }
    }

    /// Single row-wide multiply time, ns (for the Figure 4 breakdown).
    pub fn mul_time_ns(&self) -> f64 {
        self.op_time_ns(&self.mul_cost())
    }
}

impl Default for CoruscantModel {
    fn default() -> Self {
        CoruscantModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4a_breakdown_write_dominates() {
        let m = CoruscantModel::paper_default();
        let c = m.mul_cost();
        let total = m.op_time_ns(&c);
        let write_frac = c.writes * m.timing.write_ns / total;
        let compute_frac = c.cmos_ns / total;
        // Paper: write 51.0%, compute 30.1%.
        assert!(
            (0.45..0.56).contains(&write_frac),
            "write fraction {write_frac}"
        );
        assert!(
            (0.25..0.35).contains(&compute_frac),
            "compute fraction {compute_frac}"
        );
    }

    #[test]
    fn figure_4b_energy_transfer_dominates() {
        let m = CoruscantModel::paper_default();
        let w = WorkCounts {
            word_muls: 64_000,
            word_adds: 64_000,
            elements_moved: 0,
        };
        let r = m.run_work(&w);
        let transfer = r.energy.transfer_fraction();
        // Paper: arithmetic units consume only ~29% of energy.
        assert!(
            (0.62..0.78).contains(&transfer),
            "transfer energy fraction {transfer}"
        );
    }

    #[test]
    fn exclusive_transfer_time_is_large() {
        let m = CoruscantModel::paper_default();
        let w = WorkCounts {
            word_muls: 640_000,
            word_adds: 640_000,
            elements_moved: 0,
        };
        let r = m.run_work(&w);
        // Figure 19: CORUSCANT's exclusive data-transfer time dominates.
        assert!(r.time.exclusive_transfer_fraction() > 0.6);
        assert_eq!(r.time.overlapped_ns, 0.0);
    }

    #[test]
    fn work_scales_linearly() {
        let m = CoruscantModel::paper_default();
        let w1 = WorkCounts {
            word_muls: 1000,
            word_adds: 0,
            elements_moved: 0,
        };
        let w2 = WorkCounts {
            word_muls: 2000,
            word_adds: 0,
            elements_moved: 0,
        };
        let t1 = m.run_work(&w1).total_ns();
        let t2 = m.run_work(&w2).total_ns();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
