//! CPU host model: CPU-RM and CPU-DRAM platforms (paper Figure 3a).
//!
//! Execution time has two components:
//!
//! * **instruction/compute time** — flops plus the surrounding loop,
//!   address and load/store instructions, retired at the chip's effective
//!   rates; memory-bound kernels (matrix-vector) carry much more
//!   per-flop instruction overhead than blocked, vectorized matmuls;
//! * **memory time** — compulsory traffic, amplified when the working set
//!   spills the last-level cache, streamed at the main memory's bandwidth.
//!   Out-of-order execution and prefetching hide a calibrated fraction of
//!   it under compute; the rest is exposed stall time (the `mem` slice of
//!   Figure 3a).

use crate::calib::HostCalib;
use pim_device::report::ExecReport;
use pim_workloads::profile::KernelProfile;
use rm_core::{EnergyBreakdown, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// Which main memory backs the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MainMemory {
    /// DDR4-2400 DRAM.
    Dram,
    /// Racetrack memory.
    Rm,
}

/// The CPU host platform model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Machine calibration.
    pub calib: HostCalib,
    /// Main-memory technology.
    pub memory: MainMemory,
}

impl CpuModel {
    /// CPU on racetrack memory (the paper's primary baseline).
    pub fn cpu_rm() -> Self {
        CpuModel {
            calib: HostCalib::paper_default(),
            memory: MainMemory::Rm,
        }
    }

    /// CPU on DDR4 DRAM.
    pub fn cpu_dram() -> Self {
        CpuModel {
            calib: HostCalib::paper_default(),
            memory: MainMemory::Dram,
        }
    }

    /// Memory bandwidth in bytes per nanosecond.
    fn bandwidth_b_per_ns(&self) -> f64 {
        let gib_s = match self.memory {
            MainMemory::Dram => self.calib.dram_gib_s,
            MainMemory::Rm => self.calib.rm_gib_s,
        };
        gib_s * 1024.0 * 1024.0 * 1024.0 / 1e9
    }

    /// Memory energy per byte, picojoules.
    fn mem_pj_per_byte(&self) -> f64 {
        match self.memory {
            MainMemory::Dram => self.calib.dram_pj_per_byte,
            MainMemory::Rm => self.calib.rm_pj_per_byte,
        }
    }

    /// Prices a kernel profile on this host.
    pub fn run_profile(&self, p: &KernelProfile) -> ExecReport {
        let c = &self.calib;
        // Memory-bound kernels do not scale to all cores (the channels
        // saturate long before), so their instruction throughput sees only
        // a few effective cores.
        let core_derate = (if p.small {
            c.effective_cores_small / c.cores as f64
        } else {
            1.0
        }) * p.cpu_efficiency;
        let flop_ns = p.flops / (c.cpu_flops_per_ns() * core_derate);
        let ipf = if p.small {
            c.instructions_per_flop_small
        } else {
            c.instructions_per_flop_large
        };
        let inst_ns = p.flops * ipf / (c.cpu_instructions_per_ns() * core_derate);
        let compute_ns = flop_ns + inst_ns;

        let amplification = if p.working_set > c.llc_bytes && !p.small {
            c.spill_amplification
        } else {
            1.0
        };
        let traffic = p.bytes * amplification;
        let mem_ns = traffic / self.bandwidth_b_per_ns();
        let hidden = (mem_ns * c.mem_overlap).min(compute_ns);
        let exposed_mem = mem_ns - hidden;

        // Wall-clock = compute + exposed memory stalls; the hidden memory
        // time is the slice of compute during which the memory system was
        // also busy.
        let time = TimeBreakdown {
            process_ns: compute_ns - hidden,
            read_ns: exposed_mem * 0.6,
            write_ns: exposed_mem * 0.4,
            shift_ns: 0.0,
            overlapped_ns: hidden,
        };
        let instructions = p.flops * ipf;
        let energy = EnergyBreakdown {
            compute_pj: p.flops * c.cpu_pj_per_flop + instructions * c.cpu_pj_per_instruction,
            read_pj: traffic * self.mem_pj_per_byte() * 0.6,
            write_pj: traffic * self.mem_pj_per_byte() * 0.4,
            shift_pj: 0.0,
            other_pj: 0.0,
        };
        ExecReport {
            time,
            energy,
            ..ExecReport::default()
        }
    }

    /// Exposed-memory fraction of total time for `p` (Figure 3a's `mem`).
    pub fn mem_fraction(&self, p: &KernelProfile) -> f64 {
        let r = self.run_profile(p);
        (r.time.read_ns + r.time.write_ns) / r.time.total_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> KernelProfile {
        // atax-like: 2000x2000 doubles streamed twice.
        KernelProfile {
            name: "small".into(),
            flops: 1.6e7,
            bytes: 6.4e7,
            working_set: 3.2e7,
            small: true,
            cpu_efficiency: 1.0,
        }
    }

    fn large_profile() -> KernelProfile {
        // gemm-like.
        KernelProfile {
            name: "large".into(),
            flops: 2.4e10,
            bytes: 1.5e8,
            working_set: 1.5e8,
            small: false,
            cpu_efficiency: 1.0,
        }
    }

    #[test]
    fn dram_faster_than_rm() {
        let small = small_profile();
        let t_rm = CpuModel::cpu_rm().run_profile(&small).total_ns();
        let t_dram = CpuModel::cpu_dram().run_profile(&small).total_ns();
        assert!(t_dram < t_rm);
        let ratio = t_rm / t_dram;
        assert!((1.05..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_kernels_have_high_mem_fraction() {
        let cpu = CpuModel::cpu_rm();
        let f_small = cpu.mem_fraction(&small_profile());
        let f_large = cpu.mem_fraction(&large_profile());
        assert!(f_small > 0.3, "small mem fraction {f_small}");
        assert!(f_small < 0.75, "small mem fraction {f_small}");
        assert!(
            f_large < f_small,
            "large kernels are compute-bound: {f_large}"
        );
    }

    #[test]
    fn energy_positive_and_memory_visible() {
        let r = CpuModel::cpu_dram().run_profile(&small_profile());
        assert!(r.energy.compute_pj > 0.0);
        assert!(r.energy.read_pj + r.energy.write_pj > 0.0);
    }

    #[test]
    fn cache_fit_avoids_amplification() {
        // Amplification applies to reuse-heavy (large) kernels that spill.
        let mut p = large_profile();
        p.flops = 1.0e8; // memory-visible compute budget
        p.working_set = 1.0e6; // fits the LLC
        let fit = CpuModel::cpu_rm().run_profile(&p);
        p.working_set = 1.0e9;
        let spill = CpuModel::cpu_rm().run_profile(&p);
        assert!(spill.total_ns() > fit.total_ns());
    }
}
