//! GPU platform model (paper Figure 3b).
//!
//! A discrete GPU must stage inputs and results across PCIe before and
//! after every offloaded kernel; for small, memory-bound kernels this
//! staging dominates end-to-end time (the paper measures ~90% "data
//! transfer" on the matrix-vector workloads).

use crate::calib::HostCalib;
use pim_device::report::ExecReport;
use pim_workloads::profile::KernelProfile;
use rm_core::{EnergyBreakdown, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// The GPU platform model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Machine calibration.
    pub calib: HostCalib,
}

impl GpuModel {
    /// The paper's GPU (RTX 3080-class) with default calibration.
    pub fn paper_default() -> Self {
        GpuModel {
            calib: HostCalib::paper_default(),
        }
    }

    /// Prices a kernel profile: PCIe staging + on-device roofline kernel.
    pub fn run_profile(&self, p: &KernelProfile) -> ExecReport {
        let c = &self.calib;
        let gib = 1024.0 * 1024.0 * 1024.0;
        // Stage the working set in, results (a fraction of it) out.
        let staged_bytes = p.working_set * 1.25;
        let transfer_ns = staged_bytes / (c.pcie_gib_s * gib / 1e9) + c.gpu_launch_ns;
        // On-device: roofline of compute vs device-memory bandwidth.
        let kernel_compute_ns = p.flops / c.gpu_gflops;
        let kernel_mem_ns = p.bytes / (c.gpu_mem_gib_s * gib / 1e9);
        let kernel_ns = kernel_compute_ns.max(kernel_mem_ns);

        let time = TimeBreakdown {
            process_ns: kernel_ns,
            // PCIe staging is the exposed transfer slice of Figure 3b.
            read_ns: transfer_ns * 0.5,
            write_ns: transfer_ns * 0.5,
            shift_ns: 0.0,
            overlapped_ns: 0.0,
        };
        let energy = EnergyBreakdown {
            compute_pj: p.flops * c.gpu_pj_per_flop,
            read_pj: staged_bytes * c.pcie_pj_per_byte * 0.5,
            write_pj: staged_bytes * c.pcie_pj_per_byte * 0.5,
            shift_pj: 0.0,
            other_pj: 0.0,
        };
        ExecReport {
            time,
            energy,
            ..ExecReport::default()
        }
    }

    /// Data-transfer fraction of total time (Figure 3b's metric).
    pub fn transfer_fraction(&self, p: &KernelProfile) -> f64 {
        let r = self.run_profile(p);
        (r.time.read_ns + r.time.write_ns) / r.time.total_ns()
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_kernels_are_transfer_dominated() {
        let gpu = GpuModel::paper_default();
        // mvt-like small kernel.
        let small = KernelProfile {
            name: "mvt".into(),
            flops: 1.6e7,
            bytes: 6.4e7,
            working_set: 3.2e7,
            small: true,
            cpu_efficiency: 1.0,
        };
        let f = gpu.transfer_fraction(&small);
        assert!(f > 0.8, "transfer fraction {f}");
    }

    #[test]
    fn large_kernels_amortize_transfer() {
        let gpu = GpuModel::paper_default();
        let large = KernelProfile {
            name: "gemm".into(),
            flops: 2.4e10,
            bytes: 1.5e8,
            working_set: 1.5e8,
            small: false,
            cpu_efficiency: 1.0,
        };
        let f = gpu.transfer_fraction(&large);
        assert!(f < 0.6, "transfer fraction {f}");
    }

    #[test]
    fn gpu_beats_cpu_on_large_compute() {
        use crate::cpu::CpuModel;
        let large = KernelProfile {
            name: "gemm".into(),
            flops: 2.4e10,
            bytes: 1.5e8,
            working_set: 1.5e8,
            small: false,
            cpu_efficiency: 1.0,
        };
        let t_gpu = GpuModel::paper_default().run_profile(&large).total_ns();
        let t_cpu = CpuModel::cpu_dram().run_profile(&large).total_ns();
        assert!(t_gpu < t_cpu);
    }
}
