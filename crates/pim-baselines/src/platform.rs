//! The unified platform interface: one `run` call prices one workload on
//! any of the paper's seven platforms.

use crate::bitserial::BitSerialModel;
use crate::coruscant::CoruscantModel;
use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use pim_device::report::ExecReport;
use pim_device::schedule::Schedule;
use pim_device::task::PimTask;
use pim_device::{Parallelism, PimError, PriceTable, StreamPim, StreamPimConfig};
use pim_trace::{NullSink, Phase, Span, TraceSink, Track};
use pim_workloads::dnn::DnnModel;
use pim_workloads::polybench::KernelInstance;
use pim_workloads::profile::KernelProfile;
use pim_workloads::spec::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// The platforms of the paper's evaluation (Figure 17/18 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// CPU host on racetrack main memory (the normalization baseline).
    CpuRm,
    /// CPU host on DDR4 DRAM.
    CpuDram,
    /// Discrete GPU with PCIe staging (Figure 3b only).
    Gpu,
    /// StreamPIM with both optimizations and the domain-wall bus.
    StPim,
    /// StreamPIM with electrical in-subarray buses (`StPIM-e`).
    StPimE,
    /// CORUSCANT (transverse-read process-in-RM).
    Coruscant,
    /// ELP2IM (bit-serial process-in-DRAM).
    Elp2im,
    /// FELIX (bit-serial process-in-NVM).
    Felix,
}

impl PlatformKind {
    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::CpuRm => "CPU-RM",
            PlatformKind::CpuDram => "CPU-DRAM",
            PlatformKind::Gpu => "GPU",
            PlatformKind::StPim => "StPIM",
            PlatformKind::StPimE => "StPIM-e",
            PlatformKind::Coruscant => "CORUSCANT",
            PlatformKind::Elp2im => "ELP2IM",
            PlatformKind::Felix => "FELIX",
        }
    }

    /// The platforms of Figure 17/18, in presentation order.
    pub const FIGURE_17: [PlatformKind; 7] = [
        PlatformKind::CpuRm,
        PlatformKind::CpuDram,
        PlatformKind::Elp2im,
        PlatformKind::Felix,
        PlatformKind::Coruscant,
        PlatformKind::StPimE,
        PlatformKind::StPim,
    ];
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload in both representations the platforms consume.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// Host-side characterization (CPU/GPU platforms).
    pub profile: KernelProfile,
    /// PIM task (PIM platforms lower it with their own configuration).
    pub task: PimTask,
}

impl Workload {
    /// Builds the workload for a polybench kernel instance (shape-only
    /// task: full-size instances are priced, not functionally executed).
    pub fn from_kernel(inst: &KernelInstance) -> Self {
        Workload {
            name: inst.kernel.name().to_string(),
            profile: inst.profile(),
            task: inst.build_task(None).task,
        }
    }

    /// Builds the offloadable part of a DNN model.
    pub fn from_dnn(model: &DnnModel) -> Self {
        Workload {
            name: model.name.clone(),
            profile: model.offload_profile(),
            task: model.build_task(),
        }
    }

    /// Materializes a serializable [`WorkloadSpec`] (the runtime's job
    /// request format) into both platform representations.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Workload {
            name: spec.name(),
            profile: spec.profile(),
            task: spec.build_task(),
        }
    }
}

/// A ready-to-run platform.
#[derive(Debug, Clone)]
pub struct Platform {
    kind: PlatformKind,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Cpu(CpuModel),
    Gpu(GpuModel),
    StreamPim(StreamPim),
    Coruscant(CoruscantModel),
    BitSerial(BitSerialModel),
}

impl Platform {
    /// Builds a platform with its paper-default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] if a StreamPIM configuration fails to
    /// validate (cannot happen for the built-in defaults).
    pub fn new(kind: PlatformKind) -> Result<Platform, PimError> {
        let inner = match kind {
            PlatformKind::CpuRm => Inner::Cpu(CpuModel::cpu_rm()),
            PlatformKind::CpuDram => Inner::Cpu(CpuModel::cpu_dram()),
            PlatformKind::Gpu => Inner::Gpu(GpuModel::paper_default()),
            PlatformKind::StPim => {
                Inner::StreamPim(StreamPim::new(StreamPimConfig::paper_default())?)
            }
            PlatformKind::StPimE => {
                Inner::StreamPim(StreamPim::new(StreamPimConfig::electrical_bus())?)
            }
            PlatformKind::Coruscant => Inner::Coruscant(CoruscantModel::paper_default()),
            PlatformKind::Elp2im => Inner::BitSerial(BitSerialModel::elp2im()),
            PlatformKind::Felix => Inner::BitSerial(BitSerialModel::felix()),
        };
        Ok(Platform { kind, inner })
    }

    /// Wraps a custom StreamPIM configuration (sensitivity sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for invalid configurations.
    pub fn stream_pim(config: StreamPimConfig) -> Result<Platform, PimError> {
        Ok(Platform {
            kind: PlatformKind::StPim,
            inner: Inner::StreamPim(StreamPim::new(config)?),
        })
    }

    /// Builds a platform like [`Platform::new`], overriding the StreamPIM
    /// scheduling-model parameters where the platform embeds a StreamPIM
    /// device (StPIM / StPIM-e); every other platform is unaffected. The
    /// fidelity gate uses this to deliberately perturb the model.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for invalid engine parameters.
    pub fn with_engine_params(
        kind: PlatformKind,
        engine: &pim_device::engine::EngineParams,
    ) -> Result<Platform, PimError> {
        let mut p = Platform::new(kind)?;
        if let Inner::StreamPim(device) = &p.inner {
            let cfg = device.config().clone().with_engine(*engine);
            p.inner = Inner::StreamPim(StreamPim::new(cfg)?);
        }
        Ok(p)
    }

    /// Variant with a different intra-run [`Parallelism`] level on the
    /// embedded StreamPIM device; a no-op for every other platform (their
    /// models are closed-form). Simulated results are byte-identical at
    /// every level — only the simulation's wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        if let Inner::StreamPim(device) = &mut self.inner {
            *device = device.clone().with_parallelism(parallelism);
        }
        self
    }

    /// The intra-run parallelism of the embedded StreamPIM device, or
    /// `None` for platforms without one.
    pub fn parallelism(&self) -> Option<Parallelism> {
        match &self.inner {
            Inner::StreamPim(device) => Some(device.parallelism()),
            _ => None,
        }
    }

    /// The platform kind.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// The platform's display name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Prices `workload` on this platform.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::EmptyTask`] if a PIM platform receives a
    /// workload whose task has no operations.
    pub fn run(&self, workload: &Workload) -> Result<ExecReport, PimError> {
        self.run_with_schedule(workload, None)
    }

    /// The StreamPIM configuration whose lowering this platform prices, or
    /// `None` for host platforms that never lower (CPU/GPU). Schedules
    /// lowered under this configuration can be passed back through
    /// [`Platform::run_with_schedule`]; platforms returning the same
    /// configuration can share cached schedules for the same task.
    pub fn lowering_config(&self) -> Option<StreamPimConfig> {
        match &self.inner {
            Inner::Cpu(_) | Inner::Gpu(_) => None,
            Inner::StreamPim(device) => Some(device.config().clone()),
            // The idealized PIM baselines price word-level work derived
            // from the reference (paper-default) lowering.
            Inner::Coruscant(_) | Inner::BitSerial(_) => Some(StreamPimConfig::paper_default()),
        }
    }

    /// Prices `workload`, reusing a previously lowered `schedule` when one
    /// is supplied. The schedule must come from lowering `workload.task`
    /// under this platform's [`Platform::lowering_config`]; lowering is
    /// deterministic, so the result is identical to [`Platform::run`] —
    /// only the lowering cost is skipped. Host platforms ignore the
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::EmptyTask`] if a PIM platform must lower a
    /// workload whose task has no operations.
    pub fn run_with_schedule(
        &self,
        workload: &Workload,
        schedule: Option<&Schedule>,
    ) -> Result<ExecReport, PimError> {
        self.run_with_schedule_traced(workload, schedule, &NullSink)
    }

    /// Like [`Platform::run_with_schedule`], but emits spans describing the
    /// execution timeline into `sink`. StreamPIM platforms emit the analytic
    /// engine's per-round phase spans; every other platform emits a single
    /// span covering its closed-form total (those models have no internal
    /// timeline to expose). The returned report is identical to the
    /// untraced path for any sink.
    ///
    /// # Errors
    ///
    /// Same as [`Platform::run_with_schedule`].
    pub fn run_with_schedule_traced(
        &self,
        workload: &Workload,
        schedule: Option<&Schedule>,
        sink: &dyn TraceSink,
    ) -> Result<ExecReport, PimError> {
        self.run_instrumented(workload, schedule, sink, &rm_core::NullProbe)
    }

    /// Like [`Platform::run_with_schedule`], but records per-component
    /// attribution on `probe`. StreamPIM platforms emit the engine's
    /// component paths (`bus/lane[k]`, `device/subarray[s]`,
    /// `device/controller`); the closed-form hosts record one sample at
    /// `host/cpu` / `host/gpu`; the idealized PIM baselines split theirs
    /// across `device/<platform>` (compute), `bus/internal` (operand and
    /// result placement traffic) and `device/peripherals` (static power).
    /// Recorded energy and counters sum exactly to the returned report's
    /// totals; the report itself is identical to the unprofiled path.
    ///
    /// # Errors
    ///
    /// Same as [`Platform::run_with_schedule`].
    pub fn run_with_schedule_profiled(
        &self,
        workload: &Workload,
        schedule: Option<&Schedule>,
        probe: &dyn rm_core::Probe,
    ) -> Result<ExecReport, PimError> {
        self.run_instrumented(workload, schedule, &NullSink, probe)
    }

    /// Tracing and profiling in one pass (see
    /// [`Platform::run_with_schedule_traced`] and
    /// [`Platform::run_with_schedule_profiled`]).
    ///
    /// # Errors
    ///
    /// Same as [`Platform::run_with_schedule`].
    pub fn run_instrumented(
        &self,
        workload: &Workload,
        schedule: Option<&Schedule>,
        sink: &dyn TraceSink,
        probe: &dyn rm_core::Probe,
    ) -> Result<ExecReport, PimError> {
        let mut report = match &self.inner {
            Inner::Cpu(m) => {
                let r = m.run_profile(&workload.profile);
                emit_platform_span(sink, self.name(), workload, &r);
                record_report_sample(probe, "host/cpu", &r);
                return Ok(r);
            }
            Inner::Gpu(m) => {
                let r = m.run_profile(&workload.profile);
                emit_platform_span(sink, self.name(), workload, &r);
                record_report_sample(probe, "host/gpu", &r);
                return Ok(r);
            }
            Inner::StreamPim(device) => {
                let lowered;
                let s = match schedule {
                    Some(s) => s,
                    // `PimTask::price` is exactly lower-then-execute, so
                    // lowering here keeps the traced and untraced paths
                    // byte-identical.
                    None => {
                        lowered = workload.task.lower(device)?;
                        &lowered
                    }
                };
                device.execute_instrumented(s, sink, probe)
            }
            Inner::Coruscant(m) => {
                let lowered;
                let s = match schedule {
                    Some(s) => s,
                    None => {
                        lowered = workload.task.lower(&reference_device()?)?;
                        &lowered
                    }
                };
                let mut r = m.run_schedule(s);
                record_report_sample(probe, "device/coruscant", &r);
                add_baseline_movement(&mut r, s, probe);
                r
            }
            Inner::BitSerial(m) => {
                let lowered;
                let s = match schedule {
                    Some(s) => s,
                    None => {
                        lowered = workload.task.lower(&reference_device()?)?;
                        &lowered
                    }
                };
                let mut r = m.run_schedule(s);
                let path = match self.kind {
                    PlatformKind::Felix => "device/felix",
                    _ => "device/elp2im",
                };
                record_report_sample(probe, path, &r);
                add_baseline_movement(&mut r, s, probe);
                r
            }
        };
        add_pim_static_power(&mut report, probe);
        if !matches!(&self.inner, Inner::StreamPim(_)) {
            // The idealized PIM baselines are closed-form too: one span.
            emit_platform_span(sink, self.name(), workload, &report);
        }
        Ok(report)
    }

    /// Prices a pre-lowered `schedule` on the embedded StreamPIM device
    /// through a [`PriceTable`] memo (see
    /// [`pim_device::StreamPim::execute_repriced`]), applying the same
    /// static-power post-processing as [`Platform::run_with_schedule`] so
    /// the returned report is byte-identical to it at any table state.
    /// Returns the report plus the number of rows priced fresh this run,
    /// or `None` for platforms without an embedded StreamPIM device
    /// (hosts and the closed-form PIM baselines), which must take the
    /// workload-carrying path instead.
    ///
    /// The table must only ever be fed by this platform's configuration —
    /// callers key tables by [`Platform::lowering_config`].
    pub fn run_schedule_repriced(
        &self,
        schedule: &Schedule,
        table: &mut PriceTable,
    ) -> Option<(ExecReport, u64)> {
        self.run_schedule_repriced_instrumented(schedule, table, &NullSink, &rm_core::NullProbe)
    }

    /// [`Platform::run_schedule_repriced`] with tracing and profiling
    /// attached. The engine's re-pricing contract extends to instruments:
    /// report, spans and probe samples (including the static-power
    /// `device/peripherals` sample added here) are byte-identical to a
    /// cold instrumented run at any table state — this is what lets the
    /// serving flight recorder observe every request on the memoized fast
    /// path.
    pub fn run_schedule_repriced_instrumented(
        &self,
        schedule: &Schedule,
        table: &mut PriceTable,
        sink: &dyn TraceSink,
        probe: &dyn rm_core::Probe,
    ) -> Option<(ExecReport, u64)> {
        let Inner::StreamPim(device) = &self.inner else {
            return None;
        };
        let (mut report, fresh) =
            device.execute_repriced_instrumented(schedule, sink, probe, table);
        add_pim_static_power(&mut report, probe);
        Some((report, fresh))
    }
}

/// Peripheral/controller static power of the PIM device over the execution
/// (the CPU/GPU models fold theirs into per-op energies). Shared by the
/// instrumented and repriced paths so both post-process identically; public
/// so the cluster layer's single-device path applies the *same* charge and
/// stays byte-identical to this platform.
pub fn add_pim_static_power(report: &mut ExecReport, probe: &dyn rm_core::Probe) {
    let static_pj = report.time.total_ns() * PIM_STATIC_W * 1000.0;
    report.energy.other_pj += static_pj;
    if probe.enabled() {
        probe.record(
            "device/peripherals",
            rm_core::ProbeSample::energy(rm_core::EnergyBreakdown {
                other_pj: static_pj,
                ..rm_core::EnergyBreakdown::default()
            }),
        );
    }
}

/// One whole-report attribution sample for closed-form models.
fn record_report_sample(probe: &dyn rm_core::Probe, path: &str, r: &ExecReport) {
    if probe.enabled() {
        probe.record(
            path,
            rm_core::ProbeSample {
                ops: r.counters,
                energy: r.energy,
                busy_ns: r.total_ns(),
            },
        );
    }
}

/// One whole-run span for platforms without an internal timeline.
fn emit_platform_span(sink: &dyn TraceSink, platform: &'static str, w: &Workload, r: &ExecReport) {
    if sink.enabled() && r.total_ns() > 0.0 {
        sink.record_span(
            Span::sim(
                format!("{platform} {}", w.name),
                "compute",
                Track::Phase(Phase::Compute),
                0.0,
                r.total_ns(),
            )
            .arg("platform", platform)
            .arg("time_ns", r.total_ns())
            .arg("energy_pj", r.total_pj()),
        );
    }
}

/// Static (peripheral + controller leakage) power of a PIM device, watts.
pub const PIM_STATIC_W: f64 = 0.08;

/// Charges a baseline PIM platform the workload's inherent data-placement
/// traffic. Unlike StreamPIM, the baselines lack the `distribute`/`unblock`
/// co-design, so operand distribution and result collection serialize over
/// the single shared internal bus — one 64-word row per read+write
/// transaction (the paper's §V-B explanation of why they trail StreamPIM).
/// An enabled `probe` receives the exact charged quantities at
/// `bus/internal`.
fn add_baseline_movement(report: &mut ExecReport, schedule: &Schedule, probe: &dyn rm_core::Probe) {
    let timing = rm_core::TimingParams::paper_default();
    let energy = rm_core::EnergyParams::paper_default();
    let rows = schedule.work_counts().elements_moved.div_ceil(64) as f64;
    // Reads and writes of consecutive rows pipeline against each other, so
    // the stream is bound by the slower conversion (the RM write); source
    // and destination halves of the device transfer concurrently (two
    // effective lanes).
    let stream_ns = rows * timing.read_ns.max(timing.write_ns) / 2.0;
    report.time.read_ns += stream_ns * timing.read_ns / (timing.read_ns + timing.write_ns);
    report.time.write_ns += stream_ns * timing.write_ns / (timing.read_ns + timing.write_ns);
    report.energy.read_pj += rows * energy.read_pj;
    report.energy.write_pj += rows * energy.write_pj;
    report.counters.reads += rows as u64;
    report.counters.writes += rows as u64;
    if probe.enabled() {
        probe.record(
            "bus/internal",
            rm_core::ProbeSample {
                ops: rm_core::OpCounters {
                    reads: rows as u64,
                    writes: rows as u64,
                    ..rm_core::OpCounters::default()
                },
                energy: rm_core::EnergyBreakdown {
                    read_pj: rows * energy.read_pj,
                    write_pj: rows * energy.write_pj,
                    ..rm_core::EnergyBreakdown::default()
                },
                busy_ns: stream_ns,
            },
        );
    }
}

/// The reference device used to derive word-level work counts for the
/// idealized PIM baselines (CORUSCANT/ELP2IM/FELIX price the same work).
fn reference_device() -> Result<StreamPim, PimError> {
    StreamPim::new(StreamPimConfig::paper_default())
}

/// Prices a DNN inference end-to-end on `platform` (paper §V-E): the
/// matrix work runs on the platform, the non-offloadable remainder runs on
/// the CPU-DRAM host regardless of platform.
///
/// # Errors
///
/// Propagates platform errors (see [`Platform::run`]).
pub fn dnn_end_to_end(platform: &Platform, model: &DnnModel) -> Result<ExecReport, PimError> {
    let workload = Workload::from_dnn(model);
    let offload = platform.run(&workload)?;

    // The non-offloadable share is defined relative to the CPU-DRAM
    // baseline: fraction f of its total time is nonlinear/host work.
    let cpu = Platform::new(PlatformKind::CpuDram)?;
    let cpu_offload = cpu.run(&workload)?;
    let f = model.non_offload_fraction;
    let host_ns = cpu_offload.total_ns() * f / (1.0 - f);
    let host_pj = cpu_offload.total_pj() * f / (1.0 - f);

    let mut total = offload;
    total.time.process_ns += host_ns;
    total.energy.compute_pj += host_pj;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_workloads::polybench::Kernel;

    #[test]
    fn all_platforms_run_a_kernel() {
        let w = Workload::from_kernel(&Kernel::Gemm.scaled(0.02));
        for kind in PlatformKind::FIGURE_17 {
            let p = Platform::new(kind).unwrap();
            let r = p.run(&w).unwrap();
            assert!(r.total_ns() > 0.0, "{kind} time");
            assert!(r.total_pj() > 0.0, "{kind} energy");
        }
    }

    #[test]
    fn stpim_is_fastest_pim_platform_on_gemm() {
        // Use a moderately sized kernel so parallelism matters.
        let w = Workload::from_kernel(&Kernel::Gemm.scaled(0.5));
        let run = |k: PlatformKind| Platform::new(k).unwrap().run(&w).unwrap().total_ns();
        let stpim = run(PlatformKind::StPim);
        assert!(stpim < run(PlatformKind::StPimE), "beats StPIM-e");
        assert!(stpim < run(PlatformKind::Coruscant), "beats CORUSCANT");
        assert!(stpim < run(PlatformKind::Elp2im), "beats ELP2IM");
        assert!(stpim < run(PlatformKind::Felix), "beats FELIX");
        assert!(stpim < run(PlatformKind::CpuRm), "beats CPU-RM");
    }

    #[test]
    fn cached_schedule_reproduces_direct_run() {
        let w = Workload::from_kernel(&Kernel::Atax.scaled(0.02));
        for kind in PlatformKind::FIGURE_17 {
            let p = Platform::new(kind).unwrap();
            let direct = p.run(&w).unwrap();
            let schedule = p
                .lowering_config()
                .map(|cfg| w.task.lower(&StreamPim::new(cfg).unwrap()).unwrap());
            let cached = p.run_with_schedule(&w, schedule.as_ref()).unwrap();
            assert_eq!(direct, cached, "{kind}: schedule reuse changes nothing");
        }
    }

    #[test]
    fn from_spec_matches_from_kernel() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let a = Workload::from_spec(&spec);
        let b = Workload::from_kernel(&Kernel::Gemm.scaled(0.02));
        // Spec names carry the scale suffix; the priced work is identical.
        assert!(a.name.starts_with(&b.name), "{} vs {}", a.name, b.name);
        assert_eq!(a.profile, b.profile);
        let p = Platform::new(PlatformKind::StPim).unwrap();
        assert_eq!(p.run(&a).unwrap(), p.run(&b).unwrap());
    }

    #[test]
    fn traced_run_matches_untraced_on_every_platform() {
        let w = Workload::from_kernel(&Kernel::Gemm.scaled(0.02));
        for kind in PlatformKind::FIGURE_17 {
            let p = Platform::new(kind).unwrap();
            let sink = pim_trace::Collector::new();
            let traced = p.run_with_schedule_traced(&w, None, &sink).unwrap();
            let plain = p.run(&w).unwrap();
            assert_eq!(traced, plain, "{kind}: tracing must not change pricing");
            assert!(sink.span_count() > 0, "{kind}: no spans recorded");
        }
    }

    #[test]
    fn profiled_run_conserves_report_totals_on_every_platform() {
        use std::sync::Mutex;

        /// Sums every sample it sees, ignoring paths.
        #[derive(Debug, Default)]
        struct SumProbe(Mutex<(rm_core::OpCounters, rm_core::EnergyBreakdown)>);
        impl rm_core::Probe for SumProbe {
            fn enabled(&self) -> bool {
                true
            }
            fn record(&self, _path: &str, sample: rm_core::ProbeSample) {
                let mut tot = self.0.lock().unwrap();
                tot.0 += sample.ops;
                tot.1 += sample.energy;
            }
        }

        let w = Workload::from_kernel(&Kernel::Gemm.scaled(0.02));
        for kind in PlatformKind::FIGURE_17 {
            let p = Platform::new(kind).unwrap();
            let probe = SumProbe::default();
            let profiled = p.run_with_schedule_profiled(&w, None, &probe).unwrap();
            let plain = p.run(&w).unwrap();
            assert_eq!(profiled, plain, "{kind}: profiling must not change pricing");
            let (ops, energy) = *probe.0.lock().unwrap();
            assert_eq!(ops, profiled.counters, "{kind}: counter conservation");
            assert_eq!(
                energy.total_pj(),
                profiled.energy.total_pj(),
                "{kind}: energy conservation"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PlatformKind::StPim.name(), "StPIM");
        assert_eq!(PlatformKind::Coruscant.name(), "CORUSCANT");
        assert_eq!(PlatformKind::FIGURE_17.len(), 7);
    }

    #[test]
    fn dnn_end_to_end_is_bounded_by_amdahl() {
        let model = DnnModel::bert();
        let stpim = Platform::new(PlatformKind::StPim).unwrap();
        let cpu = Platform::new(PlatformKind::CpuDram).unwrap();
        let t_pim = dnn_end_to_end(&stpim, &model).unwrap().total_ns();
        let t_cpu = dnn_end_to_end(&cpu, &model).unwrap().total_ns();
        let speedup = t_cpu / t_pim;
        let amdahl_cap = 1.0 / model.non_offload_fraction;
        assert!(speedup > 1.0, "PIM helps: {speedup}");
        assert!(
            speedup < amdahl_cap,
            "bounded by the non-offloadable share: {speedup}"
        );
    }
}
