//! Global calibration of the host-side machine models.
//!
//! The paper's host platforms are a 16-core AMD Ryzen 9 5950X (3.7 GHz) with
//! 8 GiB of main memory and a GeForce RTX 3080 (§V-A, Table III). Their
//! *effective* throughputs inside gem5 are not published, so this module
//! fixes them once, globally, from public characteristics of those parts;
//! the PIM-side results then emerge from the device models. `EXPERIMENTS.md`
//! records the calibrated values next to every reproduced figure.

use serde::{Deserialize, Serialize};

/// Machine parameters of the host platforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCalib {
    /// Cores on the CPU host.
    pub cores: u32,
    /// CPU clock, GHz.
    pub freq_ghz: f64,
    /// Effective double-precision flops per core-cycle on tuned kernels
    /// (SIMD width x issue, derated for real code).
    pub flops_per_core_cycle: f64,
    /// Instructions retired per flop in memory-bound (scalar-ish) kernels —
    /// loop, address and load/store overhead.
    pub instructions_per_flop_small: f64,
    /// Same for cache-blocked (vectorized) kernels.
    pub instructions_per_flop_large: f64,
    /// Effective IPC across the chip for that overhead work.
    pub chip_ipc: f64,
    /// Effective core count on memory-bound (small) kernels, where the
    /// memory channels saturate before the cores do.
    pub effective_cores_small: f64,
    /// Last-level cache capacity, bytes (Table III: 8 MiB L2).
    pub llc_bytes: f64,
    /// Miss-traffic amplification when the working set spills the LLC.
    pub spill_amplification: f64,
    /// DDR4-2400 effective bandwidth, GiB/s.
    pub dram_gib_s: f64,
    /// Racetrack main-memory effective bandwidth, GiB/s. RM rows need
    /// shift-alignment before access, costing bandwidth and latency; the
    /// paper's CPU-DRAM outperforms CPU-RM by ~1.5x on average.
    pub rm_gib_s: f64,
    /// Fraction of memory time the out-of-order core + prefetchers hide
    /// under compute.
    pub mem_overlap: f64,
    /// CPU energy per flop (core pipeline, pJ).
    pub cpu_pj_per_flop: f64,
    /// CPU uncore/instruction overhead energy per instruction (pJ).
    pub cpu_pj_per_instruction: f64,
    /// DRAM energy per byte moved (pJ/B).
    pub dram_pj_per_byte: f64,
    /// RM main-memory energy per byte moved (pJ/B).
    pub rm_pj_per_byte: f64,
    /// GPU effective throughput, Gflop/s (FP64-derated RTX 3080).
    pub gpu_gflops: f64,
    /// GPU memory bandwidth, GiB/s.
    pub gpu_mem_gib_s: f64,
    /// PCIe host-device bandwidth, GiB/s.
    pub pcie_gib_s: f64,
    /// Per-kernel-launch host overhead, ns.
    pub gpu_launch_ns: f64,
    /// GPU energy per flop (pJ).
    pub gpu_pj_per_flop: f64,
    /// PCIe + staging energy per byte (pJ/B).
    pub pcie_pj_per_byte: f64,
}

impl HostCalib {
    /// The single global calibration used by every experiment.
    pub fn paper_default() -> Self {
        HostCalib {
            cores: 16,
            freq_ghz: 3.7,
            // 5950X: 2x 256-bit FMA/cycle = 8 DP flops/cycle peak; real
            // tuned gemm sustains ~55-65%.
            flops_per_core_cycle: 1.35,
            instructions_per_flop_small: 3.0,
            instructions_per_flop_large: 0.6,
            chip_ipc: 3.0,
            effective_cores_small: 1.5,
            llc_bytes: 8.5 * 1024.0 * 1024.0,
            spill_amplification: 4.0,
            dram_gib_s: 17.9,
            rm_gib_s: 5.5,
            mem_overlap: 0.4,
            cpu_pj_per_flop: 12.0,
            cpu_pj_per_instruction: 6.0,
            dram_pj_per_byte: 15.0,
            rm_pj_per_byte: 13.0,
            gpu_gflops: 580.0,
            gpu_mem_gib_s: 760.0,
            pcie_gib_s: 12.0,
            gpu_launch_ns: 8_000.0,
            gpu_pj_per_flop: 9.0,
            pcie_pj_per_byte: 30.0,
        }
    }

    /// Effective CPU floating-point throughput, flops per nanosecond.
    pub fn cpu_flops_per_ns(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.flops_per_core_cycle
    }

    /// Effective chip-wide instruction throughput, instructions per ns.
    pub fn cpu_instructions_per_ns(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.chip_ipc
    }
}

impl Default for HostCalib {
    fn default() -> Self {
        HostCalib::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_positive_and_ordered() {
        let c = HostCalib::paper_default();
        assert!(c.cpu_flops_per_ns() > 10.0, "tens of Gflops effective");
        assert!(c.cpu_instructions_per_ns() > c.cpu_flops_per_ns());
        assert!(c.dram_gib_s > c.rm_gib_s, "DRAM is the faster main memory");
        assert!(c.gpu_gflops > c.cpu_flops_per_ns() * 1.0);
        assert!(c.pcie_gib_s < c.gpu_mem_gib_s);
    }
}
