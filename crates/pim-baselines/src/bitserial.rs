//! Bit-serial in-memory computing baselines: ELP2IM and FELIX
//! (paper §V-A platforms 5 and 6).
//!
//! Both platforms compute with **row-level bulk bitwise operations**:
//! activating memory rows together produces AND/OR/NOT of their contents
//! across the whole row. Arithmetic is then *bit-serial*: a `w`-bit addition
//! needs a sequence of row operations per bit (majority/carry chains), and a
//! multiplication needs on the order of `w^2` of them. The row width gives
//! huge SIMD parallelism, but the serialized row operations bound the
//! latency — the paper's reason these platforms trail StreamPIM.
//!
//! * **ELP2IM** (HPCA'20) computes in DRAM: each row operation is a
//!   charge-sharing activation sequence paying DRAM row timing, and the
//!   technology needs refresh/precharge.
//! * **FELIX** (ICCAD'18) computes in NVM: no precharge/refresh, and fused
//!   single-cycle logic gates need fewer row operations per arithmetic op.

use pim_device::report::ExecReport;
use pim_device::schedule::{Schedule, WorkCounts};
use rm_core::{EnergyBreakdown, OpCounters, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// A bit-serial row-level PIM platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitSerialModel {
    /// Element width in bits.
    pub word_bits: u32,
    /// Words processed in parallel per row operation.
    pub words_per_row: u32,
    /// Independent compute subarrays (512 for fairness, §V-A).
    pub subarrays: u32,
    /// Latency of one row operation, ns.
    pub row_op_ns: f64,
    /// Energy of one row operation (segment-local activation), pJ.
    pub row_op_pj: f64,
    /// Row operations per bit of an addition.
    pub ops_per_add_bit: f64,
    /// Row operations per bit-squared of a multiplication.
    pub ops_per_mul_bitsq: f64,
    /// Extra energy fraction for refresh/precharge (DRAM only).
    pub background_energy_fraction: f64,
}

impl BitSerialModel {
    /// ELP2IM on DDR4: row operations are pseudo-precharge activation
    /// sequences (~1 row cycle each); triple-row-activation style addition
    /// takes ~3 ops/bit; DRAM refresh and precharge add background energy.
    pub fn elp2im() -> Self {
        BitSerialModel {
            word_bits: 8,
            words_per_row: 8192,
            subarrays: 128,
            row_op_ns: 38.0,
            row_op_pj: 60.0,
            ops_per_add_bit: 2.0,
            ops_per_mul_bitsq: 2.0,
            background_energy_fraction: 0.35,
        }
    }

    /// FELIX on NVM: single-cycle fused gates (no precharge) make row ops
    /// faster and fewer; no refresh.
    pub fn felix() -> Self {
        BitSerialModel {
            word_bits: 8,
            words_per_row: 8192,
            subarrays: 128,
            row_op_ns: 14.5,
            row_op_pj: 30.0,
            ops_per_add_bit: 1.5,
            ops_per_mul_bitsq: 2.0,
            background_energy_fraction: 0.0,
        }
    }

    /// Row operations for one row-wide multiplication.
    pub fn mul_row_ops(&self) -> f64 {
        self.ops_per_mul_bitsq * (self.word_bits as f64).powi(2)
    }

    /// Row operations for one row-wide addition.
    pub fn add_row_ops(&self) -> f64 {
        self.ops_per_add_bit * self.word_bits as f64
    }

    /// Prices a schedule using the wave model: a dot product's
    /// multiply-accumulate chain is serial (each partial result must be
    /// materialized in rows before the next bit-serial step), while
    /// independent dots fill the row lanes.
    pub fn run_schedule(&self, schedule: &Schedule) -> ExecReport {
        let groups = schedule.op_groups();
        let capacity = self.subarrays as u64 * self.words_per_row as u64;
        let mac_ops = self.mul_row_ops() + self.add_row_ops();

        let mut time_ns = 0.0;
        let mut rowops = 0.0;
        for &(len, count) in &groups.dots {
            let waves = count.div_ceil(capacity) as f64;
            time_ns += waves * len as f64 * mac_ops * self.row_op_ns;
            let active_rows = count.div_ceil(self.words_per_row as u64) as f64;
            rowops += active_rows * len as f64 * mac_ops;
        }
        let ew_rows = groups
            .elementwise_elements
            .div_ceil(self.words_per_row as u64) as f64;
        time_ns += (ew_rows / self.subarrays as f64).ceil() * self.add_row_ops() * self.row_op_ns;
        rowops += ew_rows * self.add_row_ops();

        self.report_from(time_ns, rowops, schedule.work_counts())
    }

    fn report_from(&self, total_ns: f64, total_ops: f64, w: WorkCounts) -> ExecReport {
        let op_energy = total_ops * self.row_op_pj;
        let background = op_energy * self.background_energy_fraction;
        let time = TimeBreakdown {
            read_ns: total_ns * 0.5,
            write_ns: total_ns * 0.5,
            shift_ns: 0.0,
            process_ns: 0.0,
            overlapped_ns: 0.0,
        };
        let energy = EnergyBreakdown {
            read_pj: op_energy * 0.5,
            write_pj: op_energy * 0.5,
            shift_pj: 0.0,
            compute_pj: 0.0,
            other_pj: background,
        };
        let counters = OpCounters {
            reads: (total_ops / 2.0) as u64,
            writes: (total_ops / 2.0) as u64,
            pim_muls: w.word_muls,
            pim_adds: w.word_adds,
            ..OpCounters::default()
        };
        ExecReport {
            time,
            energy,
            counters,
            ..ExecReport::default()
        }
    }

    /// Prices word-level work counts on this platform (fully parallel
    /// approximation, kept for micro studies).
    pub fn run_work(&self, w: &WorkCounts) -> ExecReport {
        let row_muls = w.word_muls as f64 / self.words_per_row as f64;
        let row_adds = w.word_adds as f64 / self.words_per_row as f64;
        let total_ops = row_muls * self.mul_row_ops() + row_adds * self.add_row_ops();

        let total_ns = total_ops * self.row_op_ns / self.subarrays as f64;
        let op_energy = total_ops * self.row_op_pj;
        let background = op_energy * self.background_energy_fraction;

        // Row activations are reads+writes electrically; everything is
        // serialized (no transfer/compute overlap in bit-serial designs).
        let time = TimeBreakdown {
            read_ns: total_ns * 0.5,
            write_ns: total_ns * 0.5,
            shift_ns: 0.0,
            process_ns: 0.0,
            overlapped_ns: 0.0,
        };
        let energy = EnergyBreakdown {
            read_pj: op_energy * 0.5,
            write_pj: op_energy * 0.5,
            shift_pj: 0.0,
            compute_pj: 0.0,
            other_pj: background,
        };
        let counters = OpCounters {
            reads: (total_ops / 2.0) as u64,
            writes: (total_ops / 2.0) as u64,
            pim_muls: w.word_muls,
            pim_adds: w.word_adds,
            ..OpCounters::default()
        };
        ExecReport {
            time,
            energy,
            counters,
            ..ExecReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work() -> WorkCounts {
        WorkCounts {
            word_muls: 1_000_000,
            word_adds: 1_000_000,
            elements_moved: 0,
        }
    }

    #[test]
    fn felix_beats_elp2im() {
        let t_elp = BitSerialModel::elp2im().run_work(&work()).total_ns();
        let t_felix = BitSerialModel::felix().run_work(&work()).total_ns();
        // Paper: FELIX 8.7x vs ELP2IM 3.6x over CPU-RM, i.e. ~2.4x apart.
        let ratio = t_elp / t_felix;
        assert!((1.8..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn felix_more_energy_efficient() {
        let e_elp = BitSerialModel::elp2im().run_work(&work()).total_pj();
        let e_felix = BitSerialModel::felix().run_work(&work()).total_pj();
        assert!(e_felix < e_elp);
    }

    #[test]
    fn mul_dominates_add() {
        let m = BitSerialModel::elp2im();
        assert!(m.mul_row_ops() > 5.0 * m.add_row_ops());
    }

    #[test]
    fn refresh_energy_visible_for_dram_only() {
        let r_elp = BitSerialModel::elp2im().run_work(&work());
        let r_felix = BitSerialModel::felix().run_work(&work());
        assert!(r_elp.energy.other_pj > 0.0);
        assert_eq!(r_felix.energy.other_pj, 0.0);
    }

    #[test]
    fn no_overlap_in_bit_serial() {
        let r = BitSerialModel::elp2im().run_work(&work());
        assert_eq!(r.time.overlapped_ns, 0.0);
        assert_eq!(r.time.exclusive_transfer_fraction(), 1.0);
    }
}
