fn main() {
    for row in pim_workloads::trace::table_iv() {
        println!(
            "{:8} pim {:>12} (paper {:>10}) err {:5.3} | moves {:>12} (paper {:>10}) err {:5.3}",
            row.kernel,
            row.measured_pim,
            row.paper_pim,
            row.pim_error(),
            row.measured_moves,
            row.paper_moves,
            row.move_error()
        );
    }
}
