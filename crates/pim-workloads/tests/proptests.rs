//! Property-based tests for the workload generators.

use pim_device::{StreamPim, StreamPimConfig};
use pim_workloads::polybench::Kernel;
use pim_workloads::quant::Quantizer;
use proptest::prelude::*;

fn device() -> StreamPim {
    StreamPim::new(StreamPimConfig::paper_default()).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every kernel at a random small scale and seed matches its host
    /// reference.
    #[test]
    fn kernels_match_reference(idx in 0usize..9, seed in 0u64..1000) {
        let kernel = Kernel::ALL[idx];
        let instance = kernel.scaled(0.006);
        let built = instance.build_task(Some(seed));
        let out = built.task.run(&device()).unwrap();
        prop_assert_eq!(out.matrix(built.output).unwrap(), &instance.reference(seed));
    }

    /// Scaling the problem scales the VPC counts monotonically and the
    /// compute count dominates element-wise overhead.
    #[test]
    fn counts_scale_with_problem(idx in 0usize..9) {
        let kernel = Kernel::ALL[idx];
        let dev = device();
        let small = kernel.scaled(0.02).build_task(None).task.lower(&dev).unwrap().counts();
        let large = kernel.scaled(0.05).build_task(None).task.lower(&dev).unwrap().counts();
        prop_assert!(large.pim > small.pim, "{kernel}: {} vs {}", large.pim, small.pim);
        prop_assert!(large.moves > small.moves);
    }

    /// Profiles are consistent: flops and bytes positive, working set no
    /// larger than total traffic for streaming kernels.
    #[test]
    fn profiles_consistent(idx in 0usize..9, scale in 0.01f64..0.3) {
        let kernel = Kernel::ALL[idx];
        let p = kernel.scaled(scale).profile();
        prop_assert!(p.flops > 0.0);
        prop_assert!(p.bytes >= p.working_set, "{kernel}");
        prop_assert_eq!(p.small, kernel.is_small());
    }

    /// Quantization error is bounded by one step for in-range values.
    #[test]
    fn quantizer_error_bounded(
        values in proptest::collection::vec(-100.0f64..100.0, 1..64),
        bits in 4u32..16,
    ) {
        let q = Quantizer::fit(&values, bits);
        for &v in &values {
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            prop_assert!(err <= q.step() * 0.5 + 1e-12, "err {err} step {}", q.step());
        }
    }

    /// Quantized dot products stay within the analytic error bound.
    #[test]
    fn quantized_dot_within_bound(
        pairs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..64),
    ) {
        let a: Vec<f64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = pairs.iter().map(|&(_, y)| y).collect();
        let qa = Quantizer::fit(&a, 8);
        let qb = Quantizer::fit(&b, 8);
        let int_dot: i64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| qa.quantize(x) * qb.quantize(y))
            .sum();
        let approx = Quantizer::product_dequant(&qa, &qb, int_dot);
        let real: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let bound = Quantizer::dot_error_bound(&qa, &qb, pairs.len(), 2.0, 2.0);
        prop_assert!((real - approx).abs() <= bound, "err {} bound {bound}", (real - approx).abs());
    }
}
