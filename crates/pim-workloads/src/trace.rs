//! Trace statistics helpers (Table IV regeneration).

use crate::polybench::Kernel;
use pim_device::vpc::VpcCounts;
use pim_device::{StreamPim, StreamPimConfig};
use serde::{Deserialize, Serialize};

/// One row of the regenerated Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Kernel name.
    pub kernel: String,
    /// Measured VPC counts from our lowering.
    pub measured_pim: u64,
    /// Measured move-VPC count.
    pub measured_moves: u64,
    /// The paper's `#PIM-VPC`.
    pub paper_pim: f64,
    /// The paper's `#move-VPC`.
    pub paper_moves: f64,
}

impl TraceRow {
    /// Relative error of the `#PIM-VPC` count vs the paper.
    ///
    /// A zero paper count with a zero measurement is exact agreement (0.0);
    /// a zero paper count with a nonzero measurement is unbounded error
    /// (`f64::INFINITY`). Neither produces NaN.
    pub fn pim_error(&self) -> f64 {
        relative_error(self.measured_pim as f64, self.paper_pim)
    }

    /// Relative error of the `#move-VPC` count vs the paper (same zero
    /// handling as [`TraceRow::pim_error`]).
    pub fn move_error(&self) -> f64 {
        relative_error(self.measured_moves as f64, self.paper_moves)
    }
}

/// `|measured - reference| / reference`, defined at `reference == 0`: exact
/// agreement is 0.0, any deviation from a zero reference is infinite.
fn relative_error(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - reference).abs() / reference
    }
}

/// Regenerates Table IV: lowers every kernel at full size and reports the
/// VPC counts next to the paper's numbers.
pub fn table_iv() -> Vec<TraceRow> {
    let device = StreamPim::new(StreamPimConfig::paper_default()).expect("paper default is valid");
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let built = kernel.paper_instance().build_task(None);
            let counts: VpcCounts = built
                .task
                .lower(&device)
                .expect("kernels have operations")
                .counts();
            let (paper_pim, paper_moves) = kernel.paper_vpc_counts();
            TraceRow {
                kernel: kernel.name().to_string(),
                measured_pim: counts.pim,
                measured_moves: counts.moves,
                paper_pim,
                paper_moves,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_paper_counts_do_not_produce_nan() {
        let exact = TraceRow {
            kernel: "zero".into(),
            measured_pim: 0,
            measured_moves: 0,
            paper_pim: 0.0,
            paper_moves: 0.0,
        };
        assert_eq!(exact.pim_error(), 0.0, "0 measured vs 0 paper is exact");
        assert_eq!(exact.move_error(), 0.0);

        let off = TraceRow {
            measured_pim: 5,
            measured_moves: 3,
            ..exact
        };
        assert_eq!(off.pim_error(), f64::INFINITY, "nonzero vs 0 is unbounded");
        assert_eq!(off.move_error(), f64::INFINITY);
        assert!(!off.pim_error().is_nan());
    }

    #[test]
    fn table_iv_has_nine_rows_within_tolerance() {
        let rows = table_iv();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.pim_error() < 0.10,
                "{}: pim error {:.3}",
                row.kernel,
                row.pim_error()
            );
            assert!(
                row.move_error() < 0.15,
                "{}: move error {:.3}",
                row.kernel,
                row.move_error()
            );
        }
    }
}
