//! Kernel characterization for the host-side (CPU/GPU/DRAM) baselines.

use serde::{Deserialize, Serialize};

/// Aggregate compute/memory characterization of one kernel execution.
///
/// The baseline platform models derive execution time from these quantities
/// plus their own machine parameters; keeping the characterization with the
/// workload (not the platform) guarantees every platform prices the same
/// work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Workload name.
    pub name: String,
    /// Floating-point operations (polybench kernels are double-precision on
    /// the host platforms).
    pub flops: f64,
    /// Bytes moved between memory and the compute units assuming the
    /// host's cache blocking (compulsory traffic x reuse factor).
    pub bytes: f64,
    /// Resident working set in bytes (drives cache-fit decisions).
    pub working_set: f64,
    /// Whether the kernel is in the paper's "small workload" group (the
    /// matrix-vector kernels of Figure 3: atax, bicg, gesummv, mvt).
    pub small: bool,
    /// Fraction of the host's tuned-kernel throughput this workload
    /// sustains (1.0 for the polybench kernels; DNN inference with small
    /// batches runs far below tuned-gemm efficiency).
    pub cpu_efficiency: f64,
}

impl KernelProfile {
    /// Arithmetic intensity in flops per byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity() {
        let p = KernelProfile {
            name: "x".into(),
            flops: 100.0,
            bytes: 50.0,
            working_set: 10.0,
            small: false,
            cpu_efficiency: 1.0,
        };
        assert_eq!(p.intensity(), 2.0);
        let z = KernelProfile { bytes: 0.0, ..p };
        assert_eq!(z.intensity(), 0.0);
    }
}
