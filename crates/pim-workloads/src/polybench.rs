//! The nine polybench kernels of the paper's evaluation (Table IV).
//!
//! Problem sizes follow the polybench-4.2 EXTRALARGE datasets, which
//! reproduce the paper's per-kernel VPC counts (gemm, syrk, syr2k and mvt
//! exactly; the others within 10% — see the tests and `EXPERIMENTS.md`).
//! Every kernel can also be instantiated at a reduced scale for fast tests
//! and benches.

use crate::matrix::{workload_matrix, Matrix};
use crate::profile::KernelProfile;
use pim_device::task::{MatHandle, MatrixOp, PimTask};
use serde::{Deserialize, Serialize};

/// Scalar constants used in place of polybench's float `alpha`/`beta`.
const ALPHA: i64 = 2;
const BETA: i64 = 3;

/// One of the evaluated polybench kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// `E = alpha*A*B*C + beta*D`.
    TwoMm,
    /// `G = (A*B)*(C*D)`.
    ThreeMm,
    /// `C = alpha*A*B + beta*C`.
    Gemm,
    /// `C = alpha*A*A^T + beta*C`.
    Syrk,
    /// `C = alpha*A*B^T + alpha*B*A^T + beta*C`.
    Syr2k,
    /// `y = A^T * (A * x)`.
    Atax,
    /// `q = A*p, s = A^T*r`.
    Bicg,
    /// `y = alpha*A*x + beta*B*x` (gesummv).
    Gesummv,
    /// `x1 += A*y1, x2 += A^T*y2`.
    Mvt,
}

impl Kernel {
    /// All evaluated kernels, in the paper's Table IV order.
    pub const ALL: [Kernel; 9] = [
        Kernel::TwoMm,
        Kernel::ThreeMm,
        Kernel::Gemm,
        Kernel::Syrk,
        Kernel::Syr2k,
        Kernel::Atax,
        Kernel::Bicg,
        Kernel::Gesummv,
        Kernel::Mvt,
    ];

    /// The kernel's short name (as used in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::TwoMm => "2mm",
            Kernel::ThreeMm => "3mm",
            Kernel::Gemm => "gemm",
            Kernel::Syrk => "syrk",
            Kernel::Syr2k => "syr2k",
            Kernel::Atax => "atax",
            Kernel::Bicg => "bicg",
            Kernel::Gesummv => "gesu",
            Kernel::Mvt => "mvt",
        }
    }

    /// Whether this is one of the paper's "small" (matrix-vector) kernels.
    pub fn is_small(self) -> bool {
        matches!(
            self,
            Kernel::Atax | Kernel::Bicg | Kernel::Gesummv | Kernel::Mvt
        )
    }

    /// Full-size (paper) dimensions.
    fn paper_dims(self) -> Dims {
        match self {
            Kernel::TwoMm => Dims {
                ni: 1600,
                nj: 1800,
                nk: 2200,
                nl: 2400,
                nm: 0,
            },
            Kernel::ThreeMm => Dims {
                ni: 1800,
                nj: 1900,
                nk: 2000,
                nl: 2100,
                nm: 2200,
            },
            Kernel::Gemm => Dims {
                ni: 2000,
                nj: 2300,
                nk: 2600,
                nl: 0,
                nm: 0,
            },
            Kernel::Syrk => Dims {
                ni: 2600,
                nj: 0,
                nk: 2000,
                nl: 0,
                nm: 0,
            },
            Kernel::Syr2k => Dims {
                ni: 2600,
                nj: 0,
                nk: 2000,
                nl: 0,
                nm: 0,
            },
            Kernel::Atax => Dims {
                ni: 2000,
                nj: 2000,
                nk: 0,
                nl: 0,
                nm: 0,
            },
            Kernel::Bicg => Dims {
                ni: 1800,
                nj: 1800,
                nk: 0,
                nl: 0,
                nm: 0,
            },
            Kernel::Gesummv => Dims {
                ni: 1400,
                nj: 1400,
                nk: 0,
                nl: 0,
                nm: 0,
            },
            Kernel::Mvt => Dims {
                ni: 2000,
                nj: 2000,
                nk: 0,
                nl: 0,
                nm: 0,
            },
        }
    }

    /// The paper's Table IV VPC counts `(#PIM-VPC, #move-VPC)`.
    pub fn paper_vpc_counts(self) -> (f64, f64) {
        match self {
            Kernel::TwoMm => (7.37e6, 7.36e6),
            Kernel::ThreeMm => (1.19e7, 1.18e7),
            Kernel::Gemm => (4.61e6, 4.60e6),
            Kernel::Syrk => (6.77e6, 6.76e6),
            Kernel::Syr2k => (1.36e7, 1.35e7),
            Kernel::Atax => (4.00e3, 8.40e3),
            Kernel::Bicg => (3.60e3, 8.00e3),
            Kernel::Gesummv => (5.60e3, 8.40e3),
            Kernel::Mvt => (8.00e3, 1.60e4),
        }
    }

    /// Full-size instance (the paper's evaluation point).
    pub fn paper_instance(self) -> KernelInstance {
        KernelInstance {
            kernel: self,
            dims: self.paper_dims(),
        }
    }

    /// Instance scaled by `factor` (dimensions multiplied and clamped to a
    /// minimum of 4), for fast tests and micro-benchmarks.
    pub fn scaled(self, factor: f64) -> KernelInstance {
        let d = self.paper_dims();
        let s = |x: usize| {
            if x == 0 {
                0
            } else {
                ((x as f64 * factor).round() as usize).max(4)
            }
        };
        KernelInstance {
            kernel: self,
            dims: Dims {
                ni: s(d.ni),
                nj: s(d.nj),
                nk: s(d.nk),
                nl: s(d.nl),
                nm: s(d.nm),
            },
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel dimensions (unused dimensions are zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Dims {
    ni: usize,
    nj: usize,
    nk: usize,
    nl: usize,
    nm: usize,
}

/// A kernel at a concrete problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelInstance {
    /// The kernel.
    pub kernel: Kernel,
    dims: Dims,
}

/// The matrices a kernel builder produced, with the output handle last.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// The populated task, ready to lower/price/run.
    pub task: PimTask,
    /// Handles of the input matrices, in definition order.
    pub inputs: Vec<MatHandle>,
    /// Handle of the primary output.
    pub output: MatHandle,
}

impl KernelInstance {
    /// Builds the PIM task. With `Some(seed)` the inputs are random small
    /// values (functional runs); with `None` they are zeros (shape-only
    /// pricing of full-size instances).
    pub fn build_task(&self, seed: Option<u64>) -> BuiltKernel {
        let d = self.dims;
        let gen = |rows: usize, cols: usize, salt: u64| match seed {
            Some(s) => workload_matrix(rows, cols, s.wrapping_add(salt)),
            None => Matrix::zeros(rows, cols),
        };
        let mut task = PimTask::new();
        // All builders unwrap: shapes are constructed consistently here, so
        // add_matrix/add_operation cannot fail.
        let mut add = |m: Matrix| task.add_matrix(&m).expect("shapes are consistent");

        match self.kernel {
            Kernel::TwoMm => {
                let a = add(gen(d.ni, d.nk, 1));
                let b = add(gen(d.nk, d.nj, 2));
                let c = add(gen(d.nj, d.nl, 3));
                let dd = add(gen(d.ni, d.nl, 4));
                let tmp1 = add(Matrix::zeros(d.ni, d.nj));
                let tmp2 = add(Matrix::zeros(d.ni, d.nl));
                let e = add(Matrix::zeros(d.ni, d.nl));
                task.add_operation(MatrixOp::MatMul { a, b, dst: tmp1 })
                    .unwrap();
                task.add_operation(MatrixOp::MatMul {
                    a: tmp1,
                    b: c,
                    dst: tmp2,
                })
                .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: ALPHA,
                    a: tmp2,
                    beta: BETA,
                    b: dd,
                    dst: e,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, b, c, dd],
                    output: e,
                }
            }
            Kernel::ThreeMm => {
                let a = add(gen(d.ni, d.nk, 1));
                let b = add(gen(d.nk, d.nj, 2));
                let c = add(gen(d.nj, d.nm, 3));
                let dd = add(gen(d.nm, d.nl, 4));
                let e = add(Matrix::zeros(d.ni, d.nj));
                let f = add(Matrix::zeros(d.nj, d.nl));
                let g = add(Matrix::zeros(d.ni, d.nl));
                task.add_operation(MatrixOp::MatMul { a, b, dst: e })
                    .unwrap();
                task.add_operation(MatrixOp::MatMul {
                    a: c,
                    b: dd,
                    dst: f,
                })
                .unwrap();
                task.add_operation(MatrixOp::MatMul { a: e, b: f, dst: g })
                    .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, b, c, dd],
                    output: g,
                }
            }
            Kernel::Gemm => {
                let a = add(gen(d.ni, d.nk, 1));
                let b = add(gen(d.nk, d.nj, 2));
                let c = add(gen(d.ni, d.nj, 3));
                let tmp = add(Matrix::zeros(d.ni, d.nj));
                let out = add(Matrix::zeros(d.ni, d.nj));
                task.add_operation(MatrixOp::MatMul { a, b, dst: tmp })
                    .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: ALPHA,
                    a: tmp,
                    beta: BETA,
                    b: c,
                    dst: out,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, b, c],
                    output: out,
                }
            }
            Kernel::Syrk => {
                let a_mat = gen(d.ni, d.nk, 1);
                let at = a_mat.transpose();
                let a = add(a_mat);
                let atr = add(at);
                let c = add(gen(d.ni, d.ni, 2));
                let tmp = add(Matrix::zeros(d.ni, d.ni));
                let out = add(Matrix::zeros(d.ni, d.ni));
                task.add_operation(MatrixOp::MatMul {
                    a,
                    b: atr,
                    dst: tmp,
                })
                .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: ALPHA,
                    a: tmp,
                    beta: BETA,
                    b: c,
                    dst: out,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, atr, c],
                    output: out,
                }
            }
            Kernel::Syr2k => {
                let a_mat = gen(d.ni, d.nk, 1);
                let b_mat = gen(d.ni, d.nk, 2);
                let at = add(a_mat.transpose());
                let bt = add(b_mat.transpose());
                let a = add(a_mat);
                let b = add(b_mat);
                let c = add(gen(d.ni, d.ni, 3));
                let t1 = add(Matrix::zeros(d.ni, d.ni));
                let t2 = add(Matrix::zeros(d.ni, d.ni));
                let t3 = add(Matrix::zeros(d.ni, d.ni));
                let out = add(Matrix::zeros(d.ni, d.ni));
                task.add_operation(MatrixOp::MatMul { a, b: bt, dst: t1 })
                    .unwrap();
                task.add_operation(MatrixOp::MatMul {
                    a: b,
                    b: at,
                    dst: t2,
                })
                .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: ALPHA,
                    a: t1,
                    beta: ALPHA,
                    b: t2,
                    dst: t3,
                })
                .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: 1,
                    a: t3,
                    beta: BETA,
                    b: c,
                    dst: out,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, b, c],
                    output: out,
                }
            }
            Kernel::Atax => {
                let a_mat = gen(d.ni, d.nj, 1);
                let at = add(a_mat.transpose());
                let a = add(a_mat);
                let x = add(gen(d.nj, 1, 2));
                let tmp = add(Matrix::zeros(d.ni, 1));
                let y = add(Matrix::zeros(d.nj, 1));
                task.add_operation(MatrixOp::MatVec { a, x, dst: tmp })
                    .unwrap();
                task.add_operation(MatrixOp::MatVec {
                    a: at,
                    x: tmp,
                    dst: y,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, x],
                    output: y,
                }
            }
            Kernel::Bicg => {
                let a_mat = gen(d.ni, d.nj, 1);
                let at = add(a_mat.transpose());
                let a = add(a_mat);
                let p = add(gen(d.nj, 1, 2));
                let r = add(gen(d.ni, 1, 3));
                let q = add(Matrix::zeros(d.ni, 1));
                let s = add(Matrix::zeros(d.nj, 1));
                task.add_operation(MatrixOp::MatVec { a, x: p, dst: q })
                    .unwrap();
                task.add_operation(MatrixOp::MatVec {
                    a: at,
                    x: r,
                    dst: s,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, p, r],
                    output: q,
                }
            }
            Kernel::Gesummv => {
                let a = add(gen(d.ni, d.nj, 1));
                let b = add(gen(d.ni, d.nj, 2));
                let x = add(gen(d.nj, 1, 3));
                let u = add(Matrix::zeros(d.ni, 1));
                let v = add(Matrix::zeros(d.ni, 1));
                let y = add(Matrix::zeros(d.ni, 1));
                task.add_operation(MatrixOp::MatVec { a, x, dst: u })
                    .unwrap();
                task.add_operation(MatrixOp::MatVec { a: b, x, dst: v })
                    .unwrap();
                task.add_operation(MatrixOp::Axpby {
                    alpha: ALPHA,
                    a: u,
                    beta: BETA,
                    b: v,
                    dst: y,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, b, x],
                    output: y,
                }
            }
            Kernel::Mvt => {
                let a_mat = gen(d.ni, d.nj, 1);
                let at = add(a_mat.transpose());
                let a = add(a_mat);
                let x1 = add(gen(d.ni, 1, 2));
                let x2 = add(gen(d.nj, 1, 3));
                let y1 = add(gen(d.nj, 1, 4));
                let y2 = add(gen(d.ni, 1, 5));
                let t1 = add(Matrix::zeros(d.ni, 1));
                let t2 = add(Matrix::zeros(d.nj, 1));
                let o1 = add(Matrix::zeros(d.ni, 1));
                let o2 = add(Matrix::zeros(d.nj, 1));
                task.add_operation(MatrixOp::MatVec { a, x: y1, dst: t1 })
                    .unwrap();
                task.add_operation(MatrixOp::MatAdd {
                    a: x1,
                    b: t1,
                    dst: o1,
                })
                .unwrap();
                task.add_operation(MatrixOp::MatVec {
                    a: at,
                    x: y2,
                    dst: t2,
                })
                .unwrap();
                task.add_operation(MatrixOp::MatAdd {
                    a: x2,
                    b: t2,
                    dst: o2,
                })
                .unwrap();
                BuiltKernel {
                    task,
                    inputs: vec![a, x1, x2, y1, y2],
                    output: o1,
                }
            }
        }
    }

    /// Host-side reference output for validation (use at reduced scales).
    pub fn reference(&self, seed: u64) -> Matrix {
        let d = self.dims;
        let gen = |rows: usize, cols: usize, salt: u64| {
            workload_matrix(rows, cols, seed.wrapping_add(salt))
        };
        match self.kernel {
            Kernel::TwoMm => {
                let (a, b, c, dd) = (
                    gen(d.ni, d.nk, 1),
                    gen(d.nk, d.nj, 2),
                    gen(d.nj, d.nl, 3),
                    gen(d.ni, d.nl, 4),
                );
                a.matmul(&b).matmul(&c).scale(ALPHA).add(&dd.scale(BETA))
            }
            Kernel::ThreeMm => {
                let (a, b, c, dd) = (
                    gen(d.ni, d.nk, 1),
                    gen(d.nk, d.nj, 2),
                    gen(d.nj, d.nm, 3),
                    gen(d.nm, d.nl, 4),
                );
                a.matmul(&b).matmul(&c.matmul(&dd))
            }
            Kernel::Gemm => {
                let (a, b, c) = (gen(d.ni, d.nk, 1), gen(d.nk, d.nj, 2), gen(d.ni, d.nj, 3));
                a.matmul(&b).scale(ALPHA).add(&c.scale(BETA))
            }
            Kernel::Syrk => {
                let (a, c) = (gen(d.ni, d.nk, 1), gen(d.ni, d.ni, 2));
                a.matmul(&a.transpose()).scale(ALPHA).add(&c.scale(BETA))
            }
            Kernel::Syr2k => {
                let (a, b, c) = (gen(d.ni, d.nk, 1), gen(d.ni, d.nk, 2), gen(d.ni, d.ni, 3));
                a.matmul(&b.transpose())
                    .scale(ALPHA)
                    .add(&b.matmul(&a.transpose()).scale(ALPHA))
                    .add(&c.scale(BETA))
            }
            Kernel::Atax => {
                let (a, x) = (gen(d.ni, d.nj, 1), gen(d.nj, 1, 2));
                a.transpose().matmul(&a.matmul(&x))
            }
            Kernel::Bicg => {
                let (a, p) = (gen(d.ni, d.nj, 1), gen(d.nj, 1, 2));
                a.matmul(&p)
            }
            Kernel::Gesummv => {
                let (a, b, x) = (gen(d.ni, d.nj, 1), gen(d.ni, d.nj, 2), gen(d.nj, 1, 3));
                a.matmul(&x).scale(ALPHA).add(&b.matmul(&x).scale(BETA))
            }
            Kernel::Mvt => {
                let (a, x1, y1) = (gen(d.ni, d.nj, 1), gen(d.ni, 1, 2), gen(d.nj, 1, 4));
                x1.add(&a.matmul(&y1))
            }
        }
    }

    /// Compute/memory characterization for the host baselines (doubles).
    pub fn profile(&self) -> KernelProfile {
        let d = self.dims;
        let f = |x: usize| x as f64;
        const W: f64 = 8.0; // double precision on the host platforms
        let (flops, bytes, working_set) = match self.kernel {
            Kernel::TwoMm => {
                let flops = 2.0 * f(d.ni) * f(d.nj) * f(d.nk)
                    + 2.0 * f(d.ni) * f(d.nl) * f(d.nj)
                    + 3.0 * f(d.ni) * f(d.nl);
                let ws = W
                    * (f(d.ni) * f(d.nk)
                        + f(d.nk) * f(d.nj)
                        + f(d.nj) * f(d.nl)
                        + 2.0 * f(d.ni) * f(d.nl)
                        + f(d.ni) * f(d.nj));
                (flops, ws, ws)
            }
            Kernel::ThreeMm => {
                let flops = 2.0 * f(d.ni) * f(d.nj) * f(d.nk)
                    + 2.0 * f(d.nj) * f(d.nl) * f(d.nm)
                    + 2.0 * f(d.ni) * f(d.nl) * f(d.nj);
                let ws = W
                    * (f(d.ni) * f(d.nk)
                        + f(d.nk) * f(d.nj)
                        + f(d.nj) * f(d.nm)
                        + f(d.nm) * f(d.nl)
                        + f(d.ni) * f(d.nj)
                        + f(d.nj) * f(d.nl)
                        + f(d.ni) * f(d.nl));
                (flops, ws, ws)
            }
            Kernel::Gemm => {
                let flops = 2.0 * f(d.ni) * f(d.nj) * f(d.nk) + 3.0 * f(d.ni) * f(d.nj);
                let ws = W * (f(d.ni) * f(d.nk) + f(d.nk) * f(d.nj) + 2.0 * f(d.ni) * f(d.nj));
                (flops, ws, ws)
            }
            Kernel::Syrk => {
                let flops = 2.0 * f(d.ni) * f(d.ni) * f(d.nk) + 3.0 * f(d.ni) * f(d.ni);
                let ws = W * (f(d.ni) * f(d.nk) + 2.0 * f(d.ni) * f(d.ni));
                (flops, ws, ws)
            }
            Kernel::Syr2k => {
                let flops = 4.0 * f(d.ni) * f(d.ni) * f(d.nk) + 5.0 * f(d.ni) * f(d.ni);
                let ws = W * (2.0 * f(d.ni) * f(d.nk) + 2.0 * f(d.ni) * f(d.ni));
                (flops, ws, ws)
            }
            Kernel::Atax => {
                let flops = 4.0 * f(d.ni) * f(d.nj);
                let ws = W * (f(d.ni) * f(d.nj) + 2.0 * f(d.nj) + f(d.ni));
                // The matrix streams twice (A then A^T): compulsory traffic
                // is ~2x the working set.
                (flops, 2.0 * ws, ws)
            }
            Kernel::Bicg => {
                let flops = 4.0 * f(d.ni) * f(d.nj);
                let ws = W * (f(d.ni) * f(d.nj) + 2.0 * (f(d.ni) + f(d.nj)));
                (flops, 2.0 * ws, ws)
            }
            Kernel::Gesummv => {
                let flops = 4.0 * f(d.ni) * f(d.nj) + 3.0 * f(d.ni);
                let ws = W * (2.0 * f(d.ni) * f(d.nj) + f(d.nj) + 3.0 * f(d.ni));
                (flops, ws, ws)
            }
            Kernel::Mvt => {
                let flops = 4.0 * f(d.ni) * f(d.nj) + 2.0 * (f(d.ni) + f(d.nj));
                let ws = W * (f(d.ni) * f(d.nj) + 4.0 * f(d.ni));
                (flops, 2.0 * ws, ws)
            }
        };
        KernelProfile {
            name: self.kernel.name().to_string(),
            flops,
            bytes,
            working_set,
            small: self.kernel.is_small(),
            cpu_efficiency: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_device::{StreamPim, StreamPimConfig};

    fn device() -> StreamPim {
        StreamPim::new(StreamPimConfig::paper_default()).unwrap()
    }

    #[test]
    fn all_kernels_build_and_run_at_small_scale() {
        for kernel in Kernel::ALL {
            let inst = kernel.scaled(0.01);
            let built = inst.build_task(Some(7));
            let out = built.task.run(&device()).unwrap();
            assert!(out.report.total_ns() > 0.0, "{kernel} has nonzero time");
        }
    }

    #[test]
    fn functional_results_match_reference() {
        for kernel in Kernel::ALL {
            let inst = kernel.scaled(0.008);
            let built = inst.build_task(Some(11));
            let out = built.task.run(&device()).unwrap();
            let got = out.matrix(built.output).unwrap();
            let expect = inst.reference(11);
            assert_eq!(got, &expect, "kernel {kernel} functional mismatch");
        }
    }

    #[test]
    fn full_size_vpc_counts_match_table_iv() {
        // Paper Table IV; gemm/syrk/syr2k/gesummv/mvt reproduce (nearly)
        // exactly, the rest within 10%.
        for kernel in Kernel::ALL {
            let built = kernel.paper_instance().build_task(None);
            let schedule = built.task.lower(&device()).unwrap();
            let counts = schedule.counts();
            let (pim_expect, move_expect) = kernel.paper_vpc_counts();
            let pim_err = (counts.pim as f64 - pim_expect).abs() / pim_expect;
            let move_err = (counts.moves as f64 - move_expect).abs() / move_expect;
            assert!(
                pim_err < 0.10,
                "{kernel}: #PIM {} vs paper {pim_expect} ({pim_err:.2})",
                counts.pim
            );
            assert!(
                move_err < 0.15,
                "{kernel}: #move {} vs paper {move_expect} ({move_err:.2})",
                counts.moves
            );
        }
    }

    #[test]
    fn small_kernel_classification() {
        assert!(Kernel::Atax.is_small());
        assert!(Kernel::Mvt.is_small());
        assert!(!Kernel::Gemm.is_small());
        assert!(!Kernel::ThreeMm.is_small());
    }

    #[test]
    fn profiles_are_positive_and_small_kernels_low_intensity() {
        for kernel in Kernel::ALL {
            let p = kernel.paper_instance().profile();
            assert!(
                p.flops > 0.0 && p.bytes > 0.0 && p.working_set > 0.0,
                "{kernel}"
            );
            if kernel.is_small() {
                assert!(p.intensity() < 5.0, "{kernel} should be memory-bound");
            } else {
                assert!(p.intensity() > 50.0, "{kernel} should be compute-bound");
            }
        }
    }

    #[test]
    fn scaled_dims_clamp() {
        let inst = Kernel::Gemm.scaled(0.0001);
        let p = inst.profile();
        assert!(p.flops >= 2.0 * 4.0 * 4.0 * 4.0);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 9);
    }
}
