//! Matrix type re-export and deterministic random generators.

pub use pim_device::matrix::Matrix;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a `rows x cols` matrix of uniform values in `[lo, hi]`,
/// deterministically from `seed`.
///
/// The default workload range is small (`0..=15`) so that products and
/// 2000-element dot products stay well inside the device's 8-bit element /
/// 32-bit accumulator datapath, keeping the bit-accurate layer exact.
///
/// # Panics
///
/// Panics if `lo > hi` or a dimension is zero.
pub fn random_matrix(rows: usize, cols: usize, lo: i64, hi: i64, seed: u64) -> Matrix {
    assert!(lo <= hi, "invalid range {lo}..={hi}");
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..=hi))
}

/// Generates a column vector of uniform values in `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi` or `len` is zero.
pub fn random_vector(len: usize, lo: i64, hi: i64, seed: u64) -> Matrix {
    random_matrix(len, 1, lo, hi, seed)
}

/// The default small-value matrix used by kernel builders.
pub fn workload_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    random_matrix(rows, cols, 0, 15, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = random_matrix(10, 10, 0, 100, 42);
        let b = random_matrix(10, 10, 0, 100, 42);
        let c = random_matrix(10, 10, 0, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_range() {
        let m = random_matrix(20, 20, -5, 5, 7);
        assert!(m.as_slice().iter().all(|&v| (-5..=5).contains(&v)));
    }

    #[test]
    fn vector_shape() {
        let v = random_vector(8, 0, 1, 0);
        assert_eq!(v.shape(), (8, 1));
    }

    #[test]
    fn workload_values_fit_8_bits() {
        let m = workload_matrix(16, 16, 1);
        assert!(m.max_abs() < 16);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_reversed_range() {
        let _ = random_matrix(2, 2, 5, 1, 0);
    }
}
