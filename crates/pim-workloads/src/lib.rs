//! Workload generators for the StreamPIM reproduction.
//!
//! The paper evaluates nine polybench linear-algebra kernels (Table IV) and
//! two end-to-end DNN inferences (MLP, BERT). This crate builds those
//! workloads in two coupled representations:
//!
//! * a [`pim_device::PimTask`] — the PIM-side command stream, lowered with
//!   the paper's `distribute`/`unblock` optimizations (the per-kernel VPC
//!   counts are validated against Table IV by this crate's tests);
//! * a [`profile::KernelProfile`] — flop/byte/working-set characterization
//!   consumed by the CPU/GPU/DRAM baseline models.
//!
//! [`matrix`] re-exports the dense matrix type plus deterministic random
//! generators; [`dnn`] provides the MLP and BERT layer graphs of §V-E.

pub mod dnn;
pub mod matrix;
pub mod polybench;
pub mod profile;
pub mod quant;
pub mod spec;
pub mod trace;

pub use dnn::DnnModel;
pub use matrix::Matrix;
pub use polybench::{Kernel, KernelInstance};
pub use profile::KernelProfile;
pub use quant::Quantizer;
pub use spec::{DnnKind, WorkloadSpec};
