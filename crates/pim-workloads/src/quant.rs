//! Fixed-point quantization for offloading real-valued models (paper §VI:
//! wider data representations are built on the same integer datapath).
//!
//! The RM processor computes on `word_bits`-wide integers. Real-valued
//! workloads (the DNN inferences of §V-E) are offloaded by quantizing
//! operands to fixed point, multiplying on the device, and rescaling the
//! results — the standard INT8 inference recipe. This module provides the
//! symmetric-range quantizer, the product rescaling, and error bounds the
//! tests verify.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A symmetric linear quantizer onto `bits`-bit signed integers.
///
/// ```
/// use pim_workloads::quant::Quantizer;
///
/// let values = [0.5_f64, -1.25, 2.0];
/// let q = Quantizer::fit(&values, 8);
/// let ints: Vec<i64> = values.iter().map(|&v| q.quantize(v)).collect();
/// for (&v, &i) in values.iter().zip(&ints) {
///     assert!((q.dequantize(i) - v).abs() <= q.step());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    scale: f64,
    bits: u32,
}

impl Quantizer {
    /// Fits a quantizer to cover `values` with `bits`-bit signed integers.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=31` or `values` is empty.
    pub fn fit(values: &[f64], bits: u32) -> Self {
        assert!((2..=31).contains(&bits), "bits must be in 2..=31");
        assert!(!values.is_empty(), "need values to fit");
        let max_abs = values
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let qmax = ((1i64 << (bits - 1)) - 1) as f64;
        Quantizer {
            scale: qmax / max_abs,
            bits,
        }
    }

    /// Fits a quantizer to a matrix interpreted as `f64` values scaled by
    /// `unit` (convenience for integer test matrices).
    pub fn fit_matrix(m: &Matrix, bits: u32) -> Self {
        let values: Vec<f64> = m.as_slice().iter().map(|&v| v as f64).collect();
        Quantizer::fit(&values, bits)
    }

    /// The quantization step (one integer level in real units).
    pub fn step(&self) -> f64 {
        1.0 / self.scale
    }

    /// Integer bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes a real value (saturating to the representable range).
    pub fn quantize(&self, v: f64) -> i64 {
        let qmax = (1i64 << (self.bits - 1)) - 1;
        ((v * self.scale).round() as i64).clamp(-qmax, qmax)
    }

    /// Recovers the real value of a quantized integer.
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 / self.scale
    }

    /// Quantizes a whole real-valued matrix (given as a generator).
    pub fn quantize_matrix(
        &self,
        rows: usize,
        cols: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| self.quantize(f(i, j)))
    }

    /// Dequantization scale for a *product* of two quantized operands: the
    /// integer matmul result divides by both scales.
    pub fn product_dequant(a: &Quantizer, b: &Quantizer, q: i64) -> f64 {
        q as f64 / (a.scale * b.scale)
    }

    /// Worst-case absolute error of a length-`k` dot product of values
    /// bounded by `max_a`/`max_b` under these quantizers: each operand
    /// contributes half a step.
    pub fn dot_error_bound(a: &Quantizer, b: &Quantizer, k: usize, max_a: f64, max_b: f64) -> f64 {
        let ea = 0.5 * a.step();
        let eb = 0.5 * b.step();
        k as f64 * (ea * max_b + eb * max_a + ea * eb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_a(i: usize, j: usize) -> f64 {
        ((i * 31 + j * 17) % 97) as f64 / 40.0 - 1.0
    }

    fn gen_b(i: usize, j: usize) -> f64 {
        ((i * 13 + j * 7) % 89) as f64 / 30.0 - 1.2
    }

    #[test]
    fn quantize_dequantize_within_one_step() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) / 13.0).collect();
        let q = Quantizer::fit(&values, 8);
        for &v in &values {
            assert!((q.dequantize(q.quantize(v)) - v).abs() <= q.step(), "{v}");
        }
    }

    #[test]
    fn saturation_at_range_edges() {
        let q = Quantizer::fit(&[1.0], 8);
        assert_eq!(q.quantize(2.0), 127, "saturates high");
        assert_eq!(q.quantize(-2.0), -127, "saturates low");
    }

    #[test]
    fn quantized_matmul_tracks_real_matmul() {
        let (m, k, n) = (12, 20, 9);
        let qa = Quantizer::fit(
            &(0..m * k).map(|x| gen_a(x / k, x % k)).collect::<Vec<_>>(),
            8,
        );
        let qb = Quantizer::fit(
            &(0..k * n).map(|x| gen_b(x / n, x % n)).collect::<Vec<_>>(),
            8,
        );
        let a_int = qa.quantize_matrix(m, k, gen_a);
        let b_int = qb.quantize_matrix(k, n, gen_b);
        let c_int = a_int.matmul(&b_int);

        let bound = Quantizer::dot_error_bound(&qa, &qb, k, 1.5, 1.8);
        for i in 0..m {
            for j in 0..n {
                let real: f64 = (0..k).map(|t| gen_a(i, t) * gen_b(t, j)).sum();
                let approx = Quantizer::product_dequant(&qa, &qb, c_int[(i, j)]);
                assert!(
                    (real - approx).abs() <= bound,
                    "({i},{j}): real {real} vs quantized {approx} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn more_bits_shrink_error() {
        let values: Vec<f64> = (0..64).map(|i| (i as f64) / 7.0 - 4.0).collect();
        let q8 = Quantizer::fit(&values, 8);
        let q12 = Quantizer::fit(&values, 12);
        assert!(q12.step() < q8.step() / 8.0);
        assert_eq!(q8.bits(), 8);
    }

    #[test]
    #[should_panic(expected = "need values")]
    fn empty_fit_panics() {
        let _ = Quantizer::fit(&[], 8);
    }
}
