//! Serializable workload specifications for the batch runtime.
//!
//! A [`WorkloadSpec`] names a workload by value — a polybench kernel at a
//! scale, a DNN model, or a raw matrix-multiply shape — without holding any
//! built matrices. Specs are `Eq + Hash` and round-trip through JSON, so
//! they can key schedule caches and travel in job requests; the heavyweight
//! [`PimTask`]/[`KernelProfile`] representations are built on demand.
//!
//! Scale is stored in parts-per-million ([`WorkloadSpec::polybench`]) rather
//! than as `f64` precisely so the spec stays `Eq + Hash`: two jobs naming
//! the same kernel at the same scale compare equal and cache-collide, which
//! is the point.

use crate::dnn::DnnModel;
use crate::matrix::Matrix;
use crate::polybench::Kernel;
use crate::profile::KernelProfile;
use pim_device::task::{PimTask, ShapeTask};
use serde::{Deserialize, Serialize};

/// The DNN models of the paper's §V-E evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnnKind {
    /// Three-layer MLP.
    Mlp,
    /// BERT-base encoder layer stack.
    Bert,
}

impl DnnKind {
    /// Builds the model description.
    pub fn model(self) -> DnnModel {
        match self {
            DnnKind::Mlp => DnnModel::mlp(),
            DnnKind::Bert => DnnModel::bert(),
        }
    }

    /// The model's display name.
    pub fn name(self) -> &'static str {
        match self {
            DnnKind::Mlp => "mlp",
            DnnKind::Bert => "bert",
        }
    }
}

/// A workload named by value: cheap to clone, compare, hash and serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A polybench kernel at `scale_ppm` parts-per-million of the paper's
    /// problem size (1_000_000 = full size; see [`Kernel::scaled`]).
    Polybench {
        /// The kernel.
        kernel: Kernel,
        /// Scale factor in parts per million.
        scale_ppm: u32,
    },
    /// The offloadable matrix work of a DNN model.
    Dnn {
        /// The model.
        model: DnnKind,
    },
    /// A single dense matrix multiplication `C[m,n] = A[m,k] * B[k,n]`.
    MatMul {
        /// Rows of `A`.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of `B`.
        n: usize,
    },
}

impl WorkloadSpec {
    /// Polybench spec at a fractional scale (`1.0` = paper size). The scale
    /// is quantized to parts-per-million.
    pub fn polybench(kernel: Kernel, scale: f64) -> Self {
        WorkloadSpec::Polybench {
            kernel,
            scale_ppm: (scale * 1e6).round().max(0.0) as u32,
        }
    }

    /// DNN spec.
    pub fn dnn(model: DnnKind) -> Self {
        WorkloadSpec::Dnn { model }
    }

    /// Display name (kernel/model name, plus shape or scale when reduced).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Polybench { kernel, scale_ppm } => {
                if *scale_ppm == 1_000_000 {
                    kernel.name().to_string()
                } else {
                    format!("{}@{:.4}", kernel.name(), *scale_ppm as f64 / 1e6)
                }
            }
            WorkloadSpec::Dnn { model } => model.name().to_string(),
            WorkloadSpec::MatMul { m, k, n } => format!("matmul_{m}x{k}x{n}"),
        }
    }

    /// Builds the PIM task (shape-only: matrices are zeros, as pricing only
    /// consumes shapes).
    pub fn build_task(&self) -> PimTask {
        match self {
            WorkloadSpec::Polybench { kernel, scale_ppm } => {
                let inst = if *scale_ppm == 1_000_000 {
                    kernel.paper_instance()
                } else {
                    kernel.scaled(*scale_ppm as f64 / 1e6)
                };
                inst.build_task(None).task
            }
            WorkloadSpec::Dnn { model } => model.model().build_task(),
            WorkloadSpec::MatMul { m, k, n } => {
                let mut task = PimTask::new();
                let a = task
                    .add_matrix(&Matrix::zeros(*m, *k))
                    .expect("matmul shapes are consistent");
                let b = task
                    .add_matrix(&Matrix::zeros(*k, *n))
                    .expect("matmul shapes are consistent");
                let dst = task.add_output(*m, *n).expect("matmul output fits");
                task.add_operation(pim_device::task::MatrixOp::MatMul { a, b, dst })
                    .expect("operand shapes agree");
                task
            }
        }
    }

    /// A dimension-blind discriminant of the workload's computation-graph
    /// shape: two specs share a shape class exactly when they build the
    /// same DAG of operations over (possibly) differently-sized matrices.
    /// A polybench kernel keeps its op graph at every scale; every raw
    /// `MatMul` is one op regardless of `m`/`k`/`n`. The runtime's
    /// near-miss detection keys its price tables on this value (combined
    /// with the lowering config).
    pub fn shape_class(&self) -> (u8, u32) {
        match self {
            WorkloadSpec::Polybench { kernel, .. } => (0, *kernel as u32),
            WorkloadSpec::Dnn { model } => (1, *model as u32),
            WorkloadSpec::MatMul { .. } => (2, 0),
        }
    }

    /// Builds the shape-only view of the task: the same operation graph
    /// with matrix dimensions but no element data.
    ///
    /// Lowering a `ShapeTask` yields a schedule identical to lowering
    /// [`Self::build_task`]'s result (see [`ShapeTask`]); for `MatMul` specs
    /// the shape task is assembled directly, skipping the zero-matrix
    /// allocations entirely — the fast path the runtime's near-miss
    /// re-pricing rides on.
    pub fn shape_task(&self) -> ShapeTask {
        match self {
            WorkloadSpec::MatMul { m, k, n } => {
                let mut task = ShapeTask::new();
                let a = task.add_shape(*m, *k).expect("matmul shapes register");
                let b = task.add_shape(*k, *n).expect("matmul shapes register");
                let dst = task.add_shape(*m, *n).expect("matmul output registers");
                task.add_operation(pim_device::task::MatrixOp::MatMul { a, b, dst })
                    .expect("operand shapes agree");
                task
            }
            _ => self.build_task().shape_task(),
        }
    }

    /// Builds the host-side characterization consumed by CPU/GPU baselines.
    pub fn profile(&self) -> KernelProfile {
        match self {
            WorkloadSpec::Polybench { kernel, scale_ppm } => {
                let inst = if *scale_ppm == 1_000_000 {
                    kernel.paper_instance()
                } else {
                    kernel.scaled(*scale_ppm as f64 / 1e6)
                };
                inst.profile()
            }
            WorkloadSpec::Dnn { model } => model.model().offload_profile(),
            WorkloadSpec::MatMul { m, k, n } => {
                let (m, k, n) = (*m as f64, *k as f64, *n as f64);
                KernelProfile {
                    name: self.name(),
                    flops: 2.0 * m * k * n,
                    // Compulsory traffic: read A and B, write C (with the
                    // read-modify-write the host's blocked gemm incurs).
                    bytes: 8.0 * (m * k + k * n + 2.0 * m * n),
                    working_set: 8.0 * (m * k + k * n + m * n),
                    small: false,
                    cpu_efficiency: 1.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let a = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let b = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let c = WorkloadSpec::polybench(Kernel::Gemm, 0.03);
        assert_eq!(a, b, "same kernel and scale compare equal");
        assert_ne!(a, c);
        let set: HashSet<WorkloadSpec> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn specs_round_trip_through_json() {
        let specs = [
            WorkloadSpec::polybench(Kernel::Atax, 1.0),
            WorkloadSpec::dnn(DnnKind::Bert),
            WorkloadSpec::MatMul {
                m: 64,
                k: 32,
                n: 16,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
    }

    #[test]
    fn build_task_matches_kernel_builder() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let direct = Kernel::Gemm.scaled(0.02).build_task(None).task;
        let from_spec = spec.build_task();
        assert_eq!(direct.operation_count(), from_spec.operation_count());
    }

    #[test]
    fn matmul_spec_builds_and_profiles() {
        let spec = WorkloadSpec::MatMul { m: 16, k: 8, n: 12 };
        assert_eq!(spec.build_task().operation_count(), 1);
        let p = spec.profile();
        assert_eq!(p.flops, 2.0 * 16.0 * 8.0 * 12.0);
        assert!(p.bytes > 0.0);
        assert_eq!(spec.name(), "matmul_16x8x12");
    }

    #[test]
    fn shape_task_lowers_identically_to_built_task() {
        let dev = pim_device::StreamPim::new(pim_device::StreamPimConfig::paper_default()).unwrap();
        let specs = [
            WorkloadSpec::MatMul { m: 24, k: 16, n: 8 },
            WorkloadSpec::polybench(Kernel::Gemm, 0.02),
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            WorkloadSpec::dnn(DnnKind::Mlp),
        ];
        for spec in specs {
            let from_task = spec.build_task().lower(&dev).unwrap();
            let from_shapes = spec.shape_task().lower(&dev).unwrap();
            assert_eq!(from_task, from_shapes, "{}", spec.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WorkloadSpec::polybench(Kernel::Mvt, 1.0).name(), "mvt");
        assert_eq!(
            WorkloadSpec::polybench(Kernel::Mvt, 0.25).name(),
            "mvt@0.2500"
        );
        assert_eq!(WorkloadSpec::dnn(DnnKind::Mlp).name(), "mlp");
    }
}
