//! End-to-end DNN workloads: MLP and BERT inference (paper §V-E).
//!
//! Both networks offload their matrix multiplications and additions to
//! StreamPIM; nonlinear operations (ReLU, softmax, GELU, layer norm) stay on
//! the CPU. A model is therefore characterized by its list of matmul shapes
//! plus the *non-offloadable fraction* — the share of the CPU-DRAM baseline
//! execution spent in work that cannot move to the PIM device (nonlinear
//! kernels and the host-device synchronization around them). The paper
//! observes this share is tiny for MLP but substantial for BERT, which is
//! why BERT's end-to-end gain (4.49x) is far below MLP's (54.77x).

use crate::profile::KernelProfile;
use pim_device::matrix::Matrix;
use pim_device::task::{MatrixOp, PimTask};
use serde::{Deserialize, Serialize};

/// A matrix multiplication of shape `(m x k) * (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulShape {
    /// Rows of the left operand.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of the right operand.
    pub n: usize,
}

impl MatMulShape {
    /// Flops of this multiplication (2 per multiply-accumulate).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }
}

/// A DNN inference workload characterized for offload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    /// Model name.
    pub name: String,
    /// All offloaded matrix multiplications of one inference.
    pub matmuls: Vec<MatMulShape>,
    /// Share of the CPU-DRAM baseline time that cannot be offloaded
    /// (nonlinear layers + host synchronization), in `[0, 1)`. Profiled
    /// workload characteristic, as in the paper's §V-E discussion.
    pub non_offload_fraction: f64,
}

impl DnnModel {
    /// The MLP of the paper's evaluation (mlbench-style): batch 128,
    /// 784-1024-1024-1024-10 fully connected layers with ReLU. Nonlinear
    /// work is a negligible share of inference time.
    pub fn mlp() -> Self {
        let batch = 128;
        let widths = [784usize, 1024, 1024, 1024, 10];
        // Offloaded as W (out x in) times X^T (in x batch): the weight rows
        // spread across PIM subarrays, the batch columns stream as rounds.
        let matmuls = widths
            .windows(2)
            .map(|w| MatMulShape {
                m: w[1],
                k: w[0],
                n: batch,
            })
            .collect();
        DnnModel {
            name: "MLP".into(),
            matmuls,
            non_offload_fraction: 0.015,
        }
    }

    /// BERT-base-like encoder: 12 layers, hidden 768, FFN 3072, sequence
    /// length 128. Softmax, GELU and layer norms stay on the CPU; the paper
    /// notes BERT "involves more nonlinear operations", which caps the
    /// offload gain.
    pub fn bert() -> Self {
        let (layers, seq, hidden, ffn, heads) = (12usize, 128usize, 768usize, 3072usize, 12usize);
        let mut matmuls = Vec::new();
        for _ in 0..layers {
            // Q, K, V and output projections: weight rows spread across
            // subarrays, sequence positions stream as rounds.
            for _ in 0..4 {
                matmuls.push(MatMulShape {
                    m: hidden,
                    k: hidden,
                    n: seq,
                });
            }
            // Attention scores and context, per head.
            for _ in 0..heads {
                let dh = hidden / heads;
                matmuls.push(MatMulShape {
                    m: seq,
                    k: dh,
                    n: seq,
                });
                matmuls.push(MatMulShape {
                    m: seq,
                    k: seq,
                    n: dh,
                });
            }
            // Feed-forward network.
            matmuls.push(MatMulShape {
                m: ffn,
                k: hidden,
                n: seq,
            });
            matmuls.push(MatMulShape {
                m: hidden,
                k: ffn,
                n: seq,
            });
        }
        DnnModel {
            name: "BERT".into(),
            matmuls,
            non_offload_fraction: 0.21,
        }
    }

    /// Total offloaded flops of one inference.
    pub fn offload_flops(&self) -> f64 {
        self.matmuls.iter().map(MatMulShape::flops).sum()
    }

    /// Builds the PIM task for the offloaded portion (zeros data:
    /// shape-only pricing).
    pub fn build_task(&self) -> PimTask {
        let mut task = PimTask::new();
        for shape in &self.matmuls {
            let a = task
                .add_matrix(&Matrix::zeros(shape.m, shape.k))
                .expect("shapes are consistent");
            let b = task
                .add_matrix(&Matrix::zeros(shape.k, shape.n))
                .expect("shapes are consistent");
            let dst = task
                .add_output(shape.m, shape.n)
                .expect("shapes are consistent");
            task.add_operation(MatrixOp::MatMul { a, b, dst })
                .expect("shapes are consistent");
        }
        task
    }

    /// Host-side profile of the offloadable portion (for pricing the same
    /// work on CPU/GPU baselines).
    pub fn offload_profile(&self) -> KernelProfile {
        let bytes: f64 = self
            .matmuls
            .iter()
            .map(|s| 8.0 * (s.m * s.k + s.k * s.n + s.m * s.n) as f64)
            .sum();
        KernelProfile {
            name: self.name.clone(),
            flops: self.offload_flops(),
            bytes,
            working_set: bytes / self.matmuls.len().max(1) as f64,
            small: false,
            // Small-batch inference GEMMs sustain a fraction of tuned-gemm
            // throughput on the host.
            cpu_efficiency: 0.12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shape() {
        let mlp = DnnModel::mlp();
        assert_eq!(mlp.matmuls.len(), 4);
        assert!(mlp.non_offload_fraction < 0.05);
        assert!(mlp.offload_flops() > 1e8);
    }

    #[test]
    fn bert_shape() {
        let bert = DnnModel::bert();
        // 12 layers x (4 projections + 24 attention matmuls + 2 FFN).
        assert_eq!(bert.matmuls.len(), 12 * (4 + 24 + 2));
        assert!(bert.non_offload_fraction > DnnModel::mlp().non_offload_fraction);
        // BERT is much bigger than the MLP.
        assert!(bert.offload_flops() > 10.0 * DnnModel::mlp().offload_flops());
    }

    #[test]
    fn matmul_flops() {
        let s = MatMulShape { m: 2, k: 3, n: 4 };
        assert_eq!(s.flops(), 48.0);
    }

    #[test]
    fn tasks_build_and_lower() {
        use pim_device::{StreamPim, StreamPimConfig};
        let device = StreamPim::new(StreamPimConfig::paper_default()).unwrap();
        for model in [DnnModel::mlp(), DnnModel::bert()] {
            let schedule = model.build_task().lower(&device).unwrap();
            assert!(schedule.counts().pim > 0, "{}", model.name);
        }
    }

    #[test]
    fn offload_profile_consistent() {
        let p = DnnModel::mlp().offload_profile();
        assert_eq!(p.name, "MLP");
        assert!(p.flops > 0.0 && p.bytes > 0.0);
    }
}
