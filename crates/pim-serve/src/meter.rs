//! The metering ledger: cost tiers at admission, consumption at settlement.
//!
//! Pricing follows the multiplier-based model (ROADMAP open item 1): the
//! operator sets a single **base rate** and every job is classified into a
//! cost tier whose price is a multiple of it. The tier is estimated *at
//! admission* from the workload shape alone (FLOP count of the spec — no
//! simulation needed, so the estimate is instant and monotone in workload
//! size), then *reconciled at completion* against the actual simulated
//! consumption from the run report.
//!
//! ## Conservation
//!
//! The ledger's correctness contract is an exact conservation invariant:
//! per-tenant metered totals sum to the ledger's global counters, and the
//! global counters agree with the runtime's own accounting
//! ([`pim_runtime::MetricsSnapshot`]). Operation counts are `u64` and
//! compare exactly. Time and energy are `f64` in the run report, and f64
//! sums are order-dependent — so the ledger meters them as **integers**,
//! quantized once per job (picoseconds / femtojoules, rounded). Integer
//! addition commutes, which makes the per-tenant ↔ global reconciliation
//! exact no matter which order jobs complete in. The raw per-job floats are
//! kept alongside and reconciled bit-for-bit (`to_bits`) against the
//! runtime's per-job rows, so no precision is lost to the quantization —
//! it exists only to make *sums* order-independent.

use pim_device::ExecReport;
use pim_runtime::MetricsSnapshot;
use pim_workloads::WorkloadSpec;
use rm_core::OpCounters;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// A pricing tier: a named multiplier over the base rate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostTier {
    /// Tier name (stable identifiers: `probe`, `small`, `medium`, `large`,
    /// `xlarge`).
    pub name: String,
    /// Price as a multiple of the base rate.
    pub multiplier: u64,
}

/// The tier table: `(name, multiplier, flop ceiling)` — a job lands in the
/// first tier whose ceiling its estimated FLOP count is below. Ceilings
/// are strictly increasing and multipliers strictly increasing, so the
/// estimated price is monotone in workload size (the metering proptests
/// assert this).
pub const TIER_TABLE: [(&str, u64, f64); 5] = [
    ("probe", 1, 1e6),
    ("small", 4, 1e8),
    ("medium", 20, 1e10),
    ("large", 100, 1e12),
    ("xlarge", 500, f64::INFINITY),
];

/// Classifies a workload into its cost tier from shape alone.
pub fn tier_for(spec: &WorkloadSpec) -> CostTier {
    tier_for_batched(spec, 1)
}

/// Classifies a batched workload: a cluster job pricing `batch` identical
/// items is `batch ×` the FLOPs of one, so the admission estimate scales
/// with it (the settled bill is reconciled from the actual report either
/// way).
pub fn tier_for_batched(spec: &WorkloadSpec, batch: u64) -> CostTier {
    let flops = spec.profile().flops * batch.max(1) as f64;
    let (name, multiplier, _) = TIER_TABLE
        .iter()
        .find(|(_, _, ceiling)| flops < *ceiling)
        .expect("last ceiling is infinite");
    CostTier {
        name: (*name).to_string(),
        multiplier: *multiplier,
    }
}

/// Metering knobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeterConfig {
    /// Price of a tier-1 job, in microcredits.
    pub base_rate_microcredits: u64,
    /// Simulated picoseconds of device time per microcredit of usage
    /// billing.
    pub time_ps_per_microcredit: u64,
    /// Simulated femtojoules of device energy per microcredit of usage
    /// billing.
    pub energy_fj_per_microcredit: u64,
}

impl Default for MeterConfig {
    fn default() -> Self {
        MeterConfig {
            base_rate_microcredits: 10,
            time_ps_per_microcredit: 1_000_000, // 1 µs simulated time
            energy_fj_per_microcredit: 1_000_000, // 1 nJ simulated energy
        }
    }
}

/// Exact (integer) consumption metered for one job or one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Consumption {
    /// Raw operation counters, straight from the run report.
    pub ops: OpCounters,
    /// Simulated time, quantized to picoseconds (rounded once per job).
    pub time_ps: u64,
    /// Simulated energy, quantized to femtojoules (rounded once per job).
    pub energy_fj: u64,
}

impl Consumption {
    /// Quantizes one run report. This is the single place where floats
    /// become metered integers; both the ledger and the conservation
    /// checks must go through it so per-job values agree bit-for-bit.
    pub fn from_report(report: &ExecReport) -> Self {
        Consumption {
            ops: report.counters,
            time_ps: quantize_ns_to_ps(report.total_ns()),
            energy_fj: quantize_pj_to_fj(report.total_pj()),
        }
    }

    /// Field-wise accumulation (exact: all fields are integers).
    pub fn absorb(&mut self, other: &Consumption) {
        self.ops += other.ops;
        self.time_ps += other.time_ps;
        self.energy_fj += other.energy_fj;
    }
}

/// Simulated nanoseconds → metered picoseconds.
pub fn quantize_ns_to_ps(ns: f64) -> u64 {
    (ns * 1e3).round() as u64
}

/// Simulated picojoules → metered femtojoules.
pub fn quantize_pj_to_fj(pj: f64) -> u64 {
    (pj * 1e3).round() as u64
}

/// Lifecycle of one job's meter record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeterState {
    /// Admitted; estimate charged, consumption not yet known.
    Pending,
    /// Completed (or failed); actual consumption reconciled.
    Settled,
    /// Cancelled before dispatch; zero consumption, estimate refunded.
    Cancelled,
}

/// The meter record of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterRecord {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Correlating request id of the HTTP submission that admitted this
    /// job (empty for direct/batch admissions). Telemetry only: never
    /// priced, never part of the conservation invariant.
    pub request_id: String,
    /// Tier assigned at admission from the workload shape.
    pub tier: CostTier,
    /// Up-front price: `tier.multiplier × base rate`, microcredits.
    pub estimated_microcredits: u64,
    /// Where the record is in its lifecycle.
    pub state: MeterState,
    /// Metered consumption (zero until settled; stays zero for cancelled
    /// and failed jobs).
    pub actual: Consumption,
    /// The report's raw simulated time (ns) — kept un-quantized so the
    /// conservation tests can compare it bit-for-bit against the
    /// runtime's per-job row.
    pub actual_sim_ns: f64,
    /// The report's raw simulated energy (pj), un-quantized (see
    /// `actual_sim_ns`).
    pub actual_sim_pj: f64,
    /// Usage-reconciled price, microcredits: what the consumption cost at
    /// the configured time/energy rates (zero for cancelled/failed jobs,
    /// minimum one base rate for any job that ran).
    pub billed_microcredits: u64,
}

/// Per-tenant running totals.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Tenant name.
    pub tenant: String,
    /// Jobs admitted (each has a meter record).
    pub jobs_admitted: u64,
    /// Jobs settled (completed or failed).
    pub jobs_settled: u64,
    /// Jobs cancelled before dispatch.
    pub jobs_cancelled: u64,
    /// Sum of admission estimates, microcredits (cancelled jobs refunded).
    pub estimated_microcredits: u64,
    /// Sum of usage-reconciled bills, microcredits.
    pub billed_microcredits: u64,
    /// Exact metered consumption across all settled jobs.
    pub consumed: Consumption,
}

/// Point-in-time export of the whole ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// The metering configuration in force.
    pub config: MeterConfig,
    /// Global totals (must equal the sum of `tenants` — see
    /// [`Ledger::check_conservation`]).
    pub global: TenantUsage,
    /// Per-tenant totals, sorted by tenant name.
    pub tenants: Vec<TenantUsage>,
}

/// Thread-safe metering ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    config: MeterConfig,
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    records: HashMap<u64, MeterRecord>,
    tenants: BTreeMap<String, TenantUsage>,
    global: TenantUsage,
}

impl Ledger {
    /// A ledger with the given configuration.
    pub fn new(config: MeterConfig) -> Self {
        Ledger {
            config,
            inner: Mutex::new(LedgerInner::default()),
        }
    }

    /// The metering configuration.
    pub fn config(&self) -> &MeterConfig {
        &self.config
    }

    /// Charges the admission estimate and opens a pending record stamped
    /// with the submitting request's correlation id (empty for direct
    /// admissions). Returns a copy of the record (for the submit
    /// response).
    pub fn admit(
        &self,
        job_id: u64,
        tenant: &str,
        request_id: &str,
        spec: &WorkloadSpec,
    ) -> MeterRecord {
        self.admit_batched(job_id, tenant, request_id, spec, 1)
    }

    /// [`Ledger::admit`] for a cluster job pricing `batch` identical items:
    /// the tier estimate scales with the batch (see [`tier_for_batched`]);
    /// settlement is unchanged — it reconciles the actual combined report.
    pub fn admit_batched(
        &self,
        job_id: u64,
        tenant: &str,
        request_id: &str,
        spec: &WorkloadSpec,
        batch: u64,
    ) -> MeterRecord {
        let tier = tier_for_batched(spec, batch);
        let estimated = tier.multiplier * self.config.base_rate_microcredits;
        let record = MeterRecord {
            job_id,
            tenant: tenant.to_string(),
            request_id: request_id.to_string(),
            tier,
            estimated_microcredits: estimated,
            state: MeterState::Pending,
            actual: Consumption::default(),
            actual_sim_ns: 0.0,
            actual_sim_pj: 0.0,
            billed_microcredits: 0,
        };
        let mut inner = self.inner.lock().expect("ledger lock");
        let account = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantUsage {
                tenant: tenant.to_string(),
                ..TenantUsage::default()
            });
        account.jobs_admitted += 1;
        account.estimated_microcredits += estimated;
        inner.global.jobs_admitted += 1;
        inner.global.estimated_microcredits += estimated;
        inner.records.insert(job_id, record.clone());
        record
    }

    /// Settles a pending record against the job's outcome. `report` is
    /// `None` for failed jobs, which consume (and are billed) nothing.
    /// Returns the settled record; panics if the job was never admitted
    /// (server bug, not client error).
    pub fn settle(&self, job_id: u64, report: Option<&ExecReport>) -> MeterRecord {
        let mut inner = self.inner.lock().expect("ledger lock");
        let (tenant, actual, sim_ns, sim_pj, billed) = {
            let record = inner.records.get(&job_id).expect("settle: job admitted");
            assert_eq!(record.state, MeterState::Pending, "settle: still pending");
            match report {
                Some(r) => {
                    let actual = Consumption::from_report(r);
                    let billed = self.bill(&actual);
                    (
                        record.tenant.clone(),
                        actual,
                        r.total_ns(),
                        r.total_pj(),
                        billed,
                    )
                }
                None => (record.tenant.clone(), Consumption::default(), 0.0, 0.0, 0),
            }
        };
        let LedgerInner {
            tenants, global, ..
        } = &mut *inner;
        for account in [tenants.get_mut(&tenant).expect("tenant account"), global] {
            account.jobs_settled += 1;
            account.billed_microcredits += billed;
            account.consumed.absorb(&actual);
        }
        let record = inner
            .records
            .get_mut(&job_id)
            .expect("settle: job admitted");
        record.state = MeterState::Settled;
        record.actual = actual;
        record.actual_sim_ns = sim_ns;
        record.actual_sim_pj = sim_pj;
        record.billed_microcredits = billed;
        record.clone()
    }

    /// Cancels a pending record (queued job removed before dispatch): the
    /// admission estimate is refunded and nothing is consumed. Returns
    /// `false` if the record is not pending (already settled/cancelled).
    pub fn cancel(&self, job_id: u64) -> bool {
        let mut inner = self.inner.lock().expect("ledger lock");
        let (tenant, estimated) = match inner.records.get_mut(&job_id) {
            Some(record) if record.state == MeterState::Pending => {
                record.state = MeterState::Cancelled;
                (record.tenant.clone(), record.estimated_microcredits)
            }
            _ => return false,
        };
        let LedgerInner {
            tenants, global, ..
        } = &mut *inner;
        for account in [tenants.get_mut(&tenant).expect("tenant account"), global] {
            account.jobs_cancelled += 1;
            account.estimated_microcredits -= estimated;
        }
        true
    }

    /// The usage-reconciled price of `actual` consumption: time plus
    /// energy at the configured rates, with a floor of one base rate for
    /// any job that actually ran (ceil-division, so consumption is never
    /// rounded down to free).
    fn bill(&self, actual: &Consumption) -> u64 {
        let time_units = actual.time_ps.div_ceil(self.config.time_ps_per_microcredit);
        let energy_units = actual
            .energy_fj
            .div_ceil(self.config.energy_fj_per_microcredit);
        (time_units + energy_units).max(self.config.base_rate_microcredits)
    }

    /// The meter record of one job.
    pub fn record(&self, job_id: u64) -> Option<MeterRecord> {
        self.inner
            .lock()
            .expect("ledger lock")
            .records
            .get(&job_id)
            .cloned()
    }

    /// One tenant's running totals.
    pub fn usage(&self, tenant: &str) -> Option<TenantUsage> {
        self.inner
            .lock()
            .expect("ledger lock")
            .tenants
            .get(tenant)
            .cloned()
    }

    /// Full ledger export.
    pub fn summary(&self) -> LedgerSummary {
        let inner = self.inner.lock().expect("ledger lock");
        LedgerSummary {
            config: self.config.clone(),
            global: inner.global.clone(),
            tenants: inner.tenants.values().cloned().collect(),
        }
    }

    /// Checks the conservation invariant against the runtime's snapshot:
    ///
    /// 1. per-tenant totals sum exactly to the ledger's global totals
    ///    (consumption, bills, estimates, and job counts);
    /// 2. the ledger's global operation counters equal the runtime's
    ///    aggregate [`OpCounters`] exactly (both are `u64` sums of the
    ///    same per-job values);
    /// 3. the ledger's global metered time/energy equal the sum of the
    ///    runtime's per-job rows, re-quantized with the same per-job
    ///    rounding.
    ///
    /// Holds under cancellation (cancelled jobs never reach the runtime
    /// and meter zero) and drain (every admitted job settles before the
    /// final snapshot). Returns a description of the first violation.
    pub fn check_conservation(&self, snapshot: &MetricsSnapshot) -> Result<(), String> {
        let inner = self.inner.lock().expect("ledger lock");
        let mut tenant_sum = TenantUsage::default();
        for account in inner.tenants.values() {
            tenant_sum.jobs_admitted += account.jobs_admitted;
            tenant_sum.jobs_settled += account.jobs_settled;
            tenant_sum.jobs_cancelled += account.jobs_cancelled;
            tenant_sum.estimated_microcredits += account.estimated_microcredits;
            tenant_sum.billed_microcredits += account.billed_microcredits;
            tenant_sum.consumed.absorb(&account.consumed);
        }
        let global = &inner.global;
        if tenant_sum.consumed != global.consumed {
            return Err(format!(
                "tenant consumption sum {:?} != global {:?}",
                tenant_sum.consumed, global.consumed
            ));
        }
        for (what, a, b) in [
            (
                "jobs_admitted",
                tenant_sum.jobs_admitted,
                global.jobs_admitted,
            ),
            ("jobs_settled", tenant_sum.jobs_settled, global.jobs_settled),
            (
                "jobs_cancelled",
                tenant_sum.jobs_cancelled,
                global.jobs_cancelled,
            ),
            (
                "estimated_microcredits",
                tenant_sum.estimated_microcredits,
                global.estimated_microcredits,
            ),
            (
                "billed_microcredits",
                tenant_sum.billed_microcredits,
                global.billed_microcredits,
            ),
        ] {
            if a != b {
                return Err(format!("tenant {what} sum {a} != global {b}"));
            }
        }

        if global.consumed.ops != snapshot.aggregate.counters {
            return Err(format!(
                "ledger ops {:?} != runtime aggregate {:?}",
                global.consumed.ops, snapshot.aggregate.counters
            ));
        }
        let mut runtime_time_ps = 0u64;
        let mut runtime_energy_fj = 0u64;
        for job in snapshot.jobs.iter().filter(|j| j.ok) {
            runtime_time_ps += quantize_ns_to_ps(job.sim_time_ns);
            runtime_energy_fj += quantize_pj_to_fj(job.sim_energy_pj);
        }
        if global.consumed.time_ps != runtime_time_ps {
            return Err(format!(
                "ledger time {} ps != runtime {} ps",
                global.consumed.time_ps, runtime_time_ps
            ));
        }
        if global.consumed.energy_fj != runtime_energy_fj {
            return Err(format!(
                "ledger energy {} fj != runtime {} fj",
                global.consumed.energy_fj, runtime_energy_fj
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_workloads::Kernel;

    fn report(ns: f64, pj: f64) -> ExecReport {
        let mut r = ExecReport::new();
        r.time.process_ns = ns;
        r.energy.compute_pj = pj;
        r.counters.reads = 3;
        r.counters.pim_adds = 7;
        r
    }

    #[test]
    fn tiers_cover_the_workload_range() {
        // A tiny probe lands in tier 1, the full-size BERT model at the top.
        let probe = tier_for(&WorkloadSpec::MatMul { m: 4, k: 4, n: 4 });
        assert_eq!((probe.name.as_str(), probe.multiplier), ("probe", 1));
        let big = tier_for(&WorkloadSpec::dnn(pim_workloads::DnnKind::Bert));
        assert!(big.multiplier > probe.multiplier);
        // Tier multipliers and ceilings are strictly increasing.
        for pair in TIER_TABLE.windows(2) {
            assert!(pair[0].1 < pair[1].1, "multipliers increase");
            assert!(pair[0].2 < pair[1].2, "ceilings increase");
        }
    }

    #[test]
    fn batched_tier_scales_with_the_batch() {
        let spec = WorkloadSpec::MatMul {
            m: 128,
            k: 128,
            n: 128,
        };
        let one = tier_for_batched(&spec, 1);
        assert_eq!(one, tier_for(&spec), "batch 1 is the plain estimate");
        // 128³ gemm is ~4.2 MFLOP (tier `small`); 64 of them cross the
        // 1e8 ceiling into `medium`.
        let many = tier_for_batched(&spec, 64);
        assert!(
            many.multiplier > one.multiplier,
            "batch raises the estimate: {one:?} vs {many:?}"
        );
        // Estimates stay monotone in batch size.
        let mut last = 0;
        for batch in [1, 2, 8, 64, 512] {
            let m = tier_for_batched(&spec, batch).multiplier;
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn admit_settle_reconciles() {
        let ledger = Ledger::new(MeterConfig::default());
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let admitted = ledger.admit(1, "alice", "req-00000001", &spec);
        assert_eq!(admitted.state, MeterState::Pending);
        assert_eq!(
            admitted.estimated_microcredits,
            admitted.tier.multiplier * 10
        );

        let r = report(2_500_000.0, 1_000.0); // 2.5 ms, 1 nJ
        let settled = ledger.settle(1, Some(&r));
        assert_eq!(settled.state, MeterState::Settled);
        assert_eq!(settled.actual.time_ps, 2_500_000_000);
        assert_eq!(settled.actual.energy_fj, 1_000_000);
        // 2500 time units + 1 energy unit at the default rates.
        assert_eq!(settled.billed_microcredits, 2501);
        assert_eq!(settled.actual.ops.reads, 3);

        let usage = ledger.usage("alice").unwrap();
        assert_eq!(usage.jobs_settled, 1);
        assert_eq!(usage.billed_microcredits, 2501);
        assert_eq!(usage.consumed, settled.actual);
    }

    #[test]
    fn failed_jobs_settle_to_zero() {
        let ledger = Ledger::new(MeterConfig::default());
        ledger.admit(1, "alice", "", &WorkloadSpec::MatMul { m: 4, k: 4, n: 4 });
        let settled = ledger.settle(1, None);
        assert_eq!(settled.billed_microcredits, 0);
        assert_eq!(settled.actual, Consumption::default());
        assert_eq!(ledger.usage("alice").unwrap().jobs_settled, 1);
    }

    #[test]
    fn cancel_refunds_the_estimate_once() {
        let ledger = Ledger::new(MeterConfig::default());
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        ledger.admit(1, "alice", "req-00000001", &spec);
        let before = ledger.usage("alice").unwrap().estimated_microcredits;
        assert!(before > 0);
        assert!(ledger.cancel(1), "pending jobs cancel");
        assert!(!ledger.cancel(1), "cancel is not repeatable");
        let usage = ledger.usage("alice").unwrap();
        assert_eq!(usage.estimated_microcredits, 0);
        assert_eq!(usage.jobs_cancelled, 1);
        // A settled job cannot be cancelled.
        ledger.admit(2, "alice", "", &spec);
        ledger.settle(2, Some(&report(10.0, 10.0)));
        assert!(!ledger.cancel(2));
    }

    #[test]
    fn tiny_jobs_are_never_free() {
        let ledger = Ledger::new(MeterConfig::default());
        ledger.admit(1, "a", "", &WorkloadSpec::MatMul { m: 2, k: 2, n: 2 });
        let settled = ledger.settle(1, Some(&report(0.4, 0.2)));
        assert_eq!(
            settled.billed_microcredits,
            MeterConfig::default().base_rate_microcredits,
            "floor of one base rate"
        );
    }

    #[test]
    fn summary_partitions_by_tenant() {
        let ledger = Ledger::new(MeterConfig::default());
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        ledger.admit(1, "bob", "", &spec);
        ledger.admit(2, "alice", "", &spec);
        ledger.settle(1, Some(&report(100.0, 100.0)));
        ledger.settle(2, Some(&report(200.0, 50.0)));
        let summary = ledger.summary();
        assert_eq!(summary.tenants.len(), 2);
        assert_eq!(summary.tenants[0].tenant, "alice", "sorted by name");
        assert_eq!(
            summary.global.billed_microcredits,
            summary
                .tenants
                .iter()
                .map(|t| t.billed_microcredits)
                .sum::<u64>()
        );
        let json = serde_json::to_string_pretty(&summary).unwrap();
        let back: LedgerSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }
}
