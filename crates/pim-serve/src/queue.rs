//! Per-tenant FIFO queues with smooth weighted round-robin dispatch.
//!
//! Jobs within a tenant are strictly FIFO. *Across* tenants, the dispatcher
//! picks by smooth weighted round robin (the nginx algorithm): each
//! eligible tenant's credit grows by its weight every pick, the tenant with
//! the most credit wins and pays back the total eligible weight. The
//! sequence is deterministic (ties break on tenant name) and interleaves
//! proportionally — with weights 2:1, tenant A gets two dispatches for
//! every one of B instead of long alternating bursts.

use std::collections::{BTreeMap, VecDeque};

/// One tenant's queue state.
#[derive(Debug, Default)]
struct TenantQueue {
    /// FIFO of job ids awaiting dispatch.
    fifo: VecDeque<u64>,
    /// Dispatch weight (≥ 1).
    weight: u64,
    /// Smooth-WRR running credit.
    credit: i64,
    /// Jobs currently being executed for this tenant.
    in_flight: usize,
}

/// All tenants' queues plus the fair-dispatch state.
#[derive(Debug, Default)]
pub struct TenantQueues {
    tenants: BTreeMap<String, TenantQueue>,
    /// Total queued jobs across tenants.
    queued: usize,
    /// Total in-flight jobs across tenants.
    in_flight: usize,
}

impl TenantQueues {
    /// Empty queues.
    pub fn new() -> Self {
        TenantQueues::default()
    }

    /// Sets a tenant's dispatch weight (clamped to ≥ 1). May be called
    /// before the tenant ever submits.
    pub fn set_weight(&mut self, tenant: &str, weight: u64) {
        self.entry(tenant).weight = weight.max(1);
    }

    fn entry(&mut self, tenant: &str) -> &mut TenantQueue {
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                weight: 1,
                ..TenantQueue::default()
            })
    }

    /// Appends a job to its tenant's FIFO.
    pub fn push(&mut self, tenant: &str, job_id: u64) {
        self.entry(tenant).fifo.push_back(job_id);
        self.queued += 1;
    }

    /// Removes a queued job (cancellation). Returns `false` if the job is
    /// not queued under this tenant (already dispatched or unknown).
    pub fn remove(&mut self, tenant: &str, job_id: u64) -> bool {
        let Some(queue) = self.tenants.get_mut(tenant) else {
            return false;
        };
        let Some(pos) = queue.fifo.iter().position(|&id| id == job_id) else {
            return false;
        };
        queue.fifo.remove(pos);
        self.queued -= 1;
        true
    }

    /// Picks the next job to dispatch by smooth weighted round robin over
    /// tenants that have queued work and are under `per_tenant_inflight`.
    /// Returns `(tenant, job_id)` and marks the job in flight; the caller
    /// must pair it with [`TenantQueues::finish`].
    pub fn dispatch(&mut self, per_tenant_inflight: usize) -> Option<(String, u64)> {
        let mut total_weight = 0i64;
        let mut winner: Option<&str> = None;
        let mut best_credit = i64::MIN;
        for (name, queue) in self.tenants.iter() {
            if queue.fifo.is_empty() || queue.in_flight >= per_tenant_inflight {
                continue;
            }
            total_weight += queue.weight as i64;
            let credit = queue.credit + queue.weight as i64;
            // Strict `>` with BTreeMap iteration order makes ties break on
            // the lexicographically smallest tenant name.
            if credit > best_credit {
                best_credit = credit;
                winner = Some(name.as_str());
            }
        }
        let winner = winner?.to_string();
        // Everyone eligible earns their weight; the winner pays back the
        // round's total, keeping long-run dispatch counts proportional.
        for (name, queue) in self.tenants.iter_mut() {
            if queue.fifo.is_empty() || queue.in_flight >= per_tenant_inflight {
                continue;
            }
            queue.credit += queue.weight as i64;
            if *name == winner {
                queue.credit -= total_weight;
            }
        }
        let queue = self.tenants.get_mut(&winner).expect("winner exists");
        let job_id = queue.fifo.pop_front().expect("winner has work");
        queue.in_flight += 1;
        self.queued -= 1;
        self.in_flight += 1;
        Some((winner, job_id))
    }

    /// Marks a dispatched job finished, freeing its tenant's in-flight slot.
    pub fn finish(&mut self, tenant: &str) {
        let queue = self
            .tenants
            .get_mut(tenant)
            .expect("finished tenant exists");
        queue.in_flight -= 1;
        self.in_flight -= 1;
    }

    /// Queued jobs for one tenant.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |q| q.fifo.len())
    }

    /// In-flight jobs for one tenant.
    pub fn in_flight_for(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |q| q.in_flight)
    }

    /// Total queued jobs across tenants.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Total in-flight jobs across tenants.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether any work is queued or running.
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.in_flight == 0
    }

    /// Per-tenant `(tenant, queued, in_flight)` rows in tenant-name order
    /// — the scrape-time source for the queue-depth gauges.
    pub fn depths(&self) -> Vec<(String, usize, usize)> {
        self.tenants
            .iter()
            .map(|(name, queue)| (name.clone(), queue.fifo.len(), queue.in_flight))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dispatches everything with unlimited in-flight, returning the
    /// tenant order.
    fn drain_order(queues: &mut TenantQueues) -> Vec<String> {
        let mut order = Vec::new();
        while let Some((tenant, _)) = queues.dispatch(usize::MAX) {
            queues.finish(&tenant);
            order.push(tenant);
        }
        order
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut queues = TenantQueues::new();
        for id in [10, 11, 12] {
            queues.push("a", id);
        }
        let ids: Vec<u64> = std::iter::from_fn(|| {
            queues.dispatch(usize::MAX).map(|(t, id)| {
                queues.finish(&t);
                id
            })
        })
        .collect();
        assert_eq!(ids, vec![10, 11, 12]);
    }

    #[test]
    fn equal_weights_interleave_fairly() {
        let mut queues = TenantQueues::new();
        for id in 0..4 {
            queues.push("a", id);
            queues.push("b", 100 + id);
        }
        let order = drain_order(&mut queues);
        // Strict alternation (deterministic: ties break to "a").
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_bias_dispatch_proportionally() {
        let mut queues = TenantQueues::new();
        queues.set_weight("a", 2);
        for id in 0..8 {
            queues.push("a", id);
        }
        for id in 0..4 {
            queues.push("b", 100 + id);
        }
        let order = drain_order(&mut queues);
        // The first 12 picks give "a" twice the service, smoothly
        // interleaved rather than in bursts.
        let first_six = &order[..6];
        assert_eq!(
            first_six.iter().filter(|t| *t == "a").count(),
            4,
            "2:1 service ratio in {order:?}"
        );
        assert!(first_six.contains(&"b".to_string()), "no starvation");
    }

    #[test]
    fn inflight_cap_skips_saturated_tenants() {
        let mut queues = TenantQueues::new();
        queues.push("a", 1);
        queues.push("a", 2);
        queues.push("b", 3);
        let (t1, _) = queues.dispatch(1).unwrap();
        assert_eq!(t1, "a");
        // "a" is at its cap of 1: the next dispatch must pick "b".
        let (t2, _) = queues.dispatch(1).unwrap();
        assert_eq!(t2, "b");
        // Nothing else is eligible until a slot frees.
        assert!(queues.dispatch(1).is_none());
        queues.finish("a");
        let (t3, id3) = queues.dispatch(1).unwrap();
        assert_eq!((t3.as_str(), id3), ("a", 2));
    }

    #[test]
    fn remove_cancels_only_queued_jobs() {
        let mut queues = TenantQueues::new();
        queues.push("a", 1);
        queues.push("a", 2);
        assert!(queues.remove("a", 2));
        assert!(!queues.remove("a", 2), "already removed");
        assert!(!queues.remove("ghost", 1), "unknown tenant");
        let (tenant, id) = queues.dispatch(usize::MAX).unwrap();
        assert_eq!((tenant.as_str(), id), ("a", 1));
        assert!(!queues.remove("a", 1), "in-flight jobs are not queued");
        assert_eq!(queues.in_flight(), 1);
        queues.finish("a");
        assert!(queues.is_idle());
    }

    #[test]
    fn counters_track_state() {
        let mut queues = TenantQueues::new();
        queues.push("a", 1);
        queues.push("b", 2);
        assert_eq!(queues.queued(), 2);
        assert_eq!(queues.queued_for("a"), 1);
        queues.dispatch(usize::MAX).unwrap();
        assert_eq!(queues.queued(), 1);
        assert_eq!(queues.in_flight(), 1);
        assert_eq!(queues.in_flight_for("a"), 1, "ties broke to a");
        assert_eq!(
            queues.depths(),
            vec![("a".to_string(), 0, 1), ("b".to_string(), 1, 0)],
            "per-tenant rows in name order"
        );
    }
}
