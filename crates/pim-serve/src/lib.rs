//! # pim-serve: the StreamPIM pricing simulator as a network service
//!
//! A std-only HTTP/1.1 JSON front-end over [`pim_runtime`]: clients submit
//! serialized [`pim_runtime::Job`]s, poll status, and fetch the same
//! deterministic [`pim_device::ExecReport`]s a direct library call would
//! produce — byte-identical, because the service only decides *when* a job
//! runs, never what it computes.
//!
//! The crate is deliberately dependency-free (no async runtime, no HTTP
//! framework): a hand-rolled HTTP layer over [`std::net`], a bounded
//! thread pool, and condvar-based dispatch. See `DESIGN.md` §13 for the
//! architecture discussion.
//!
//! ## Layers
//!
//! - [`http`]: minimal HTTP/1.1 parse/serialize + blocking client.
//! - [`api`]: the JSON wire types (`SubmitRequest`, `StatusResponse`, …).
//! - [`queue`]: per-tenant FIFOs with smooth weighted-round-robin dispatch.
//! - [`admission`]: per-tenant/global caps, 429/503 load shedding,
//!   `Retry-After` hints, and the Accepting → Draining → Stopped lifecycle.
//! - [`meter`]: the cost ledger — tier estimate at admission, exact
//!   integer-quantized consumption at settlement, and a conservation
//!   invariant checked against the runtime's own counters.
//! - [`server`]: the listener, worker pools, routing, and graceful drain.
//!
//! ## Observability
//!
//! Telemetry is always on and host-side only (see [`pim_obs`]): every
//! HTTP exchange mints a `req-XXXXXXXX` correlation id, returned in the
//! `x-request-id` response header and threaded through admission, the
//! tenant queue, the metering ledger, the runtime job's metrics row, and
//! its trace spans. The live registry is scraped at `GET /metrics.prom`
//! (Prometheus text exposition 0.0.4), the structured event log at
//! `GET /v1/events` (JSON lines), and per-tenant latency-SLO attainment
//! rides along in `GET /v1/metrics`.
//!
//! ## Endpoints
//!
//! | Method & path                  | Purpose                              |
//! |--------------------------------|--------------------------------------|
//! | `POST /v1/jobs`                | Submit a job (202 + meter record)    |
//! | `GET /v1/jobs/{id}`            | Poll lifecycle state                 |
//! | `GET /v1/jobs/{id}/result`     | Fetch report + settled meter         |
//! | `DELETE /v1/jobs/{id}`         | Cancel a queued job (refund)         |
//! | `GET /v1/metrics`              | Server + runtime + ledger + SLO      |
//! | `GET /metrics.prom`            | Prometheus text exposition           |
//! | `GET /v1/events`               | Structured event log (JSON lines)    |
//! | `GET /v1/debug/requests`       | Flight-recorder index (tail samples) |
//! | `GET /v1/debug/requests/{id}`  | One retained flight record, full     |
//! | `GET /v1/device/health`        | Per-subarray wear / fault heatmap    |
//! | `GET /v1/tenants/{t}/usage`    | One tenant's metered totals          |
//! | `GET /v1/healthz`              | Phase and queue depths               |
//! | `POST /v1/admin/drain`         | Graceful drain; returns final state  |

pub mod admission;
pub mod api;
pub mod http;
pub mod meter;
pub mod queue;
pub mod server;

pub use admission::{admit, retry_after_ms, AdmissionConfig, Phase, Rejection};
pub use api::{
    DeviceHealthResponse, DrainResponse, ErrorResponse, HealthResponse, JobState, MetricsResponse,
    ResultResponse, ServerStats, StatusResponse, SubmitRequest, SubmitResponse,
};
pub use http::{client_request, Request, Response};
pub use meter::{
    tier_for, tier_for_batched, Consumption, CostTier, Ledger, LedgerSummary, MeterConfig,
    MeterRecord, MeterState, TenantUsage, TIER_TABLE,
};
pub use queue::TenantQueues;
pub use server::{call, ServeConfig, Server, ThreadPlan};
