//! Admission control: per-tenant and global caps, load shedding, drain.
//!
//! The service moves through a simple lifecycle:
//!
//! ```text
//!   Accepting ──(queue > shed high-water)──► Shedding
//!       ▲  └────────────(drain)──────┐          │ (429 everything)
//!       └──(queue < high-water)──────│──────────┘
//!                                    ▼
//!                                 Draining ──(queues idle)──► Stopped
//!                              (503 submissions,
//!                               in-flight finishes)
//! ```
//!
//! `Shedding` is not a stored state — it is `Accepting` observed while the
//! global queue is above the high-water mark, and it clears by itself as
//! the dispatchers catch up. `Draining`/`Stopped` are explicit and one-way.
//!
//! Every rejection is *explicit*: a 429 (per-tenant or global overload,
//! with a `Retry-After` hint derived from the backlog) or a 503 (drain).
//! Nothing is silently dropped — an accepted submission always ends in a
//! terminal job state.

use serde::{Deserialize, Serialize};

/// Admission caps and shedding thresholds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet dispatched) jobs per tenant.
    pub max_queued_per_tenant: usize,
    /// Maximum concurrently executing jobs per tenant (enforced at
    /// dispatch: a saturated tenant's queue waits, other tenants proceed).
    pub max_inflight_per_tenant: usize,
    /// Global queued-job high-water mark: above this the service sheds
    /// *all* new load with 429s until the dispatchers catch up.
    pub max_queued_global: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queued_per_tenant: 64,
            max_inflight_per_tenant: 4,
            max_queued_global: 512,
        }
    }
}

/// Service lifecycle phase (see the module docs for the state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Accepting submissions (sheds with 429s above the high-water mark).
    Accepting,
    /// Drain requested: submissions get 503, admitted work finishes.
    Draining,
    /// Drained: queues idle, metering flushed, final metrics frozen.
    Stopped,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// This tenant's queue is at its cap (429).
    TenantQueueFull {
        /// The tenant's queued-job count at refusal.
        depth: usize,
    },
    /// The global queue is above the high-water mark (429).
    GlobalOverload {
        /// The global queued-job count at refusal.
        depth: usize,
    },
    /// The service is draining or stopped (503).
    Draining,
}

impl Rejection {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            Rejection::TenantQueueFull { .. } | Rejection::GlobalOverload { .. } => 429,
            Rejection::Draining => 503,
        }
    }

    /// Human-readable refusal reason (returned in the error body).
    pub fn reason(&self) -> String {
        match self {
            Rejection::TenantQueueFull { depth } => {
                format!("tenant queue full ({depth} jobs queued)")
            }
            Rejection::GlobalOverload { depth } => {
                format!("service overloaded ({depth} jobs queued globally)")
            }
            Rejection::Draining => "service is draining".to_string(),
        }
    }
}

/// Decides whether a submission may enter the queues. Pure function of the
/// observed state, so it is trivially testable and the server can hold its
/// lock across the decision.
pub fn admit(
    config: &AdmissionConfig,
    phase: Phase,
    tenant_queued: usize,
    global_queued: usize,
) -> Result<(), Rejection> {
    if phase != Phase::Accepting {
        return Err(Rejection::Draining);
    }
    if global_queued >= config.max_queued_global {
        return Err(Rejection::GlobalOverload {
            depth: global_queued,
        });
    }
    if tenant_queued >= config.max_queued_per_tenant {
        return Err(Rejection::TenantQueueFull {
            depth: tenant_queued,
        });
    }
    Ok(())
}

/// The `Retry-After` hint for a rejected submission, in milliseconds:
/// the backlog ahead of the client times the observed mean service time
/// (falling back to 50 ms before any job has completed), clamped to
/// [100 ms, 60 s]. Deterministic in its inputs — no randomness — so tests
/// can assert on it; clients should still jitter on their side.
pub fn retry_after_ms(backlog: usize, mean_service_ns: Option<u64>) -> u64 {
    let per_job_ms = mean_service_ns.map_or(50, |ns| (ns / 1_000_000).max(1));
    ((backlog as u64 + 1) * per_job_ms).clamp(100, 60_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            max_queued_per_tenant: 2,
            max_inflight_per_tenant: 1,
            max_queued_global: 4,
        }
    }

    #[test]
    fn accepts_under_caps() {
        assert_eq!(admit(&config(), Phase::Accepting, 0, 0), Ok(()));
        assert_eq!(admit(&config(), Phase::Accepting, 1, 3), Ok(()));
    }

    #[test]
    fn rejects_with_the_right_status() {
        let tenant_full = admit(&config(), Phase::Accepting, 2, 3).unwrap_err();
        assert_eq!(tenant_full.status(), 429);
        assert!(tenant_full.reason().contains("tenant queue full"));

        let overload = admit(&config(), Phase::Accepting, 0, 4).unwrap_err();
        assert_eq!(overload.status(), 429);
        assert!(overload.reason().contains("overloaded"));

        // The global check dominates: overload sheds everyone.
        assert_eq!(
            admit(&config(), Phase::Accepting, 2, 9),
            Err(Rejection::GlobalOverload { depth: 9 })
        );

        for phase in [Phase::Draining, Phase::Stopped] {
            let drained = admit(&config(), phase, 0, 0).unwrap_err();
            assert_eq!(drained, Rejection::Draining);
            assert_eq!(drained.status(), 503);
        }
    }

    #[test]
    fn retry_hint_scales_with_backlog() {
        // No observations yet: 50 ms per queued job.
        assert_eq!(retry_after_ms(0, None), 100, "floor");
        assert_eq!(retry_after_ms(9, None), 500);
        // Observed mean service time drives the estimate.
        assert_eq!(retry_after_ms(4, Some(20_000_000)), 100);
        assert_eq!(retry_after_ms(99, Some(8_000_000)), 800);
        // Ceiling keeps hints sane under extreme backlog.
        assert_eq!(retry_after_ms(1_000_000, Some(1_000_000_000)), 60_000);
    }
}
