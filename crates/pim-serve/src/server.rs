//! The service itself: listener, HTTP worker pool, dispatchers, routing.
//!
//! ## Thread topology
//!
//! ```text
//!   acceptor ──► bounded connection channel ──► HTTP workers (parse,
//!      │         (try_send; full = shed 429)    route, respond)
//!      │                                          │ submit/cancel/query
//!      ▼                                          ▼
//!   TcpListener                            Core state (one mutex):
//!                                          phase, tenant queues, job table
//!                                                 │ work condvar
//!                                                 ▼
//!                                          dispatchers ──► pim-runtime
//!                                          (weighted fair pick, one job
//!                                           per dispatch, settle meter)
//! ```
//!
//! The thread budget is explicit: HTTP workers only parse and route (no
//! simulation), dispatchers each run one job at a time, and every job's
//! simulated device gets `intra_worker_budget(Auto, dispatchers, machine −
//! HTTP workers)` threads — so service threads × dispatchers × intra-run
//! threads never oversubscribe the host (see [`ServeConfig::plan`]).
//!
//! ## Determinism at the network edge
//!
//! The runtime's contract — an [`pim_device::ExecReport`] is a pure
//! function of the job — survives the service unchanged: admission order,
//! queueing, fair dispatch, and thread counts only decide *when* a job
//! runs, never what it computes. The overload integration test asserts
//! this byte-for-byte against direct `pim-runtime` runs.

use crate::admission::{self, AdmissionConfig, Phase, Rejection};
use crate::api::*;
use crate::http::{client_request, read_request, ParseError, Request, Response};
use crate::meter::{Ledger, MeterConfig};
use crate::queue::TenantQueues;
use pim_device::Parallelism;
use pim_flight::{FaultTally, FlightConfig, FlightRecorder, JobObservation};
use pim_obs::{
    prom, EventLog, EventLogConfig, Level, Registry, RequestIdSource, SloConfig, SloTracker,
};
use pim_runtime::{intra_worker_budget, Job, JobInstruments, Runtime, RuntimeConfig};
use pim_trace::{NullSink, Span, TraceSink, Track, ATTR_REQUEST_ID};
use rm_core::WearTracker;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many recent events `GET /v1/events` returns (the ring retains
/// [`EventLogConfig::default`]'s capacity; this bounds one response).
const EVENTS_DEFAULT_LIMIT: usize = 256;

/// How many summaries `GET /v1/debug/requests` lists alongside the
/// retained index.
const DEBUG_RECENT_LIMIT: usize = 32;

/// Top-K nanowire rows in the `GET /v1/device/health` heatmap.
const HEALTH_TOP_WIRES: usize = 16;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads (parse + route only, no simulation).
    pub http_workers: usize,
    /// Dispatcher threads (each runs one job at a time in the runtime).
    /// Zero pauses dispatch entirely — jobs queue but never run — which
    /// exists for deterministic cancellation tests, not production use.
    pub dispatch_workers: usize,
    /// Bounded connection-queue depth between acceptor and HTTP workers;
    /// beyond it, connections are shed at the door with a 429.
    pub connection_backlog: usize,
    /// Per-read timeout on client sockets, milliseconds.
    pub read_timeout_ms: u64,
    /// Admission caps.
    pub admission: AdmissionConfig,
    /// Metering rates.
    pub meter: MeterConfig,
    /// Initial per-tenant dispatch weights (tenants absent here get 1).
    pub tenant_weights: Vec<(String, u64)>,
    /// Per-tenant latency SLO (objective + target fraction). Feeds both
    /// the SLO tracker and the flight recorder's breach detection.
    pub slo: SloConfig,
    /// Flight-recorder policy (retention, ring budgets, outlier knobs).
    pub flight: FlightConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 2,
            dispatch_workers: machine.saturating_sub(2).clamp(1, 4),
            connection_backlog: 64,
            read_timeout_ms: 2_000,
            admission: AdmissionConfig::default(),
            meter: MeterConfig::default(),
            tenant_weights: Vec::new(),
            slo: SloConfig::default(),
            flight: FlightConfig::default(),
        }
    }
}

/// The service's explicit thread budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Hardware threads on this machine.
    pub machine: usize,
    /// HTTP worker threads.
    pub http_workers: usize,
    /// Dispatcher threads.
    pub dispatch_workers: usize,
    /// Intra-run simulation threads granted to each running job.
    pub intra_per_job: usize,
}

impl ServeConfig {
    /// Splits the machine between service threads and simulation:
    /// dispatchers share what is left after the HTTP workers, and each
    /// job's device gets the dispatchers' fair share of that remainder via
    /// [`intra_worker_budget`] — so `dispatch_workers × intra_per_job`
    /// never exceeds the compute budget.
    pub fn plan(&self) -> ThreadPlan {
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let compute = machine.saturating_sub(self.http_workers).max(1);
        let intra_per_job = intra_worker_budget(Parallelism::Auto, self.dispatch_workers, compute);
        ThreadPlan {
            machine,
            http_workers: self.http_workers,
            dispatch_workers: self.dispatch_workers,
            intra_per_job,
        }
    }

    /// The runtime configuration the plan implies. Each dispatcher submits
    /// single-job batches, so the runtime's own batch pool stays at one
    /// worker and all parallelism is explicit: dispatcher threads ×
    /// `Threads(intra_per_job)` devices.
    pub fn runtime_config(&self) -> RuntimeConfig {
        let plan = self.plan();
        RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            intra_parallelism: if plan.intra_per_job <= 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(plan.intra_per_job)
            },
        }
    }
}

/// One job's full server-side record.
#[derive(Debug, Clone)]
struct JobRecord {
    id: u64,
    tenant: String,
    /// Correlation id of the submitting HTTP request.
    request_id: String,
    name: String,
    job: Job,
    state: JobState,
    submitted_ns: u64,
    started_ns: Option<u64>,
    finished_ns: Option<u64>,
    /// Failure message for failed jobs.
    error: Option<String>,
    /// The completed report as JSON (pre-serialized once; responses and
    /// the byte-identity tests read this exact string).
    report_json: Option<String>,
}

/// Mutable state under the core mutex.
#[derive(Debug)]
struct CoreState {
    phase: Phase,
    queues: TenantQueues,
    jobs: HashMap<u64, JobRecord>,
    next_id: u64,
}

/// Monotone traffic counters (lock-free; read by `/v1/metrics`).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_tenant: AtomicU64,
    rejected_global: AtomicU64,
    rejected_drain: AtomicU64,
    shed_connections: AtomicU64,
    cancelled: AtomicU64,
    /// Completed-job service time, for `Retry-After` estimation.
    service_ns_total: AtomicU64,
    service_jobs: AtomicU64,
}

impl Counters {
    fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_tenant: self.rejected_tenant.load(Ordering::Relaxed),
            rejected_global: self.rejected_global.load(Ordering::Relaxed),
            rejected_drain: self.rejected_drain.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Mean observed service time, if any job has completed.
    fn mean_service_ns(&self) -> Option<u64> {
        let jobs = self.service_jobs.load(Ordering::Relaxed);
        (jobs > 0).then(|| self.service_ns_total.load(Ordering::Relaxed) / jobs)
    }
}

/// The always-on telemetry plane: one registry, one event ring, one SLO
/// tracker, and the request-id mint — shared by every service thread.
/// Everything here is host-side observation; nothing feeds back into
/// simulated results (the determinism suite asserts this).
struct Obs {
    registry: Registry,
    events: EventLog,
    slo: SloTracker,
    request_ids: RequestIdSource,
}

impl Obs {
    fn new(slo: SloConfig) -> Self {
        Obs {
            registry: Registry::new(),
            events: EventLog::new(EventLogConfig::default()),
            slo: SloTracker::new(slo),
            request_ids: RequestIdSource::new(),
        }
    }
}

/// Everything the service threads share.
struct Core {
    config: ServeConfig,
    runtime: Runtime,
    ledger: Ledger,
    state: Mutex<CoreState>,
    /// Signaled on submit and on freed in-flight slots; dispatchers wait.
    work: Condvar,
    /// Signaled when a job settles; drain waits.
    done: Condvar,
    counters: Counters,
    /// Tells the acceptor to stop taking connections.
    stop: AtomicBool,
    /// Zero point of the service host clock.
    origin: Instant,
    sink: Arc<dyn TraceSink>,
    obs: Obs,
    /// The always-on flight recorder (tail-sampled per-request records).
    flight: FlightRecorder,
    /// Device-health accumulator, fed from every request's attribution.
    health: Arc<WearTracker>,
    /// Per-device utilization rollup for cluster jobs, fed from the same
    /// attribution stream (single-device jobs contribute nothing).
    cluster_util: pim_flight::ClusterUtilization,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("config", &self.config)
            .finish()
    }
}

impl Core {
    fn new(config: ServeConfig, sink: Arc<dyn TraceSink>) -> Self {
        let runtime = Runtime::with_sink(config.runtime_config(), Arc::clone(&sink));
        let ledger = Ledger::new(config.meter.clone());
        let mut queues = TenantQueues::new();
        for (tenant, weight) in &config.tenant_weights {
            queues.set_weight(tenant, *weight);
        }
        let flight = FlightRecorder::new(config.flight.clone());
        let obs = Obs::new(config.slo);
        Core {
            config,
            runtime,
            ledger,
            state: Mutex::new(CoreState {
                phase: Phase::Accepting,
                queues,
                jobs: HashMap::new(),
                next_id: 1,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            origin: Instant::now(),
            sink,
            obs,
            flight,
            health: Arc::new(WearTracker::new()),
            cluster_util: pim_flight::ClusterUtilization::new(),
        }
    }

    /// Nanoseconds since server start.
    fn host_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// One dispatcher thread: fair-pick a job, run it through the runtime,
    /// settle the meter, publish the outcome. Exits once the service has
    /// left `Accepting` and the queues are empty.
    fn dispatch_loop(&self) {
        loop {
            let (tenant, job_id, job, queued_ns) = {
                let mut state = self.state.lock().expect("core lock");
                loop {
                    let cap = self.config.admission.max_inflight_per_tenant;
                    if let Some((tenant, job_id)) = state.queues.dispatch(cap) {
                        let record = state.jobs.get_mut(&job_id).expect("queued job recorded");
                        record.state = JobState::Running;
                        let started_ns = self.host_ns();
                        record.started_ns = Some(started_ns);
                        let queued_ns = started_ns.saturating_sub(record.submitted_ns);
                        let job = record.job.clone();
                        break (tenant, job_id, job, queued_ns);
                    }
                    if state.phase != Phase::Accepting && state.queues.queued() == 0 {
                        return;
                    }
                    state = self.work.wait(state).expect("core lock");
                }
            };

            // The flight tap observes the instrumented repriced fast path:
            // attaching it never changes the simulated outcome (the
            // determinism suite pins recorder-on vs recorder-off reports
            // byte-for-byte).
            let tap = self.flight.begin();
            let started = Instant::now();
            let (batch, dispositions) = match &tap {
                Some(tap) => self.runtime.run_batch_instrumented(
                    std::slice::from_ref(&job),
                    &JobInstruments {
                        sink: &tap.collector,
                        probe: &tap.probe,
                    },
                ),
                None => self.runtime.run_batch_instrumented(
                    std::slice::from_ref(&job),
                    &JobInstruments::disabled(),
                ),
            };
            let outcome = batch.outcomes.into_iter().next().expect("one outcome");
            let cache = dispositions.into_iter().next().unwrap_or_default();
            let elapsed_ns = started.elapsed().as_nanos() as u64;
            self.counters
                .service_ns_total
                .fetch_add(elapsed_ns, Ordering::Relaxed);
            self.counters.service_jobs.fetch_add(1, Ordering::Relaxed);

            let ok = outcome.report.is_ok();
            self.obs.slo.observe(&tenant, ok, elapsed_ns);
            self.obs
                .registry
                .counter(
                    "pim_serve_jobs_dispatched_total",
                    "Jobs run to completion by the dispatchers (completed or failed).",
                    &[("tenant", &tenant)],
                )
                .inc();
            self.obs
                .registry
                .histogram(
                    "pim_serve_job_service_ns",
                    "Host wall-clock service time of one dispatched job, nanoseconds.",
                    &[],
                )
                .observe(elapsed_ns);
            let id_str = job_id.to_string();
            match &outcome.report {
                Ok(_) => self.obs.events.emit(
                    Level::Info,
                    "dispatch",
                    &job.request_id,
                    "job completed",
                    &[("id", &id_str), ("tenant", &tenant), ("name", &job.name)],
                ),
                Err(message) => self.obs.events.emit(
                    Level::Error,
                    "dispatch",
                    &job.request_id,
                    message,
                    &[("id", &id_str), ("tenant", &tenant), ("name", &job.name)],
                ),
            };

            // Settle the meter before publishing the terminal state, so a
            // client that polls "Completed" always sees a settled record.
            self.ledger.settle(job_id, outcome.report.as_ref().ok());

            let fault = outcome
                .report
                .as_ref()
                .ok()
                .map(|r| FaultTally::from_counters(&r.counters))
                .unwrap_or_default();
            let error = outcome.report.as_ref().err().cloned();

            let mut state = self.state.lock().expect("core lock");
            state.queues.finish(&tenant);
            let record = state.jobs.get_mut(&job_id).expect("running job recorded");
            record.finished_ns = Some(self.host_ns());
            match outcome.report {
                Ok(report) => {
                    record.state = JobState::Completed;
                    record.report_json =
                        Some(serde_json::to_string(&report).expect("report serializes"));
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                }
            }
            drop(state);
            // A tenant slot freed: other dispatchers may now be eligible.
            self.work.notify_all();
            self.done.notify_all();

            // Completion hooks of the flight recorder: fold the request's
            // attribution into the device-health heatmap, then let the
            // retention policy decide what the request leaves behind. Both
            // observe only; neither touches simulated state.
            if let Some(tap) = &tap {
                let tree = tap.probe.snapshot();
                pim_flight::absorb_attribution(&self.health, &tree);
                self.cluster_util.absorb_attribution(&tree);
            }
            let retained = self.flight.finish(
                JobObservation {
                    request_id: job.request_id.clone(),
                    job_id,
                    tenant: tenant.clone(),
                    name: job.name.clone(),
                    platform: job.platform.name().to_string(),
                    shape_key: cache.shape_key,
                    queued_ns,
                    latency_ns: elapsed_ns,
                    slo_objective_ns: self.config.slo.latency_objective_ns,
                    ok,
                    error,
                    cancelled: false,
                    cache,
                    fault,
                },
                tap,
            );
            if let Some(reason) = retained {
                self.obs.events.emit(
                    Level::Info,
                    "flight",
                    &job.request_id,
                    "flight record retained",
                    &[
                        ("tenant", &tenant),
                        ("name", &job.name),
                        ("reason", reason.label()),
                    ],
                );
            }
        }
    }

    /// Bumps the labeled admission-outcome counter.
    fn admission_outcome(&self, outcome: &str) {
        self.obs
            .registry
            .counter(
                "pim_serve_admission_total",
                "Admission decisions by outcome (admitted, rejected_tenant, rejected_global, rejected_drain, shed_connection).",
                &[("outcome", outcome)],
            )
            .inc();
    }

    /// `POST /v1/jobs`.
    fn submit(&self, request: &Request, request_id: &str) -> Response {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let parsed: SubmitRequest = match serde_json::from_str(request.body_str()) {
            Ok(parsed) => parsed,
            Err(error) => return Response::error(400, &format!("bad submit body: {error}")),
        };
        if parsed.tenant.is_empty() {
            return Response::error(400, "tenant must be non-empty");
        }
        // Cluster specs are validated at the edge: a bad device count or
        // batch is the client's error (400), not a queued job that fails.
        if let Some(spec) = &parsed.job.cluster {
            if let Err(error) = spec.validate() {
                return Response::error(400, &format!("bad cluster spec: {error}"));
            }
        }
        let tenant = parsed.tenant;
        // Tenant and request id are both stamped at the edge: whatever the
        // client put in those job fields is overwritten here.
        let job = parsed
            .job
            .for_tenant(tenant.clone())
            .with_request_id(request_id);

        let mut state = self.state.lock().expect("core lock");
        let decision = admission::admit(
            &self.config.admission,
            state.phase,
            state.queues.queued_for(&tenant),
            state.queues.queued(),
        );
        if let Err(rejection) = decision {
            let backlog = state.queues.queued() + state.queues.in_flight();
            drop(state);
            let (counter, outcome) = match &rejection {
                Rejection::TenantQueueFull { .. } => {
                    (&self.counters.rejected_tenant, "rejected_tenant")
                }
                Rejection::GlobalOverload { .. } => {
                    (&self.counters.rejected_global, "rejected_global")
                }
                Rejection::Draining => (&self.counters.rejected_drain, "rejected_drain"),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            self.admission_outcome(outcome);
            self.obs.events.emit(
                Level::Warn,
                "admission",
                request_id,
                &rejection.reason(),
                &[("tenant", &tenant), ("outcome", outcome)],
            );
            return self.reject(rejection, backlog, request_id);
        }
        let job_id = state.next_id;
        state.next_id += 1;
        // Ledger admission happens under the core lock, before the job is
        // visible to dispatchers — a dispatcher can never settle a job the
        // ledger has not admitted.
        let batch = job.cluster.map_or(1, |c| u64::from(c.batch));
        let meter = self
            .ledger
            .admit_batched(job_id, &tenant, request_id, &job.workload, batch);
        state.jobs.insert(
            job_id,
            JobRecord {
                id: job_id,
                tenant: tenant.clone(),
                request_id: request_id.to_string(),
                name: job.name.clone(),
                job,
                state: JobState::Queued,
                submitted_ns: self.host_ns(),
                started_ns: None,
                finished_ns: None,
                error: None,
                report_json: None,
            },
        );
        state.queues.push(&tenant, job_id);
        drop(state);
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.admission_outcome("admitted");
        let id_str = job_id.to_string();
        self.obs.events.emit(
            Level::Info,
            "admission",
            request_id,
            "job admitted",
            &[("id", &id_str), ("tenant", &tenant)],
        );
        self.work.notify_all();

        let body = SubmitResponse {
            id: job_id,
            tenant,
            request_id: request_id.to_string(),
            state: JobState::Queued,
            meter,
        };
        Response::json(
            202,
            serde_json::to_string(&body).expect("response serializes"),
        )
    }

    /// Builds the 429/503 response for a refusal, with `Retry-After` both
    /// as a header (whole seconds, per HTTP) and a millisecond hint in the
    /// body. `request_id` is empty when the connection was shed before a
    /// request could be read.
    fn reject(&self, rejection: Rejection, backlog: usize, request_id: &str) -> Response {
        let retry_ms = admission::retry_after_ms(backlog, self.counters.mean_service_ns());
        let body = ErrorResponse {
            error: rejection.reason(),
            request_id: request_id.to_string(),
            retry_after_ms: Some(retry_ms),
        };
        Response::json(
            rejection.status(),
            serde_json::to_string(&body).expect("response serializes"),
        )
        .header("Retry-After", retry_ms.div_ceil(1000).max(1))
    }

    /// `GET /v1/jobs/{id}`.
    fn status(&self, job_id: u64) -> Response {
        let state = self.state.lock().expect("core lock");
        let Some(record) = state.jobs.get(&job_id) else {
            return Response::error(404, &format!("no such job {job_id}"));
        };
        let body = StatusResponse {
            id: record.id,
            tenant: record.tenant.clone(),
            request_id: record.request_id.clone(),
            name: record.name.clone(),
            state: record.state,
            submitted_ns: record.submitted_ns,
            started_ns: record.started_ns,
            finished_ns: record.finished_ns,
        };
        Response::json(
            200,
            serde_json::to_string(&body).expect("response serializes"),
        )
    }

    /// `GET /v1/jobs/{id}/result`. The report JSON is spliced in verbatim
    /// from the string serialized at completion, so what the client
    /// receives is byte-identical to serializing the runtime's report
    /// directly.
    fn result(&self, job_id: u64) -> Response {
        let state = self.state.lock().expect("core lock");
        let Some(record) = state.jobs.get(&job_id) else {
            return Response::error(404, &format!("no such job {job_id}"));
        };
        if !record.state.is_terminal() {
            return Response::error(
                409,
                &format!("job {job_id} is {:?}; result not ready", record.state),
            );
        }
        let meter = self
            .ledger
            .record(job_id)
            .map(|r| serde_json::to_string(&r).expect("meter serializes"))
            .unwrap_or_else(|| "null".to_string());
        let report = record
            .report_json
            .clone()
            .unwrap_or_else(|| "null".to_string());
        let error = serde_json::to_string(&record.error).expect("error serializes");
        let state_json = serde_json::to_string(&record.state).expect("state serializes");
        // Hand-assembled so the `report` field is the exact bytes stored
        // at completion (field order mirrors `api::ResultResponse`).
        let body = format!(
            "{{\"id\": {}, \"tenant\": {}, \"request_id\": {}, \"state\": {}, \"report\": {}, \"error\": {}, \"meter\": {}}}",
            record.id,
            serde_json::to_string(&record.tenant).expect("tenant serializes"),
            serde_json::to_string(&record.request_id).expect("request id serializes"),
            state_json,
            report,
            error,
            meter,
        );
        Response::json(200, body)
    }

    /// `DELETE /v1/jobs/{id}`.
    fn cancel(&self, job_id: u64) -> Response {
        let mut state = self.state.lock().expect("core lock");
        let Some(record) = state.jobs.get(&job_id) else {
            return Response::error(404, &format!("no such job {job_id}"));
        };
        let tenant = record.tenant.clone();
        let request_id = record.request_id.clone();
        let name = record.name.clone();
        let platform = record.job.platform.name().to_string();
        let submitted_ns = record.submitted_ns;
        match record.state {
            JobState::Queued => {
                assert!(
                    state.queues.remove(&tenant, job_id),
                    "queued job is in its tenant queue"
                );
                let record = state.jobs.get_mut(&job_id).expect("record exists");
                record.state = JobState::Cancelled;
                let cancelled_ns = self.host_ns();
                record.finished_ns = Some(cancelled_ns);
                drop(state);
                // Cancellations are always tail-sampled: the record shows
                // how long the request sat queued before it was abandoned.
                self.flight.finish(
                    JobObservation {
                        request_id: request_id.clone(),
                        job_id,
                        tenant: tenant.clone(),
                        name,
                        platform,
                        queued_ns: cancelled_ns.saturating_sub(submitted_ns),
                        latency_ns: cancelled_ns.saturating_sub(submitted_ns),
                        slo_objective_ns: self.config.slo.latency_objective_ns,
                        ok: false,
                        cancelled: true,
                        ..JobObservation::default()
                    },
                    None,
                );
                assert!(self.ledger.cancel(job_id), "queued job's meter is pending");
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                let id_str = job_id.to_string();
                self.obs.events.emit(
                    Level::Info,
                    "admission",
                    &request_id,
                    "job cancelled",
                    &[("id", &id_str), ("tenant", &tenant)],
                );
                // Cancellation can make the queues idle: wake a drain.
                self.done.notify_all();
                let body = StatusResponse {
                    id: job_id,
                    tenant,
                    request_id,
                    name: String::new(),
                    state: JobState::Cancelled,
                    submitted_ns: 0,
                    started_ns: None,
                    finished_ns: None,
                };
                Response::json(200, serde_json::to_string(&body).expect("serializes"))
            }
            JobState::Running => Response::error(
                409,
                "job is running; the simulator is not interruptible, it will complete and be metered",
            ),
            state => Response::error(409, &format!("job already {state:?}")),
        }
    }

    /// `GET /v1/metrics`.
    fn metrics(&self) -> Response {
        let phase = self.state.lock().expect("core lock").phase;
        let body = MetricsResponse {
            phase,
            server: self.counters.stats(),
            runtime: self.runtime.metrics(),
            ledger: self.ledger.summary(),
            slo: self.obs.slo.report(),
            flight: self.flight.counters(),
            cluster: self.cluster_util.snapshot(),
        };
        Response::json(200, serde_json::to_string(&body).expect("serializes"))
    }

    /// `GET /v1/debug/requests`: recorder counters, the retained-record
    /// index (newest first), and the tail of recent summaries.
    fn debug_requests(&self) -> Response {
        let index = self.flight.index(DEBUG_RECENT_LIMIT);
        Response::json(200, serde_json::to_string(&index).expect("serializes"))
    }

    /// `GET /v1/debug/requests/{id}`: the full retained record, served as
    /// the exact bytes stored at retention time.
    fn debug_request(&self, request_id: &str) -> Response {
        match self.flight.get_json(request_id) {
            Some(json) => Response::json(200, json),
            None => Response::error(
                404,
                &format!("no retained flight record for {request_id:?} (evicted or summarized)"),
            ),
        }
    }

    /// `GET /v1/device/health`: the per-subarray fault/wear heatmap plus
    /// the top-K most-shifted nanowires.
    fn device_health(&self) -> Response {
        let body = DeviceHealthResponse {
            health: self.health.snapshot(HEALTH_TOP_WIRES),
        };
        Response::json(200, serde_json::to_string(&body).expect("serializes"))
    }

    /// Samples the point-in-time gauges that have no event to hook:
    /// queue depths, trace-sink loss, SLO attainment, and event-log
    /// suppression. Called on every `/metrics.prom` scrape so the
    /// exposition is current without a background sampler thread.
    fn sample_gauges(&self) {
        let depths = {
            let state = self.state.lock().expect("core lock");
            state.queues.depths()
        };
        for (tenant, queued, in_flight) in &depths {
            self.obs
                .registry
                .gauge(
                    "pim_serve_queue_depth",
                    "Jobs waiting in one tenant's FIFO queue.",
                    &[("tenant", tenant)],
                )
                .set(*queued as i64);
            self.obs
                .registry
                .gauge(
                    "pim_serve_inflight_jobs",
                    "Jobs currently executing for one tenant.",
                    &[("tenant", tenant)],
                )
                .set(*in_flight as i64);
        }
        let runtime = self.runtime.metrics();
        self.obs
            .registry
            .gauge(
                "pim_runtime_cache_near_hits",
                "Cache near misses served by incremental re-pricing (same DAG shape, new dimensions).",
                &[],
            )
            .set(runtime.cache_near_hits as i64);
        self.obs
            .registry
            .gauge(
                "pim_runtime_cache_repriced_rows",
                "Request-table rows priced fresh across all near-miss re-pricings.",
                &[],
            )
            .set(runtime.cache_repriced_rows as i64);
        self.obs
            .registry
            .gauge(
                "pim_trace_dropped_records",
                "Trace records refused because the sink was at capacity.",
                &[],
            )
            .set(self.sink.dropped_records() as i64);
        self.obs
            .registry
            .gauge(
                "pim_trace_collector_capacity",
                "Trace-sink retention cap in records (-1 = unbounded).",
                &[],
            )
            .set(self.sink.capacity().map_or(-1, |c| c as i64));
        self.obs
            .registry
            .gauge(
                "pim_obs_events_suppressed_total",
                "Structured events filtered by level or rate limiting.",
                &[],
            )
            .set(self.obs.events.suppressed() as i64);
        let flight = self.flight.counters();
        self.obs
            .registry
            .gauge(
                "pim_flight_retained_total",
                "Full flight records retained by the tail-sampling policy.",
                &[],
            )
            .set(flight.retained as i64);
        self.obs
            .registry
            .gauge(
                "pim_flight_summarized_total",
                "Requests the flight recorder dropped to a cheap summary.",
                &[],
            )
            .set(flight.summarized as i64);
        self.obs
            .registry
            .gauge(
                "pim_flight_evicted_total",
                "Retained flight records evicted by the ring's record/byte budget.",
                &[],
            )
            .set(flight.evicted as i64);
        self.obs
            .registry
            .gauge(
                "pim_flight_ring_bytes",
                "Bytes of serialized flight records currently resident.",
                &[],
            )
            .set(flight.ring_bytes as i64);
        self.obs
            .registry
            .gauge(
                "pim_flight_overhead_ns_total",
                "Cumulative host time spent in the flight recorder's completion hook.",
                &[],
            )
            .set(flight.overhead_ns as i64);
        let health = self.health.snapshot(0);
        self.obs
            .registry
            .gauge(
                "pim_device_health_shifts_total",
                "Shift operations folded into the device-health heatmap across all subarrays.",
                &[],
            )
            .set(health.totals.shifts as i64);
        self.obs
            .registry
            .gauge(
                "pim_device_health_faults_injected_total",
                "Shift faults injected across all subarrays (functional fault-injection runs).",
                &[],
            )
            .set(health.totals.faults_injected() as i64);
        for row in self.cluster_util.snapshot() {
            let device = row.device.to_string();
            self.obs
                .registry
                .gauge(
                    "pim_cluster_device_busy_ns",
                    "Simulated engine busy time attributed to one cluster device across all served jobs.",
                    &[("device", &device)],
                )
                .set(row.busy_ns as i64);
            self.obs
                .registry
                .gauge(
                    "pim_cluster_device_energy_pj",
                    "Simulated engine energy attributed to one cluster device across all served jobs.",
                    &[("device", &device)],
                )
                .set(row.energy_pj as i64);
            self.obs
                .registry
                .gauge(
                    "pim_cluster_link_busy_ns",
                    "Simulated interconnect busy time on one cluster device's link across all served jobs.",
                    &[("device", &device)],
                )
                .set(row.link_busy_ns as i64);
            self.obs
                .registry
                .gauge(
                    "pim_cluster_link_energy_pj",
                    "Simulated interconnect energy on one cluster device's link across all served jobs.",
                    &[("device", &device)],
                )
                .set(row.link_energy_pj as i64);
        }
        for tenant in self.obs.slo.report().tenants {
            self.obs
                .registry
                .gauge(
                    "pim_slo_attainment_millionths",
                    "Fraction of jobs meeting the tenant's latency objective, in millionths.",
                    &[("tenant", &tenant.tenant)],
                )
                .set((tenant.attainment * 1e6) as i64);
            self.obs
                .registry
                .gauge(
                    "pim_slo_error_budget_burn_millionths",
                    "Error-budget burn rate (1 = budget consumed exactly at the objective rate), in millionths.",
                    &[("tenant", &tenant.tenant)],
                )
                .set((tenant.error_budget_burn * 1e6) as i64);
        }
    }

    /// `GET /metrics.prom`: the Prometheus text exposition.
    fn metrics_prom(&self) -> Response {
        self.sample_gauges();
        Response::prometheus(prom::encode(&self.obs.registry.gather()))
    }

    /// `GET /v1/events`: the structured event log as JSON lines, oldest
    /// first, most recent `EVENTS_DEFAULT_LIMIT` records.
    fn events(&self) -> Response {
        Response::ndjson(self.obs.events.to_json_lines(EVENTS_DEFAULT_LIMIT))
    }

    /// `GET /v1/tenants/{tenant}/usage`.
    fn usage(&self, tenant: &str) -> Response {
        match self.ledger.usage(tenant) {
            Some(usage) => Response::json(200, serde_json::to_string(&usage).expect("serializes")),
            None => Response::error(404, &format!("tenant {tenant:?} has no usage")),
        }
    }

    /// `GET /v1/healthz`.
    fn healthz(&self) -> Response {
        let state = self.state.lock().expect("core lock");
        let body = HealthResponse {
            phase: state.phase,
            queued: state.queues.queued(),
            in_flight: state.queues.in_flight(),
        };
        Response::json(200, serde_json::to_string(&body).expect("serializes"))
    }

    /// Graceful drain: stop admitting, let every admitted job finish, then
    /// freeze. Idempotent — concurrent calls all block until the drain
    /// completes and return the same final state.
    fn drain(&self) -> DrainResponse {
        {
            let mut state = self.state.lock().expect("core lock");
            if state.phase == Phase::Accepting {
                state.phase = Phase::Draining;
            }
            // Wake dispatchers blocked on an empty queue so they can exit.
            self.work.notify_all();
            while !state.queues.is_idle() {
                state = self.done.wait(state).expect("core lock");
            }
            state.phase = Phase::Stopped;
        }
        // Queues are idle and intake is off: the runtime drains instantly
        // and refuses any stray batch from here on.
        let runtime = self.runtime.shutdown();
        DrainResponse {
            phase: Phase::Stopped,
            runtime,
            ledger: self.ledger.summary(),
        }
    }

    /// Routes one parsed request. `request_id` is the correlation id
    /// minted for this HTTP exchange.
    fn route(&self, request: &Request, request_id: &str) -> Response {
        let segments = request.segments();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["v1", "healthz"]) => self.healthz(),
            ("GET", ["v1", "metrics"]) => self.metrics(),
            ("GET", ["metrics.prom"]) => self.metrics_prom(),
            ("GET", ["v1", "events"]) => self.events(),
            ("GET", ["v1", "debug", "requests"]) => self.debug_requests(),
            ("GET", ["v1", "debug", "requests", id]) => self.debug_request(id),
            ("GET", ["v1", "device", "health"]) => self.device_health(),
            ("POST", ["v1", "jobs"]) => self.submit(request, request_id),
            ("GET", ["v1", "jobs", id]) => match id.parse() {
                Ok(id) => self.status(id),
                Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            },
            ("GET", ["v1", "jobs", id, "result"]) => match id.parse() {
                Ok(id) => self.result(id),
                Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            },
            ("DELETE", ["v1", "jobs", id]) => match id.parse() {
                Ok(id) => self.cancel(id),
                Err(_) => Response::error(400, &format!("bad job id {id:?}")),
            },
            ("GET", ["v1", "tenants", tenant, "usage"]) => self.usage(tenant),
            ("POST", ["v1", "admin", "drain"]) => {
                let drained = self.drain();
                Response::json(200, serde_json::to_string(&drained).expect("serializes"))
            }
            (_, ["v1", "jobs", ..])
            | (_, ["v1", "healthz"])
            | (_, ["v1", "metrics"])
            | (_, ["v1", "events"])
            | (_, ["v1", "debug", ..])
            | (_, ["v1", "device", "health"])
            | (_, ["metrics.prom"]) => {
                Response::error(405, &format!("{} not allowed here", request.method))
            }
            _ => Response::error(404, &format!("no route for {}", request.path)),
        }
    }

    /// A bounded-cardinality label for the request path: ids and tenant
    /// names collapse to placeholders so the metric family stays small no
    /// matter how many jobs or tenants the server has seen.
    fn route_label(request: &Request) -> &'static str {
        match request.segments().as_slice() {
            ["v1", "healthz"] => "/v1/healthz",
            ["v1", "metrics"] => "/v1/metrics",
            ["v1", "events"] => "/v1/events",
            ["metrics.prom"] => "/metrics.prom",
            ["v1", "jobs"] => "/v1/jobs",
            ["v1", "jobs", _] => "/v1/jobs/{id}",
            ["v1", "jobs", _, "result"] => "/v1/jobs/{id}/result",
            ["v1", "debug", "requests"] => "/v1/debug/requests",
            ["v1", "debug", "requests", _] => "/v1/debug/requests/{id}",
            ["v1", "device", "health"] => "/v1/device/health",
            ["v1", "tenants", _, "usage"] => "/v1/tenants/{tenant}/usage",
            ["v1", "admin", "drain"] => "/v1/admin/drain",
            _ => "other",
        }
    }

    /// One HTTP worker: parse, mint a request id, route, respond, close.
    /// Every response carries the id in an `x-request-id` header; the
    /// same id is on the request's trace span, its HTTP metrics, and —
    /// for submissions — everything downstream of admission.
    fn handle_connection(&self, worker: usize, mut stream: TcpStream) {
        let started_ns = self.host_ns();
        let timeout = Duration::from_millis(self.config.read_timeout_ms);
        let request_id = self.obs.request_ids.mint();
        let response = match read_request(&stream, timeout) {
            Ok(request) => {
                let response = self.route(&request, &request_id);
                let elapsed_ns = self.host_ns() - started_ns;
                let route = Core::route_label(&request);
                let status = response.status.to_string();
                self.obs
                    .registry
                    .counter(
                        "pim_http_requests_total",
                        "HTTP requests served, by normalized route and status code.",
                        &[("route", route), ("status", &status)],
                    )
                    .inc();
                self.obs
                    .registry
                    .histogram(
                        "pim_http_request_latency_ns",
                        "Server-side request latency (parse to response ready), nanoseconds.",
                        &[("route", route)],
                    )
                    .observe(elapsed_ns);
                if self.sink.enabled() {
                    self.sink.record_span(
                        Span::host(
                            format!("{} {}", request.method, request.path),
                            "service",
                            Track::Service(worker as u32),
                            started_ns as f64,
                            elapsed_ns as f64,
                        )
                        .arg("status", response.status as u64)
                        .arg(ATTR_REQUEST_ID, request_id.clone()),
                    );
                }
                response
            }
            Err(ParseError::Incomplete) => return, // client went away
            Err(ParseError::Malformed(reason)) => {
                self.obs.events.emit(
                    Level::Warn,
                    "http",
                    &request_id,
                    &format!("malformed request: {reason}"),
                    &[],
                );
                Response::error(400, &format!("malformed request: {reason}"))
            }
            Err(ParseError::BodyTooLarge(size)) => {
                Response::error(413, &format!("body of {size} bytes exceeds limit"))
            }
        };
        let _ = response
            .header("x-request-id", &request_id)
            .write_to(&mut stream);
    }

    /// The acceptor: hand connections to the worker channel, shedding at
    /// the door with a 429 when the channel is full.
    fn accept_loop(&self, listener: TcpListener, tx: SyncSender<TcpStream>) {
        while !self.stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    if let Err(TrySendError::Full(mut stream)) = tx.try_send(stream) {
                        self.counters
                            .shed_connections
                            .fetch_add(1, Ordering::Relaxed);
                        self.admission_outcome("shed_connection");
                        let backlog = {
                            let state = self.state.lock().expect("core lock");
                            state.queues.queued() + state.queues.in_flight()
                        };
                        // Shed before the request was read: no id minted.
                        let _ = self
                            .reject(
                                Rejection::GlobalOverload {
                                    depth: self.config.connection_backlog,
                                },
                                backlog,
                                "",
                            )
                            .write_to(&mut stream);
                    }
                }
                Err(ref error) if error.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        // Dropping `tx` closes the channel; workers exit once it drains.
    }
}

/// A running service instance.
///
/// `start` spawns the acceptor, HTTP workers, and dispatchers and returns
/// immediately; [`Server::shutdown`] (or `POST /v1/admin/drain` plus drop)
/// drains gracefully. The in-process handle is what the tests and the
/// smoke binary drive; `pim_serve` (the binary) wraps it behind a real
/// port for external clients.
#[derive(Debug)]
pub struct Server {
    core: Arc<Core>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service with tracing disabled.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        Server::start_with_sink(config, Arc::new(NullSink))
    }

    /// Binds and starts the service, recording per-request host spans on
    /// [`Track::Service`] lanes into `sink`.
    pub fn start_with_sink(config: ServeConfig, sink: Arc<dyn TraceSink>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let backlog = config.connection_backlog.max(1);
        let http_workers = config.http_workers.max(1);
        let plan = config.plan();
        let core = Arc::new(Core::new(config, sink));

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(backlog);
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();

        {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || core.accept_loop(listener, tx))?,
            );
        }
        for worker in 0..http_workers {
            let core = Arc::clone(&core);
            let rx = Arc::clone(&rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-http-{worker}"))
                    .spawn(move || loop {
                        let next = rx.lock().expect("connection channel").recv();
                        match next {
                            Ok(stream) => core.handle_connection(worker, stream),
                            Err(_) => break, // acceptor gone, channel drained
                        }
                    })?,
            );
        }
        for dispatcher in 0..plan.dispatch_workers {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-dispatch-{dispatcher}"))
                    .spawn(move || core.dispatch_loop())?,
            );
        }

        Ok(Server {
            core,
            addr,
            threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The thread budget in force.
    pub fn plan(&self) -> ThreadPlan {
        self.core.config.plan()
    }

    /// Drains in place (same as `POST /v1/admin/drain`) without stopping
    /// the HTTP front-end: admitted jobs finish, later submissions get 503,
    /// queries keep working.
    pub fn drain(&self) -> DrainResponse {
        self.core.drain()
    }

    /// Runs the ledger's conservation check against the runtime's current
    /// snapshot (see `Ledger::check_conservation`).
    pub fn check_conservation(&self) -> Result<(), String> {
        self.core
            .ledger
            .check_conservation(&self.core.runtime.metrics())
    }

    /// Graceful full stop: drain, stop the acceptor, join every thread.
    /// Returns the final drained state.
    pub fn shutdown(mut self) -> DrainResponse {
        let drained = self.core.drain();
        self.core.stop.store(true, Ordering::Relaxed);
        // Nudge the accept loop in case it is between polls.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        drained
    }
}

/// A blocking JSON call against a running server — thin sugar over
/// [`client_request`] shared by the smoke binary, the load generator, and
/// the tests.
pub fn call(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, HashMap<String, String>, String)> {
    client_request(&addr.to_string(), method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_baselines::PlatformKind;
    use pim_workloads::WorkloadSpec;

    fn tiny_submit(tenant: &str) -> String {
        let request = SubmitRequest {
            tenant: tenant.to_string(),
            job: Job::new(
                WorkloadSpec::MatMul { m: 6, k: 6, n: 6 },
                PlatformKind::StPim,
            ),
        };
        serde_json::to_string(&request).unwrap()
    }

    fn poll_terminal(addr: &SocketAddr, id: u64) -> StatusResponse {
        for _ in 0..2_000 {
            let (status, _, body) = call(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
            assert_eq!(status, 200, "{body}");
            let parsed: StatusResponse = serde_json::from_str(&body).unwrap();
            if parsed.state.is_terminal() {
                return parsed;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn submit_poll_result_round_trip() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();

        let (status, _, body) =
            call(&addr, "POST", "/v1/jobs", Some(&tiny_submit("alice"))).unwrap();
        assert_eq!(status, 202, "{body}");
        let submitted: SubmitResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(submitted.state, JobState::Queued);
        assert_eq!(submitted.meter.tier.name, "probe");
        assert!(submitted.meter.estimated_microcredits > 0);

        let terminal = poll_terminal(&addr, submitted.id);
        assert_eq!(terminal.state, JobState::Completed);
        assert!(terminal.started_ns.is_some() && terminal.finished_ns.is_some());

        let (status, _, body) = call(
            &addr,
            "GET",
            &format!("/v1/jobs/{}/result", submitted.id),
            None,
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let result: ResultResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(result.state, JobState::Completed);
        let report = result.report.expect("completed job has a report");
        assert!(report.total_ns() > 0.0);
        let meter = result.meter.expect("settled meter");
        assert!(meter.billed_microcredits > 0);

        let (status, _, body) = call(&addr, "GET", "/v1/tenants/alice/usage", None).unwrap();
        assert_eq!(status, 200, "{body}");

        server.check_conservation().unwrap();
        let drained = server.shutdown();
        assert_eq!(drained.phase, Phase::Stopped);
        assert_eq!(drained.runtime.jobs_completed, 1);
    }

    #[test]
    fn cluster_jobs_submit_meter_and_complete() {
        use pim_runtime::ClusterSpec;
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();

        let spec = WorkloadSpec::MatMul {
            m: 256,
            k: 128,
            n: 128,
        };
        let plain = SubmitRequest {
            tenant: "alice".into(),
            job: Job::new(spec, PlatformKind::StPim),
        };
        let clustered = SubmitRequest {
            tenant: "alice".into(),
            job: Job::new(spec, PlatformKind::StPim)
                .with_cluster(ClusterSpec::data(4).with_batch(32)),
        };
        let mut ids = Vec::new();
        for request in [&plain, &clustered] {
            let body = serde_json::to_string(request).unwrap();
            let (status, _, body) = call(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
            assert_eq!(status, 202, "{body}");
            let submitted: SubmitResponse = serde_json::from_str(&body).unwrap();
            ids.push((submitted.id, submitted.meter));
        }
        // The batch-aware estimate prices the 32-item cluster job higher
        // than the identical single-item job.
        assert!(
            ids[1].1.estimated_microcredits > ids[0].1.estimated_microcredits,
            "cluster estimate scales with batch: {:?} vs {:?}",
            ids[0].1,
            ids[1].1
        );
        for (id, _) in &ids {
            assert_eq!(poll_terminal(&addr, *id).state, JobState::Completed);
        }
        let (status, _, body) =
            call(&addr, "GET", &format!("/v1/jobs/{}/result", ids[1].0), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let result: ResultResponse = serde_json::from_str(&body).unwrap();
        let cluster_report = result.report.expect("cluster job has a report");
        assert!(cluster_report.total_ns() > 0.0);
        // The ledger reconciles cluster consumption exactly like any other
        // job — the conservation invariant holds with cluster jobs in the
        // mix.
        server.check_conservation().unwrap();
        // The per-device utilization gauges picked up the cluster lanes.
        let (status, _, prom) = call(&addr, "GET", "/metrics.prom", None).unwrap();
        assert_eq!(status, 200);
        for device in 0..4 {
            assert!(
                prom.contains(&format!(
                    "pim_cluster_device_busy_ns{{device=\"{device}\"}}"
                )),
                "device {device} gauge missing from exposition"
            );
        }
        assert!(prom.contains("pim_cluster_link_energy_pj"));
        server.shutdown();
    }

    #[test]
    fn bad_cluster_specs_are_rejected_at_the_edge() {
        use pim_runtime::ClusterSpec;
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();
        for bad in [
            ClusterSpec::data(0),
            ClusterSpec::data(65),
            ClusterSpec::data(2).with_batch(0),
        ] {
            let request = SubmitRequest {
                tenant: "alice".into(),
                job: Job::new(
                    WorkloadSpec::MatMul { m: 6, k: 6, n: 6 },
                    PlatformKind::StPim,
                )
                .with_cluster(bad),
            };
            let body = serde_json::to_string(&request).unwrap();
            let (status, _, body) = call(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("bad cluster spec"), "{body}");
        }
        // Nothing was admitted or metered.
        let (_, _, body) = call(&addr, "GET", "/v1/healthz", None).unwrap();
        let health: HealthResponse = serde_json::from_str(&body).unwrap();
        assert_eq!((health.queued, health.in_flight), (0, 0));
        server.shutdown();
    }

    #[test]
    fn not_found_and_method_errors() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();
        let (status, _, _) = call(&addr, "GET", "/v1/jobs/999", None).unwrap();
        assert_eq!(status, 404);
        let (status, _, _) = call(&addr, "PUT", "/v1/jobs", Some("{}")).unwrap();
        assert_eq!(status, 405);
        let (status, _, _) = call(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _, body) = call(&addr, "POST", "/v1/jobs", Some("not json")).unwrap();
        assert_eq!(status, 400, "{body}");
        server.shutdown();
    }

    #[test]
    fn draining_refuses_submissions_with_503() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();
        let drained = server.drain();
        assert_eq!(drained.phase, Phase::Stopped);
        let (status, headers, body) =
            call(&addr, "POST", "/v1/jobs", Some(&tiny_submit("alice"))).unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(headers.contains_key("retry-after"));
        let error: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(error.error.contains("draining"));
        // Queries still work after drain.
        let (status, _, _) = call(&addr, "GET", "/v1/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn cancel_refunds_queued_jobs() {
        // Dispatch paused: submitted jobs stay queued, so cancellation is
        // deterministic (no race against a fast dispatcher).
        let config = ServeConfig {
            dispatch_workers: 0,
            ..ServeConfig::default()
        };
        let server = Server::start(config).unwrap();
        let addr = server.addr();
        let (status, _, body) =
            call(&addr, "POST", "/v1/jobs", Some(&tiny_submit("alice"))).unwrap();
        assert_eq!(status, 202, "{body}");
        let first: SubmitResponse = serde_json::from_str(&body).unwrap();
        let (status, _, body) =
            call(&addr, "POST", "/v1/jobs", Some(&tiny_submit("alice"))).unwrap();
        assert_eq!(status, 202, "{body}");
        let second: SubmitResponse = serde_json::from_str(&body).unwrap();

        let (status, _, body) =
            call(&addr, "DELETE", &format!("/v1/jobs/{}", second.id), None).unwrap();
        assert_eq!(status, 200, "{body}");
        let cancelled: StatusResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(cancelled.state, JobState::Cancelled);
        // Cancelling again conflicts.
        let (status, _, _) =
            call(&addr, "DELETE", &format!("/v1/jobs/{}", second.id), None).unwrap();
        assert_eq!(status, 409);
        // The estimate was refunded; only the first job's charge remains.
        let (status, _, body) = call(&addr, "GET", "/v1/tenants/alice/usage", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let usage: crate::meter::TenantUsage = serde_json::from_str(&body).unwrap();
        assert_eq!(usage.jobs_cancelled, 1);
        assert_eq!(
            usage.estimated_microcredits,
            first.meter.estimated_microcredits
        );

        // Cancel the first too so the queues are idle and drain completes.
        let (status, _, _) =
            call(&addr, "DELETE", &format!("/v1/jobs/{}", first.id), None).unwrap();
        assert_eq!(status, 200);
        server.check_conservation().unwrap();
        let drained = server.shutdown();
        assert_eq!(drained.ledger.global.jobs_cancelled, 2);
        assert_eq!(drained.ledger.global.jobs_settled, 0);
        assert_eq!(
            drained.ledger.global.estimated_microcredits, 0,
            "all refunded"
        );
    }

    #[test]
    fn observability_endpoints_serve_prom_and_events() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr();

        let (status, headers, body) =
            call(&addr, "POST", "/v1/jobs", Some(&tiny_submit("alice"))).unwrap();
        assert_eq!(status, 202, "{body}");
        let submitted: SubmitResponse = serde_json::from_str(&body).unwrap();
        assert!(submitted.request_id.starts_with("req-"));
        assert_eq!(
            headers.get("x-request-id").map(String::as_str),
            Some(submitted.request_id.as_str()),
            "header and body agree on the request id"
        );
        assert_eq!(submitted.meter.request_id, submitted.request_id);
        poll_terminal(&addr, submitted.id);

        // The Prometheus exposition parses strictly and carries the
        // families the scrape is expected to expose.
        let (status, headers, body) = call(&addr, "GET", "/metrics.prom", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            headers
                .get("content-type")
                .is_some_and(|t| t.starts_with("text/plain; version=0.0.4")),
            "prometheus content type"
        );
        let stats = pim_obs::prom::validate_exposition(&body).expect("valid exposition");
        assert!(
            stats.families >= 5,
            "got {} families:\n{body}",
            stats.families
        );
        for family in [
            "pim_http_requests_total",
            "pim_http_request_latency_ns",
            "pim_serve_admission_total",
            "pim_serve_queue_depth",
            "pim_runtime_cache_near_hits",
            "pim_runtime_cache_repriced_rows",
            "pim_trace_dropped_records",
            "pim_trace_collector_capacity",
            "pim_slo_attainment_millionths",
        ] {
            assert!(body.contains(family), "missing {family} in:\n{body}");
        }

        // The event log serves JSON lines, each a parseable record, and
        // the submission left correlated admission + dispatch events.
        let (status, headers, body) = call(&addr, "GET", "/v1/events", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            headers.get("content-type").map(String::as_str),
            Some("application/x-ndjson")
        );
        let records: Vec<pim_obs::EventRecord> = body
            .lines()
            .map(|line| serde_json::from_str(line).expect("event line parses"))
            .collect();
        assert!(
            records
                .iter()
                .any(|r| r.message == "job admitted" && r.request_id == submitted.request_id),
            "admission event correlated: {body}"
        );
        assert!(
            records
                .iter()
                .any(|r| r.scope == "dispatch" && r.request_id == submitted.request_id),
            "dispatch event correlated: {body}"
        );

        server.shutdown();
    }

    #[test]
    fn thread_plan_never_oversubscribes() {
        let config = ServeConfig::default();
        let plan = config.plan();
        let compute = plan.machine.saturating_sub(plan.http_workers).max(1);
        assert!(plan.dispatch_workers * plan.intra_per_job <= compute.max(plan.dispatch_workers));
        let runtime_config = config.runtime_config();
        assert_eq!(runtime_config.workers, 1, "dispatchers submit single jobs");
    }
}
