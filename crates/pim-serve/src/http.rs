//! A minimal HTTP/1.1 layer over `std::net`, plus the matching blocking
//! client used by the load generator, the smoke binary, and the tests.
//!
//! Scope is deliberately small — exactly what the job API needs:
//! `Content-Length` bodies (no chunked encoding), `Connection: close` on
//! every response (one request per connection), and hard limits on header
//! and body sizes so a misbehaving client cannot pin a service thread.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on a request body (1 MiB — job specs are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on the header block.
const MAX_HEADER_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path without the query string (e.g. `/v1/jobs/7`).
    pub path: String,
    /// Lowercased header name → value (last occurrence wins).
    pub headers: HashMap<String, String>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or an empty string if it is not valid UTF-8.
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// Path segments, split on `/` with the empty leading segment dropped:
    /// `/v1/jobs/7` → `["v1", "jobs", "7"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be parsed (each maps to a response status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Connection closed or timed out before a full request arrived.
    Incomplete,
    /// The request line or headers are malformed (400).
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] (413).
    BodyTooLarge(usize),
}

/// Reads and parses one request from `stream`. `timeout` bounds every read
/// so a stalled client cannot pin the service thread.
pub fn read_request(stream: &TcpStream, timeout: Duration) -> Result<Request, ParseError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| ParseError::Malformed(format!("set timeout: {e}")))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    read_line_bounded(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("bad version {version:?}")));
    }
    // Strip the query string; the job API is path-addressed only.
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut headers = HashMap::new();
    let mut header_bytes = 0usize;
    loop {
        let mut line = String::new();
        read_line_bounded(&mut reader, &mut line)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::Malformed("header block too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header {line:?}")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length: usize = match headers.get("content-length") {
        Some(raw) => raw
            .parse()
            .map_err(|_| ParseError::Malformed(format!("bad content-length {raw:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ParseError::Incomplete)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, rejecting unbounded lines.
fn read_line_bounded(
    reader: &mut BufReader<&TcpStream>,
    line: &mut String,
) -> Result<(), ParseError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err(ParseError::Incomplete),
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_HEADER_BYTES {
                    return Err(ParseError::Malformed("line too long".into()));
                }
            }
            Err(_) => return Err(ParseError::Incomplete),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *line = String::from_utf8(raw).map_err(|_| ParseError::Malformed("non-UTF-8 line".into()))?;
    Ok(())
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set (name, value).
    pub headers: Vec<(String, String)>,
    /// Response body (JSON everywhere except the Prometheus exposition).
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A Prometheus text-exposition response (version 0.0.4 of the
    /// format, the content type scrapers expect).
    pub fn prometheus(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A newline-delimited JSON (`application/x-ndjson`) response, used
    /// by the structured event log.
    pub fn ndjson(body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type: "application/x-ndjson",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": …}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\": {}}}",
                serde_json::to_string(&message).expect("string")
            ),
        )
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: impl ToString) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status codes this service emits.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response and flushes it to `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// A blocking one-shot HTTP client call: opens a connection, sends the
/// request, reads the full response. Returns `(status, headers, body)`.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, HashMap<String, String>, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    BufReader::new(&stream).read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one raw request through a real socket pair.
    fn parse_raw(raw: &str) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            stream.flush().unwrap();
            // Keep the connection open long enough for the read side; a
            // dropped stream mid-parse reads as Incomplete, which some
            // tests rely on, so only hold it when the request is whole.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        let parsed = read_request(&stream, Duration::from_millis(500));
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = parse_raw(
            "POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\nX-Ten: a\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/jobs", "query string stripped");
        assert_eq!(request.segments(), vec!["v1", "jobs"]);
        assert_eq!(request.body_str(), "{\"a\":1}");
        assert_eq!(request.headers.get("x-ten").map(String::as_str), Some("a"));
    }

    #[test]
    fn parses_a_bodyless_get() {
        let request = parse_raw("GET /v1/healthz HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(
            parse_raw("NOT-HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw("GET / FTP/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let oversized = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_raw(&oversized),
            Err(ParseError::BodyTooLarge(_))
        ));
        // Truncated body: the client promised 50 bytes but sent none.
        assert_eq!(
            parse_raw("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\n"),
            Err(ParseError::Incomplete)
        );
    }

    #[test]
    fn response_wire_format_and_client_agree() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&stream, Duration::from_secs(1)).unwrap();
            assert_eq!(request.method, "GET");
            Response::json(200, "{\"ok\": true}")
                .header("Retry-After", 2)
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, headers, body) = client_request(&addr, "GET", "/v1/healthz", None).unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\": true}");
        assert_eq!(headers.get("retry-after").map(String::as_str), Some("2"));
        assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
    }

    #[test]
    fn content_types_follow_the_constructor() {
        assert_eq!(Response::json(200, "{}").content_type, "application/json");
        let prom = Response::prometheus("# HELP x y\n");
        assert_eq!(prom.status, 200);
        assert!(prom.content_type.starts_with("text/plain; version=0.0.4"));
        assert_eq!(Response::ndjson("").content_type, "application/x-ndjson");
    }

    #[test]
    fn error_responses_are_json() {
        let response = Response::error(429, "tenant \"a\" over quota");
        assert_eq!(response.status, 429);
        assert_eq!(response.reason(), "Too Many Requests");
        assert!(response.body.contains("\"error\""));
        // The message round-trips through JSON escaping.
        assert!(response.body.contains("\\\"a\\\""));
    }
}
