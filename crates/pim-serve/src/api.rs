//! Wire types of the HTTP/JSON job API.
//!
//! Everything here round-trips through the workspace serde shim: structs
//! serialize as objects, unit enum variants as strings (`"Queued"`), and
//! `Option` as the value or `null`. [`pim_runtime::Job`] itself is the
//! submission payload, so anything the batch runtime can price can be
//! submitted over the wire unchanged.

use crate::admission::Phase;
use crate::meter::{LedgerSummary, MeterRecord};
use pim_device::ExecReport;
use pim_flight::FlightCounters;
use pim_obs::SloReport;
use pim_runtime::{Job, MetricsSnapshot};
use rm_core::DeviceHealth;
use serde::{Deserialize, Serialize};

/// `POST /v1/jobs` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tenant the job is billed to (required, non-empty).
    pub tenant: String,
    /// The job to price — the same serializable [`Job`] the batch runtime
    /// takes directly; its `tenant` field is overwritten from the field
    /// above.
    pub job: Job,
}

/// Lifecycle of a submitted job as observed through the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting in its tenant's queue.
    Queued,
    /// Dispatched into the runtime.
    Running,
    /// Finished successfully; the result is available.
    Completed,
    /// Finished with an error.
    Failed,
    /// Removed from the queue before dispatch.
    Cancelled,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// `POST /v1/jobs` success body (202).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// Server-assigned job id.
    pub id: u64,
    /// Billed tenant.
    pub tenant: String,
    /// Correlation id minted for the submitting HTTP request (also sent
    /// as the `x-request-id` response header). The same id appears in
    /// the job's metrics row, its meter record, its trace spans, and the
    /// event log.
    pub request_id: String,
    /// Always [`JobState::Queued`] on admission.
    pub state: JobState,
    /// The admission meter record: cost tier and up-front estimate.
    pub meter: MeterRecord,
}

/// `GET /v1/jobs/{id}` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Job id.
    pub id: u64,
    /// Billed tenant.
    pub tenant: String,
    /// Correlation id of the submitting request.
    pub request_id: String,
    /// Job display name.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Host time the job was admitted (ns since server start).
    pub submitted_ns: u64,
    /// Host time the job was dispatched, if it has been.
    pub started_ns: Option<u64>,
    /// Host time the job reached a terminal state, if it has.
    pub finished_ns: Option<u64>,
}

/// `GET /v1/jobs/{id}/result` body (terminal jobs only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultResponse {
    /// Job id.
    pub id: u64,
    /// Billed tenant.
    pub tenant: String,
    /// Correlation id of the submitting request.
    pub request_id: String,
    /// Terminal state.
    pub state: JobState,
    /// The deterministic run report (completed jobs only).
    pub report: Option<ExecReport>,
    /// The failure message (failed jobs only).
    pub error: Option<String>,
    /// The settled meter record (tier, consumption, bill).
    pub meter: Option<MeterRecord>,
}

/// `GET /v1/healthz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Service lifecycle phase.
    pub phase: Phase,
    /// Jobs queued across all tenants.
    pub queued: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
}

/// Server-level traffic counters (monotone since start).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Submissions received (admitted + rejected).
    pub submitted: u64,
    /// Submissions admitted into the queues.
    pub admitted: u64,
    /// Submissions rejected for a full tenant queue (429).
    pub rejected_tenant: u64,
    /// Submissions shed for global overload (429).
    pub rejected_global: u64,
    /// Submissions refused while draining (503).
    pub rejected_drain: u64,
    /// Connections shed at the door (backlog full, 429).
    pub shed_connections: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
}

/// `GET /v1/metrics` body: the server's own counters, the runtime's full
/// snapshot (per-job and per-tenant rows, latency histogram), and the
/// metering ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Lifecycle phase at snapshot time.
    pub phase: Phase,
    /// Traffic counters.
    pub server: ServerStats,
    /// The batch runtime's metrics snapshot.
    pub runtime: MetricsSnapshot,
    /// The metering ledger.
    pub ledger: LedgerSummary,
    /// Per-tenant latency-SLO attainment and error-budget burn.
    pub slo: SloReport,
    /// Flight-recorder retention/eviction/overhead counters.
    pub flight: FlightCounters,
    /// Per-device utilization rows accumulated from cluster jobs (empty
    /// until a multi-device job completes).
    pub cluster: Vec<pim_flight::DeviceUtilization>,
}

/// `GET /v1/device/health` response body: the fault heatmap.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceHealthResponse {
    /// Per-subarray wear rows, top-K wire list, and grand totals.
    pub health: DeviceHealth,
}

/// `POST /v1/admin/drain` body: the final state after a graceful drain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainResponse {
    /// Always [`Phase::Stopped`] on success.
    pub phase: Phase,
    /// The runtime's final metrics snapshot.
    pub runtime: MetricsSnapshot,
    /// The flushed metering ledger.
    pub ledger: LedgerSummary,
}

/// Error body for every non-2xx response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// What went wrong.
    pub error: String,
    /// Correlation id of the rejected request (empty when the connection
    /// was shed before a request could be read).
    pub request_id: String,
    /// Backoff hint for 429/503 responses (also sent as `Retry-After`,
    /// in whole seconds).
    pub retry_after_ms: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_baselines::PlatformKind;
    use pim_workloads::{Kernel, WorkloadSpec};

    #[test]
    fn submit_request_round_trips() {
        let request = SubmitRequest {
            tenant: "alice".into(),
            job: Job::new(
                WorkloadSpec::polybench(Kernel::Gemm, 0.02),
                PlatformKind::StPim,
            ),
        };
        let json = serde_json::to_string(&request).unwrap();
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
        assert!(json.contains("\"tenant\""));
    }

    #[test]
    fn job_states_serialize_as_strings() {
        assert_eq!(
            serde_json::to_string(&JobState::Queued).unwrap(),
            "\"Queued\""
        );
        let back: JobState = serde_json::from_str("\"Completed\"").unwrap();
        assert_eq!(back, JobState::Completed);
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Queued.is_terminal());
    }

    #[test]
    fn error_body_carries_the_hint() {
        let error = ErrorResponse {
            error: "service overloaded".into(),
            request_id: "req-00000002".into(),
            retry_after_ms: Some(1500),
        };
        let json = serde_json::to_string(&error).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.retry_after_ms, Some(1500));
    }
}
