//! End-to-end smoke test for the flight recorder and device-health
//! telemetry, run by `make flight-smoke` in CI: boots an in-process server
//! with a deliberately tiny SLO objective so every job breaches, submits a
//! healthy-sized batch, then checks that
//!
//! 1. `GET /v1/debug/requests` serves a valid index with retained records,
//! 2. each retained record is fetchable in full at
//!    `GET /v1/debug/requests/<id>` (spans, attribution, folded stacks),
//! 3. unknown request ids get an explicit 404,
//! 4. `GET /v1/device/health` serves a non-empty per-subarray heatmap,
//! 5. the Prometheus exposition still validates strictly and carries the
//!    flight/device-health families.
//!
//! Exits 0 on success, 1 with a diagnostic on any failure.

use pim_baselines::PlatformKind;
use pim_flight::{FlightIndex, FlightRecord};
use pim_obs::SloConfig;
use pim_runtime::Job;
use pim_serve::api::{JobState, StatusResponse, SubmitRequest, SubmitResponse};
use pim_serve::{call, DeviceHealthResponse, MetricsResponse, ServeConfig, Server};
use pim_workloads::WorkloadSpec;
use std::net::SocketAddr;
use std::time::Duration;

fn fail(what: &str) -> ! {
    eprintln!("flight-smoke FAILED: {what}");
    std::process::exit(1);
}

fn submit_body(tenant: &str, m: usize) -> String {
    let request = SubmitRequest {
        tenant: tenant.to_string(),
        job: Job::new(WorkloadSpec::MatMul { m, k: m, n: m }, PlatformKind::StPim),
    };
    serde_json::to_string(&request).expect("request serializes")
}

fn poll_terminal(addr: &SocketAddr, id: u64) -> StatusResponse {
    for _ in 0..2_000 {
        let (status, _, body) = call(addr, "GET", &format!("/v1/jobs/{id}"), None)
            .unwrap_or_else(|e| fail(&format!("poll: {e}")));
        if status != 200 {
            fail(&format!("poll status {status}: {body}"));
        }
        let parsed: StatusResponse =
            serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("poll body: {e}")));
        if parsed.state.is_terminal() {
            return parsed;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    fail("job never reached a terminal state");
}

fn main() {
    // A 1 ns latency objective: every served job breaches its SLO, so the
    // tail sampler must retain every one of them.
    let config = ServeConfig {
        slo: SloConfig {
            latency_objective_ns: 1,
            ..SloConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = server.addr();
    println!("flight-smoke: server on {addr}");

    // 1. Submit a small batch and run it to completion.
    let mut submissions: Vec<SubmitResponse> = Vec::new();
    for i in 0..4u64 {
        let (status, _, body) = call(
            &addr,
            "POST",
            "/v1/jobs",
            Some(&submit_body("flight", 24 + 8 * i as usize)),
        )
        .unwrap_or_else(|e| fail(&format!("submit: {e}")));
        if status != 202 {
            fail(&format!("submit status {status}: {body}"));
        }
        submissions.push(
            serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("submit body: {e}"))),
        );
    }
    for submitted in &submissions {
        let terminal = poll_terminal(&addr, submitted.id);
        if terminal.state != JobState::Completed {
            fail(&format!("job ended {:?}, wanted Completed", terminal.state));
        }
    }
    println!("flight-smoke: {} jobs completed", submissions.len());

    // 2. The debug index must show every job retained (all breached).
    let (status, _, body) = call(&addr, "GET", "/v1/debug/requests", None)
        .unwrap_or_else(|e| fail(&format!("debug index: {e}")));
    if status != 200 {
        fail(&format!("debug index status {status}: {body}"));
    }
    let index: FlightIndex =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("debug index body: {e}")));
    if index.counters.retained < submissions.len() as u64 {
        fail(&format!(
            "retained {} < {} submitted breaches: {body}",
            index.counters.retained,
            submissions.len()
        ));
    }
    if index.retained.is_empty() {
        fail(&format!("index lists no retained records: {body}"));
    }
    for entry in &index.retained {
        if entry.reason != "slo_breach" {
            fail(&format!("unexpected retention reason: {entry:?}"));
        }
        if entry.bytes == 0 {
            fail(&format!("retained entry with zero bytes: {entry:?}"));
        }
    }
    println!(
        "flight-smoke: index lists {} retained records ({} observed, {} bytes resident)",
        index.retained.len(),
        index.counters.observed,
        index.counters.ring_bytes
    );

    // 3. Every submitted request's full record is fetchable by its id and
    // carries the deep diagnostics: per-phase spans, a non-empty
    // attribution profile, and folded stacks.
    for submitted in &submissions {
        let (status, _, body) = call(
            &addr,
            "GET",
            &format!("/v1/debug/requests/{}", submitted.request_id),
            None,
        )
        .unwrap_or_else(|e| fail(&format!("debug record: {e}")));
        if status != 200 {
            fail(&format!(
                "record {} status {status}: {body}",
                submitted.request_id
            ));
        }
        let record: FlightRecord =
            serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("record body: {e}")));
        if record.request_id != submitted.request_id {
            fail(&format!("record id mismatch: {body}"));
        }
        if record.spans.is_empty() {
            fail(&format!("record {} has no spans", submitted.request_id));
        }
        if record.attribution.nodes.is_empty() {
            fail(&format!(
                "record {} has no attribution nodes",
                submitted.request_id
            ));
        }
        if record.folded.is_empty() {
            fail(&format!(
                "record {} has no folded stacks",
                submitted.request_id
            ));
        }
        if record.latency_ns <= record.slo_objective_ns {
            fail(&format!(
                "record {} did not breach: {} <= {}",
                submitted.request_id, record.latency_ns, record.slo_objective_ns
            ));
        }
    }
    println!(
        "flight-smoke: all {} records fetchable with spans + attribution + folded stacks",
        submissions.len()
    );

    // 4. Unknown ids are an explicit 404, not an empty 200.
    let (status, _, body) = call(&addr, "GET", "/v1/debug/requests/req-ffffffff", None)
        .unwrap_or_else(|e| fail(&format!("missing record: {e}")));
    if status != 404 {
        fail(&format!("missing record status {status}: {body}"));
    }

    // 5. The device-health heatmap must be non-empty: the attribution of
    // the served jobs lands in per-subarray wear rows with real shifts.
    let (status, _, body) = call(&addr, "GET", "/v1/device/health", None)
        .unwrap_or_else(|e| fail(&format!("device health: {e}")));
    if status != 200 {
        fail(&format!("device health status {status}: {body}"));
    }
    let health: DeviceHealthResponse =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("device health body: {e}")));
    if health.health.subarrays.is_empty() {
        fail(&format!("heatmap has no subarray rows: {body}"));
    }
    if health.health.totals.shifts == 0 {
        fail(&format!("heatmap totals show no shifts: {body}"));
    }
    println!(
        "flight-smoke: heatmap covers {} subarrays ({} shifts total)",
        health.health.subarrays.len(),
        health.health.totals.shifts
    );

    // 6. /v1/metrics carries the recorder counters; the Prometheus
    // exposition still validates strictly and exports the new families.
    let (status, _, body) =
        call(&addr, "GET", "/v1/metrics", None).unwrap_or_else(|e| fail(&format!("metrics: {e}")));
    if status != 200 {
        fail(&format!("metrics status {status}: {body}"));
    }
    let metrics: MetricsResponse =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("metrics body: {e}")));
    if metrics.flight.observed < submissions.len() as u64 {
        fail(&format!(
            "metrics.flight.observed {} < {}",
            metrics.flight.observed,
            submissions.len()
        ));
    }
    let (status, _, body) = call(&addr, "GET", "/metrics.prom", None)
        .unwrap_or_else(|e| fail(&format!("metrics.prom: {e}")));
    if status != 200 {
        fail(&format!("metrics.prom status {status}: {body}"));
    }
    let stats = pim_obs::prom::validate_exposition(&body)
        .unwrap_or_else(|e| fail(&format!("exposition invalid: {e}\n{body}")));
    for family in [
        "pim_flight_retained_total",
        "pim_flight_summarized_total",
        "pim_flight_evicted_total",
        "pim_flight_ring_bytes",
        "pim_flight_overhead_ns_total",
        "pim_device_health_shifts_total",
        "pim_device_health_faults_injected_total",
    ] {
        if !body.contains(family) {
            fail(&format!("exposition missing {family}"));
        }
    }
    println!(
        "flight-smoke: /metrics.prom valid ({} families, {} series, {} samples)",
        stats.families, stats.series, stats.samples
    );

    // 7. Graceful shutdown.
    let (status, _, body) = call(&addr, "POST", "/v1/admin/drain", None)
        .unwrap_or_else(|e| fail(&format!("drain: {e}")));
    if status != 200 {
        fail(&format!("drain status {status}: {body}"));
    }
    server.shutdown();
    println!("flight-smoke: OK");
}
