//! `pim_top`: a live terminal view over a running pim-serve instance.
//!
//! Polls `GET /v1/metrics` (JSON: server counters, runtime snapshot,
//! ledger, SLO) and `GET /v1/events` (structured log tail) and renders a
//! one-screen dashboard, `top`-style:
//!
//! ```sh
//! pim_top 127.0.0.1:8080            # refresh every second
//! pim_top 127.0.0.1:8080 250        # refresh every 250 ms
//! pim_top 127.0.0.1:8080 --once     # one frame, no clear, then exit
//! pim_top --demo                    # boot an in-process server, drive a
//!                                   # few jobs, render one frame (CI)
//! ```
//!
//! The dashboard is read-only: every request it makes is a GET against
//! endpoints the service serves anyway, so watching a server never
//! perturbs admission, dispatch, or metering.

use pim_flight::FlightIndex;
use pim_serve::api::{DeviceHealthResponse, MetricsResponse};
use pim_serve::http::client_request;
use std::time::Duration;

fn fail(what: &str) -> ! {
    eprintln!("pim_top: {what}");
    std::process::exit(1);
}

/// One GET; returns the body or a description of the failure.
fn get(addr: &str, path: &str) -> Result<String, String> {
    match client_request(addr, "GET", path, None) {
        Ok((200, _, body)) => Ok(body),
        Ok((status, _, body)) => Err(format!("{path} -> {status}: {body}")),
        Err(error) => Err(format!("{path}: {error}")),
    }
}

/// One character per subarray, shaded by its share of the busiest
/// subarray's shift count — a `top`-style wear heatmap in a single row.
/// Subarrays that sampled faults are flagged `!` regardless of load.
fn heatmap_row(health: &rm_core::DeviceHealth) -> String {
    const SHADES: [char; 6] = ['.', ':', '-', '=', '#', '@'];
    let peak = health
        .subarrays
        .iter()
        .map(|s| s.wear.shifts)
        .max()
        .unwrap_or(0)
        .max(1);
    health
        .subarrays
        .iter()
        .map(|s| {
            if s.wear.faults_injected() > 0 {
                '!'
            } else {
                let bucket = (s.wear.shifts * (SHADES.len() as u64 - 1)).div_ceil(peak);
                SHADES[bucket as usize]
            }
        })
        .collect()
}

/// Renders one dashboard frame from the server's own snapshots.
fn frame(addr: &str) -> Result<String, String> {
    let metrics: MetricsResponse =
        serde_json::from_str(&get(addr, "/v1/metrics")?).map_err(|e| format!("metrics: {e}"))?;
    let events = get(addr, "/v1/events")?;

    let mut out = String::new();
    let runtime = &metrics.runtime;
    let server = &metrics.server;
    out.push_str(&format!(
        "pim_top — {addr}   phase: {:?}\n\n",
        metrics.phase
    ));
    out.push_str(&format!(
        "traffic   submitted {}  admitted {}  429 tenant/global {}/{}  503 drain {}  shed {}  cancelled {}\n",
        server.submitted,
        server.admitted,
        server.rejected_tenant,
        server.rejected_global,
        server.rejected_drain,
        server.shed_connections,
        server.cancelled,
    ));
    out.push_str(&format!(
        "runtime   jobs {} ok / {} failed   latency p50 {} us  p95 {} us  p99 {} us\n",
        runtime.jobs_completed,
        runtime.jobs_failed,
        runtime.latency_p50_ns / 1_000,
        runtime.latency_p95_ns / 1_000,
        runtime.latency_p99_ns / 1_000,
    ));
    out.push_str(&format!(
        "cache     {} hits / {} misses   {} near hits ({} rows repriced)   {} schedules resident\n",
        runtime.cache_hits,
        runtime.cache_misses,
        runtime.cache_near_hits,
        runtime.cache_repriced_rows,
        runtime.cache_entries,
    ));
    out.push_str(&format!(
        "ledger    {} tenants   {} settled / {} cancelled   {} microcredits billed\n\n",
        metrics.ledger.tenants.len(),
        metrics.ledger.global.jobs_settled,
        metrics.ledger.global.jobs_cancelled,
        metrics.ledger.global.billed_microcredits,
    ));

    out.push_str(&format!(
        "slo       objective {:.3} within {} ms\n",
        metrics.slo.objective,
        metrics.slo.latency_objective_ns / 1_000_000,
    ));
    if metrics.slo.tenants.is_empty() {
        out.push_str("          (no finished jobs yet)\n");
    } else {
        out.push_str("          tenant            good/total   attainment   budget burn\n");
        for tenant in &metrics.slo.tenants {
            out.push_str(&format!(
                "          {:<16} {:>6}/{:<6}   {:>9.4}   {:>10.2}{}\n",
                tenant.tenant,
                tenant.good,
                tenant.total,
                tenant.attainment,
                tenant.error_budget_burn,
                if tenant.error_budget_burn >= 1.0 {
                    "  !! MISSING OBJECTIVE"
                } else {
                    ""
                },
            ));
        }
    }

    let index: FlightIndex = serde_json::from_str(&get(addr, "/v1/debug/requests")?)
        .map_err(|e| format!("debug index: {e}"))?;
    let flight = &metrics.flight;
    out.push_str(&format!(
        "\nflight    {} observed   {} retained / {} summarized   {} evicted   ring {} records / {} KiB\n",
        flight.observed,
        flight.retained,
        flight.summarized,
        flight.evicted,
        flight.ring_records,
        flight.ring_bytes / 1024,
    ));
    if index.retained.is_empty() {
        out.push_str("          (nothing retained — no breaches, errors, or outliers)\n");
    } else {
        for entry in index.retained.iter().take(5) {
            out.push_str(&format!(
                "          {:<14} {:<10} {:>10.3} ms   {}\n",
                entry.request_id,
                entry.reason,
                entry.latency_ns as f64 / 1e6,
                entry.name,
            ));
        }
    }

    let health: DeviceHealthResponse = serde_json::from_str(&get(addr, "/v1/device/health")?)
        .map_err(|e| format!("device health: {e}"))?;
    out.push_str(&format!(
        "\nhealth    {} subarrays   {} shifts ({} distance)   {} faults sampled / {} injected\n",
        health.health.subarrays.len(),
        health.health.totals.shifts,
        health.health.totals.shift_distance,
        health.health.totals.faults_sampled,
        health.health.totals.faults_injected(),
    ));
    if !health.health.subarrays.is_empty() {
        out.push_str(&format!(
            "          wear      {}\n",
            heatmap_row(&health.health)
        ));
    }

    if !metrics.cluster.is_empty() {
        let peak = metrics
            .cluster
            .iter()
            .map(|d| d.busy_ns)
            .fold(1.0_f64, f64::max);
        out.push_str(&format!(
            "\ncluster   {} devices observed\n",
            metrics.cluster.len()
        ));
        out.push_str("          dev     busy ms   energy uJ     link ms   link uJ   util\n");
        for device in &metrics.cluster {
            // A 10-cell bar of this device's busy time against the
            // busiest device — imbalance is visible at a glance.
            let cells = ((device.busy_ns / peak) * 10.0).round() as usize;
            out.push_str(&format!(
                "          {:<5} {:>9.3} {:>11.3} {:>11.3} {:>9.3}   {}\n",
                device.device,
                device.busy_ns / 1e6,
                device.energy_pj / 1e6,
                device.link_busy_ns / 1e6,
                device.link_energy_pj / 1e6,
                "#".repeat(cells.clamp(1, 10)),
            ));
        }
    }

    out.push_str("\nrecent events (oldest first)\n");
    let tail: Vec<&str> = {
        let lines: Vec<&str> = events.lines().filter(|l| !l.is_empty()).collect();
        lines[lines.len().saturating_sub(8)..].to_vec()
    };
    if tail.is_empty() {
        out.push_str("          (none)\n");
    }
    for line in tail {
        match serde_json::from_str::<pim_obs::EventRecord>(line) {
            Ok(event) => out.push_str(&format!(
                "  [{:>10.3} ms] {:<5} {:<10} {:<14} {}\n",
                event.host_ns as f64 / 1e6,
                event.level.name(),
                event.scope,
                event.request_id,
                event.message,
            )),
            Err(error) => return Err(format!("event line: {error}")),
        }
    }
    Ok(out)
}

/// `--demo`: boots an in-process server, drives a few jobs through it,
/// renders one frame, and exits — the CI path that proves the dashboard
/// renders against a real service without needing a long-lived process.
fn demo() -> ! {
    use pim_baselines::PlatformKind;
    use pim_runtime::Job;
    use pim_serve::api::{StatusResponse, SubmitRequest, SubmitResponse};
    use pim_serve::{call, ServeConfig, Server};
    use pim_workloads::WorkloadSpec;

    // A 1 ns objective so the demo's jobs all breach: the flight panel
    // renders real retained records, not the empty placeholder.
    let config = ServeConfig {
        slo: pim_obs::SloConfig {
            latency_objective_ns: 1,
            ..pim_obs::SloConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = server.addr();
    // Three single-device jobs plus one 4-device cluster job, so the
    // per-device utilization panel renders with real rows.
    for (tenant, m, cluster) in [
        ("gold", 12, None),
        ("silver", 16, None),
        ("gold", 20, None),
        (
            "gold",
            96,
            Some(pim_runtime::ClusterSpec::data(4).with_batch(4)),
        ),
    ] {
        let mut job = Job::new(WorkloadSpec::MatMul { m, k: m, n: m }, PlatformKind::StPim);
        if let Some(spec) = cluster {
            job = job.with_cluster(spec);
        }
        let body = serde_json::to_string(&SubmitRequest {
            tenant: tenant.to_string(),
            job,
        })
        .expect("request serializes");
        let (status, _, body) = call(&addr, "POST", "/v1/jobs", Some(&body))
            .unwrap_or_else(|e| fail(&format!("submit: {e}")));
        if status != 202 {
            fail(&format!("submit status {status}: {body}"));
        }
        let submitted: SubmitResponse =
            serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("submit body: {e}")));
        for _ in 0..2_000 {
            let (status, _, body) = call(&addr, "GET", &format!("/v1/jobs/{}", submitted.id), None)
                .unwrap_or_else(|e| fail(&format!("poll: {e}")));
            if status != 200 {
                fail(&format!("poll status {status}"));
            }
            let parsed: StatusResponse =
                serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("poll body: {e}")));
            if parsed.state.is_terminal() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    match frame(&addr.to_string()) {
        Ok(rendered) => {
            print!("{rendered}");
            server.shutdown();
            std::process::exit(0);
        }
        Err(error) => fail(&error),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--demo") {
        demo();
    }
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        fail("usage: pim_top <addr> [interval-ms] [--once] | pim_top --demo");
    };
    let once = args.iter().any(|a| a == "--once");
    let interval_ms: u64 = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);

    loop {
        match frame(addr) {
            Ok(rendered) => {
                if once {
                    print!("{rendered}");
                    return;
                }
                // Clear + home, then the frame — a flicker-free refresh
                // would need a TTY library; this stays std-only.
                print!("\x1b[2J\x1b[H{rendered}");
            }
            Err(error) => {
                if once {
                    fail(&error);
                }
                println!("\x1b[2J\x1b[Hpim_top — {addr}: {error}");
            }
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
