//! End-to-end smoke test for the service, run by `make serve-smoke` in CI:
//! boots an in-process server on an ephemeral port, submits a job over
//! real HTTP, polls it to completion, checks the metered cost is nonzero,
//! exercises one 429 under a deliberately tiny admission cap, drains
//! gracefully, and verifies the metering conservation invariant.
//!
//! Exits 0 on success, 1 with a diagnostic on any failure.

use pim_baselines::PlatformKind;
use pim_runtime::Job;
use pim_serve::api::{JobState, ResultResponse, StatusResponse, SubmitRequest, SubmitResponse};
use pim_serve::{call, AdmissionConfig, Phase, ServeConfig, Server};
use pim_workloads::WorkloadSpec;
use std::net::SocketAddr;
use std::time::Duration;

fn fail(what: &str) -> ! {
    eprintln!("serve-smoke FAILED: {what}");
    std::process::exit(1);
}

fn submit_body(tenant: &str, m: usize) -> String {
    let request = SubmitRequest {
        tenant: tenant.to_string(),
        job: Job::new(WorkloadSpec::MatMul { m, k: m, n: m }, PlatformKind::StPim),
    };
    serde_json::to_string(&request).expect("request serializes")
}

fn poll_terminal(addr: &SocketAddr, id: u64) -> StatusResponse {
    for _ in 0..2_000 {
        let (status, _, body) = call(addr, "GET", &format!("/v1/jobs/{id}"), None)
            .unwrap_or_else(|e| fail(&format!("poll: {e}")));
        if status != 200 {
            fail(&format!("poll status {status}: {body}"));
        }
        let parsed: StatusResponse =
            serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("poll body: {e}")));
        if parsed.state.is_terminal() {
            return parsed;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    fail("job never reached a terminal state");
}

fn main() {
    // Tiny caps so the overload path is easy to trip: one queued job per
    // tenant, one in flight, and a single dispatcher.
    let config = ServeConfig {
        dispatch_workers: 1,
        admission: AdmissionConfig {
            max_queued_per_tenant: 1,
            max_inflight_per_tenant: 1,
            max_queued_global: 8,
        },
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = server.addr();
    println!("serve-smoke: server on {addr}");

    // 1. Health check.
    let (status, _, body) =
        call(&addr, "GET", "/v1/healthz", None).unwrap_or_else(|e| fail(&format!("healthz: {e}")));
    if status != 200 {
        fail(&format!("healthz status {status}: {body}"));
    }

    // 2. Submit a job and poll it to completion.
    let (status, _, body) = call(&addr, "POST", "/v1/jobs", Some(&submit_body("smoke", 16)))
        .unwrap_or_else(|e| fail(&format!("submit: {e}")));
    if status != 202 {
        fail(&format!("submit status {status}: {body}"));
    }
    let submitted: SubmitResponse =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("submit body: {e}")));
    println!(
        "serve-smoke: job {} admitted, tier {} (estimate {} microcredits)",
        submitted.id, submitted.meter.tier.name, submitted.meter.estimated_microcredits
    );
    let terminal = poll_terminal(&addr, submitted.id);
    if terminal.state != JobState::Completed {
        fail(&format!("job ended {:?}, wanted Completed", terminal.state));
    }

    // 3. The settled meter record must carry a nonzero bill.
    let (status, _, body) = call(
        &addr,
        "GET",
        &format!("/v1/jobs/{}/result", submitted.id),
        None,
    )
    .unwrap_or_else(|e| fail(&format!("result: {e}")));
    if status != 200 {
        fail(&format!("result status {status}: {body}"));
    }
    let result: ResultResponse =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("result body: {e}")));
    let meter = result
        .meter
        .unwrap_or_else(|| fail("result has no meter record"));
    if meter.billed_microcredits == 0 {
        fail(&format!("metered cost is zero: {body}"));
    }
    println!(
        "serve-smoke: job {} completed with nonzero metered cost",
        submitted.id
    );

    // 4. Exercise one 429: a concurrent burst against the 1-queued +
    // 1-in-flight cap. Twelve clients fire at once (distinct matrix shapes,
    // so the schedule cache cannot shortcut the work); at most two can be
    // in the system, so the burst must shed — and every refusal must be an
    // explicit 429 with a Retry-After hint, never a silent drop.
    let burst: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                call(
                    &addr,
                    "POST",
                    "/v1/jobs",
                    Some(&submit_body("smoke", 320 + 16 * i)),
                )
            })
        })
        .collect();
    let mut admitted = 0u32;
    let mut rejected = 0u32;
    for client in burst {
        let (status, headers, body) = client
            .join()
            .expect("burst client")
            .unwrap_or_else(|e| fail(&format!("burst submit: {e}")));
        match status {
            202 => admitted += 1,
            429 => {
                if !headers.contains_key("retry-after") {
                    fail(&format!("429 without Retry-After: {body}"));
                }
                if !body.contains("retry_after_ms") {
                    fail(&format!("429 body without hint: {body}"));
                }
                rejected += 1;
            }
            other => fail(&format!("burst submit status {other}: {body}")),
        }
    }
    if rejected == 0 {
        fail("concurrent burst of 12 never tripped the admission cap");
    }
    println!(
        "serve-smoke: burst of 12 -> {admitted} admitted, {rejected} explicit 429s with Retry-After"
    );

    // 5. Observability: the Prometheus exposition must parse strictly
    // (HELP/TYPE pairing, well-formed labels, no duplicate series) and
    // carry the serving families; the event log must serve parseable
    // JSON lines with events correlated to the submitted job's request
    // id.
    let (status, headers, body) = call(&addr, "GET", "/metrics.prom", None)
        .unwrap_or_else(|e| fail(&format!("metrics.prom: {e}")));
    if status != 200 {
        fail(&format!("metrics.prom status {status}: {body}"));
    }
    if !headers
        .get("content-type")
        .is_some_and(|t| t.starts_with("text/plain; version=0.0.4"))
    {
        fail(&format!("metrics.prom content type: {headers:?}"));
    }
    let stats = pim_obs::prom::validate_exposition(&body)
        .unwrap_or_else(|e| fail(&format!("exposition invalid: {e}\n{body}")));
    for family in [
        "pim_http_requests_total",
        "pim_http_request_latency_ns",
        "pim_serve_admission_total",
        "pim_serve_queue_depth",
        "pim_trace_dropped_records",
        "pim_slo_attainment_millionths",
    ] {
        if !body.contains(family) {
            fail(&format!("exposition missing {family}"));
        }
    }
    println!(
        "serve-smoke: /metrics.prom valid ({} families, {} series, {} samples)",
        stats.families, stats.series, stats.samples
    );
    let (status, _, body) =
        call(&addr, "GET", "/v1/events", None).unwrap_or_else(|e| fail(&format!("events: {e}")));
    if status != 200 {
        fail(&format!("events status {status}: {body}"));
    }
    let events: Vec<pim_obs::EventRecord> = body
        .lines()
        .map(|line| {
            serde_json::from_str(line).unwrap_or_else(|e| fail(&format!("event line: {e}: {line}")))
        })
        .collect();
    if !events
        .iter()
        .any(|e| e.request_id == submitted.request_id && e.scope == "admission")
    {
        fail(&format!(
            "no admission event for {}: {body}",
            submitted.request_id
        ));
    }
    if !events
        .iter()
        .any(|e| e.request_id == submitted.request_id && e.scope == "dispatch")
    {
        fail(&format!(
            "no dispatch event for {}: {body}",
            submitted.request_id
        ));
    }
    println!(
        "serve-smoke: /v1/events serves {} parseable records, request {} linked end to end",
        events.len(),
        submitted.request_id
    );

    // 6. Graceful drain over the API; admitted burst jobs must all finish.
    let (status, _, body) = call(&addr, "POST", "/v1/admin/drain", None)
        .unwrap_or_else(|e| fail(&format!("drain: {e}")));
    if status != 200 {
        fail(&format!("drain status {status}: {body}"));
    }
    if !body.contains("\"Stopped\"") {
        fail(&format!("drain did not stop the service: {body}"));
    }

    // 7. Conservation: per-tenant metered totals == global == runtime.
    if let Err(violation) = server.check_conservation() {
        fail(&format!("conservation violated: {violation}"));
    }
    println!("serve-smoke: metering conservation holds after drain");

    let drained = server.shutdown();
    if drained.phase != Phase::Stopped {
        fail("shutdown did not reach Stopped");
    }
    println!(
        "serve-smoke: OK ({} jobs completed, {} microcredits billed)",
        drained.runtime.jobs_completed, drained.ledger.global.billed_microcredits
    );
}
