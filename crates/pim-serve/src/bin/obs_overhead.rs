//! A/B overhead gate for the always-on telemetry, run by `make obs-smoke`
//! in CI: proves the metrics registry is cheap enough to leave on.
//!
//! Two measurements, each repeated and taking the minimum to damp
//! scheduler noise:
//!
//! * **A** — a deterministic xorshift work loop with no telemetry.
//! * **B** — the identical loop where every iteration also bumps a
//!   labeled counter and records into a power-of-two histogram, i.e. the
//!   exact hot-path ops `pim-serve` performs per request.
//!
//! The gate asserts the *marginal* cost per instrumented iteration stays
//! under a generous 2 µs bound. Real job service times are milliseconds
//! and a request touches ~10 registry ops, so passing here means the
//! registry contributes well under 0.1% of end-to-end latency — "no
//! measurable cost" at the granularity any client can observe.
//!
//! Exits 0 on success, 1 with a diagnostic on failure.

use pim_obs::Registry;
use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 400_000;
const REPEATS: usize = 5;
/// Marginal telemetry budget per iteration (one counter bump + one
/// histogram observe + label lookup). Generous on purpose: the gate is
/// here to catch pathological regressions (a lock on the hot path, an
/// allocation per op), not to benchmark the CPU.
const MAX_MARGINAL_NS_PER_OP: f64 = 2_000.0;

/// Deterministic per-iteration work so A and B loops are byte-identical
/// apart from the telemetry calls.
#[inline(always)]
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn time_min<F: FnMut() -> u64>(mut run: F) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut sink = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        sink = run();
        let elapsed = start.elapsed().as_secs_f64() * 1e9;
        if elapsed < best {
            best = elapsed;
        }
    }
    (best, sink)
}

fn main() {
    let registry = Registry::new();
    let counter = registry.counter(
        "obs_overhead_iterations_total",
        "A/B gate iteration counter",
        &[("arm", "b")],
    );
    let histogram = registry.histogram(
        "obs_overhead_value_ns",
        "A/B gate value histogram",
        &[("arm", "b")],
    );

    // Warm both paths so first-touch costs (lazy family creation, page
    // faults) land outside the timed region.
    let mut warm = 0x9e37_79b9_u64;
    for _ in 0..10_000 {
        warm = xorshift(warm);
        counter.inc();
        histogram.observe(warm & 0xffff);
    }
    black_box(warm);

    let (baseline_ns, sink_a) = time_min(|| {
        let mut x = 0x243f_6a88_u64;
        for _ in 0..ITERS {
            x = xorshift(x);
            black_box(x);
        }
        x
    });
    let (instrumented_ns, sink_b) = time_min(|| {
        let mut x = 0x243f_6a88_u64;
        for _ in 0..ITERS {
            x = xorshift(x);
            counter.inc();
            histogram.observe(x & 0xffff);
            black_box(x);
        }
        x
    });
    if sink_a != sink_b {
        eprintln!("obs-overhead FAILED: arms diverged ({sink_a} vs {sink_b})");
        std::process::exit(1);
    }

    let marginal = (instrumented_ns - baseline_ns).max(0.0) / ITERS as f64;
    let per_iter_a = baseline_ns / ITERS as f64;
    let per_iter_b = instrumented_ns / ITERS as f64;
    // Fraction of a (fast) 1 ms job that 10 such ops would consume.
    let job_fraction = 10.0 * marginal / 1e6;
    println!(
        "obs-overhead: A {per_iter_a:.1} ns/iter, B {per_iter_b:.1} ns/iter, \
         marginal {marginal:.1} ns/op ({:.5}% of a 1 ms job at 10 ops/request)",
        job_fraction * 100.0
    );

    if marginal > MAX_MARGINAL_NS_PER_OP {
        eprintln!(
            "obs-overhead FAILED: marginal telemetry cost {marginal:.1} ns/op \
             exceeds {MAX_MARGINAL_NS_PER_OP:.0} ns/op"
        );
        std::process::exit(1);
    }

    // The registry must have seen exactly the instrumented iterations:
    // warmup + REPEATS timed runs. An off count would mean the "no cost"
    // number was measured against ops that silently vanished.
    let expected = 10_000 + REPEATS as u64 * ITERS;
    if counter.get() != expected || histogram.count() != expected {
        eprintln!(
            "obs-overhead FAILED: lost updates (counter {}, histogram {}, expected {expected})",
            counter.get(),
            histogram.count()
        );
        std::process::exit(1);
    }
    println!("obs-overhead: OK (registry retained all {expected} updates)");
}
