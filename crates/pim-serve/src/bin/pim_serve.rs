//! The `pim_serve` binary: boot the service on a real port.
//!
//! ```text
//! pim_serve [--addr HOST:PORT] [--http-workers N] [--dispatch-workers N]
//!           [--max-queued-per-tenant N] [--max-inflight-per-tenant N]
//!           [--max-queued-global N] [--weight TENANT=W]...
//! ```
//!
//! Runs until killed or drained via `POST /v1/admin/drain` (after a drain
//! the process stays up serving queries on the frozen state; stop it with
//! SIGTERM/SIGINT).

use pim_serve::{ServeConfig, Server};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pim_serve [--addr HOST:PORT] [--http-workers N] [--dispatch-workers N]\n\
         \u{20}                [--max-queued-per-tenant N] [--max-inflight-per-tenant N]\n\
         \u{20}                [--max-queued-global N] [--weight TENANT=W]..."
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--http-workers" => {
                config.http_workers = value("--http-workers").parse().unwrap_or_else(|_| usage())
            }
            "--dispatch-workers" => {
                config.dispatch_workers = value("--dispatch-workers")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-queued-per-tenant" => {
                config.admission.max_queued_per_tenant = value("--max-queued-per-tenant")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-inflight-per-tenant" => {
                config.admission.max_inflight_per_tenant = value("--max-inflight-per-tenant")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-queued-global" => {
                config.admission.max_queued_global = value("--max-queued-global")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--weight" => {
                let spec = value("--weight");
                let Some((tenant, weight)) = spec.split_once('=') else {
                    eprintln!("--weight wants TENANT=W, got {spec:?}");
                    usage()
                };
                let weight: u64 = weight.parse().unwrap_or_else(|_| usage());
                config.tenant_weights.push((tenant.to_string(), weight));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("pim_serve: bind failed: {error}");
            std::process::exit(1);
        }
    };
    let plan = server.plan();
    println!("pim_serve listening on http://{}", server.addr());
    println!(
        "thread plan: {} machine threads = {} http + {} dispatchers x {} intra-run",
        plan.machine, plan.http_workers, plan.dispatch_workers, plan.intra_per_job
    );
    println!(
        "submit:  curl -s http://{}/v1/jobs -d @job.json",
        server.addr()
    );
    println!(
        "drain:   curl -s -X POST http://{}/v1/admin/drain",
        server.addr()
    );

    // No signal handling in std: serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
