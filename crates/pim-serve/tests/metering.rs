//! Metering properties (ISSUE satellite): the tier estimate is monotone in
//! workload size, and the ledger's conservation invariant holds — exactly,
//! not approximately — for arbitrary job mixes, completion orders,
//! cancellations, and drain.

use pim_baselines::PlatformKind;
use pim_runtime::{Job, Runtime, RuntimeConfig};
use pim_serve::meter::{quantize_ns_to_ps, quantize_pj_to_fj, tier_for, Ledger, MeterConfig};
use pim_serve::{api::SubmitRequest, call, AdmissionConfig, ServeConfig, Server};
use pim_workloads::{Kernel, WorkloadSpec};
use proptest::prelude::*;

/// The up-front price of a spec, in microcredits at the default base rate.
fn estimate(spec: &WorkloadSpec) -> u64 {
    tier_for(spec).multiplier * MeterConfig::default().base_rate_microcredits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Monotonicity: a workload with more flops is never estimated cheaper.
    /// (Within one tier the estimate is flat; across tiers it increases —
    /// both satisfy monotone-nondecreasing.)
    #[test]
    fn tier_estimate_is_monotone_in_workload_size(
        m1 in 1usize..2048, k1 in 1usize..2048, n1 in 1usize..2048,
        m2 in 1usize..2048, k2 in 1usize..2048, n2 in 1usize..2048,
    ) {
        let a = WorkloadSpec::MatMul { m: m1, k: k1, n: n1 };
        let b = WorkloadSpec::MatMul { m: m2, k: k2, n: n2 };
        let (small, large) = if a.profile().flops <= b.profile().flops {
            (a, b)
        } else {
            (b, a)
        };
        prop_assert!(
            estimate(&small) <= estimate(&large),
            "flops {} -> {} microcredits, but flops {} -> {}",
            small.profile().flops, estimate(&small),
            large.profile().flops, estimate(&large),
        );
    }

    /// Scaling any one dimension up never lowers the estimate.
    #[test]
    fn tier_estimate_is_monotone_under_scaling(
        m in 1usize..512, k in 1usize..512, n in 1usize..512, factor in 1usize..8,
    ) {
        let base = WorkloadSpec::MatMul { m, k, n };
        let scaled = WorkloadSpec::MatMul { m: m * factor, k, n };
        prop_assert!(estimate(&base) <= estimate(&scaled));
    }

    /// Conservation at the ledger level: an arbitrary mix of jobs across
    /// tenants — some completed, some cancelled before dispatch — always
    /// reconciles exactly against the runtime's own counters, regardless
    /// of completion order. `check_conservation` compares `OpCounters` as
    /// `u64`s and time/energy as per-job-quantized integer sums, so any
    /// drift whatsoever fails.
    #[test]
    fn ledger_reconciles_exactly_against_the_runtime(
        picks in proptest::collection::vec((0usize..3, 0usize..5, 1u32..4), 1..7),
        cancel_mask in 0u64..64,
    ) {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        });
        let ledger = Ledger::new(MeterConfig::default());
        let tenants = ["alice", "bob", "carol"];
        let kernels = [Kernel::Gemm, Kernel::Atax, Kernel::Bicg, Kernel::Mvt, Kernel::Gesummv];

        for (job_id, (tenant_idx, kernel_idx, scale_steps)) in picks.iter().enumerate() {
            let job_id = job_id as u64;
            let tenant = tenants[*tenant_idx];
            let spec = WorkloadSpec::polybench(
                kernels[*kernel_idx],
                0.01 * f64::from(*scale_steps),
            );
            ledger.admit(job_id, tenant, "", &spec);
            if cancel_mask & (1 << job_id) != 0 {
                // Cancelled before dispatch: never reaches the runtime.
                prop_assert!(ledger.cancel(job_id));
                continue;
            }
            let job = Job::new(spec, PlatformKind::StPim).for_tenant(tenant);
            let batch = runtime.run_batch(&[job]);
            let outcome = &batch.outcomes[0];
            let record = ledger.settle(job_id, outcome.report.as_ref().ok());
            // The record's raw floats are the report's, bit-for-bit.
            if let Ok(report) = &outcome.report {
                prop_assert_eq!(
                    record.actual_sim_ns.to_bits(),
                    report.total_ns().to_bits()
                );
                prop_assert_eq!(
                    record.actual_sim_pj.to_bits(),
                    report.total_pj().to_bits()
                );
            }
        }

        let snapshot = runtime.shutdown();
        let conservation = ledger.check_conservation(&snapshot);
        prop_assert!(conservation.is_ok(), "conservation violated: {:?}", conservation);

        // The per-job raw floats in the ledger match the runtime's rows
        // bit-for-bit (both sides recorded the identical f64).
        let summary = ledger.summary();
        let runtime_time_ps: u64 = snapshot
            .jobs
            .iter()
            .filter(|row| row.ok)
            .map(|row| quantize_ns_to_ps(row.sim_time_ns))
            .sum();
        let runtime_energy_fj: u64 = snapshot
            .jobs
            .iter()
            .filter(|row| row.ok)
            .map(|row| quantize_pj_to_fj(row.sim_energy_pj))
            .sum();
        prop_assert_eq!(summary.global.consumed.time_ps, runtime_time_ps);
        prop_assert_eq!(summary.global.consumed.energy_fj, runtime_energy_fj);
        // And the tenant partition sums to the global exactly.
        let tenant_billed: u64 = summary.tenants.iter().map(|t| t.billed_microcredits).sum();
        prop_assert_eq!(tenant_billed, summary.global.billed_microcredits);
    }
}

/// Conservation through the real service: submit over HTTP, cancel a
/// queued job, drain, and reconcile. Covers the full admission → queue →
/// dispatch → settle → drain path rather than driving the ledger directly.
#[test]
fn conservation_holds_through_the_server_with_cancellation_and_drain() {
    let server = Server::start(ServeConfig {
        dispatch_workers: 2,
        admission: AdmissionConfig {
            max_queued_per_tenant: 32,
            max_inflight_per_tenant: 2,
            max_queued_global: 64,
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut ids = Vec::new();
    for (tenant, m) in [
        ("alice", 16),
        ("bob", 24),
        ("alice", 32),
        ("carol", 40),
        ("bob", 48),
        ("alice", 56),
    ] {
        let request = SubmitRequest {
            tenant: tenant.to_string(),
            job: Job::new(WorkloadSpec::MatMul { m, k: m, n: m }, PlatformKind::StPim),
        };
        let (status, _, body) = call(
            &addr,
            "POST",
            "/v1/jobs",
            Some(&serde_json::to_string(&request).unwrap()),
        )
        .unwrap();
        assert_eq!(status, 202, "{body}");
        let submitted: pim_serve::SubmitResponse = serde_json::from_str(&body).unwrap();
        ids.push(submitted.id);
    }
    // Best-effort cancellation: whichever of these are still queued get
    // refunded; ones already running/completed return 409. Both paths must
    // preserve conservation.
    for id in &ids[3..] {
        let (status, _, _) = call(&addr, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
        assert!(
            status == 200 || status == 409,
            "unexpected cancel status {status}"
        );
    }

    let (status, _, body) = call(&addr, "POST", "/v1/admin/drain", None).unwrap();
    assert_eq!(status, 200, "{body}");
    server
        .check_conservation()
        .expect("conservation after drain");
    let drained = server.shutdown();
    let settled = drained.ledger.global.jobs_settled;
    let cancelled = drained.ledger.global.jobs_cancelled;
    assert_eq!(
        settled + cancelled,
        ids.len() as u64,
        "every admitted job accounted"
    );
    assert_eq!(
        drained.runtime.jobs_completed, settled,
        "settled == completed"
    );
}
