//! The paper-fidelity regression gate.
//!
//! `fidelity.toml` (checked in at the repository root) freezes the key
//! numbers of every reproduced figure — each with the paper's value as an
//! anchor and the value this simulator produced when the baseline was
//! frozen — and the gate reruns the scaled experiment suite and fails when
//! any number drifts outside its tolerance. The simulator is analytic and
//! deterministic, so tolerances are tight: a failing gate means a model
//! change moved a result the paper pins down, and the failure names the
//! figure so the diff can be judged against `EXPERIMENTS.md`.
//!
//! The file is a small TOML subset parsed here by hand (no TOML crate in
//! the tree): one optional top-level `scale = <f64>`, then `[[check]]`
//! tables with `id`, `figure`, `metric`, `expect`, `tol_pct` and optional
//! `paper` / `abs` keys. Strings are double-quoted; `#` starts a comment.

use crate::figures::{self, Scale};
use pim_device::engine::EngineParams;

/// One frozen number: where to find it and how much it may move.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityCheck {
    /// Stable identifier, named in failure output.
    pub id: String,
    /// Figure selector: `fig17`, `fig18`, `fig21`, `fig22`, `fig23`,
    /// `table5`, `area`, `fabrication` or `cluster`.
    pub figure: String,
    /// Metric selector within the figure (see [`FigureCache::value`]).
    pub metric: String,
    /// The paper's published value (informational anchor; not gated).
    pub paper: Option<f64>,
    /// The frozen baseline value at the spec's scale.
    pub expect: f64,
    /// Allowed relative drift from `expect`, percent.
    pub tol_pct: f64,
    /// Optional absolute slack (useful near zero).
    pub abs: Option<f64>,
}

impl FidelityCheck {
    /// The absolute drift this check tolerates.
    pub fn allowed(&self) -> f64 {
        let rel = self.expect.abs() * self.tol_pct / 100.0;
        rel.max(self.abs.unwrap_or(0.0))
    }
}

/// A parsed `fidelity.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelitySpec {
    /// Problem-size scale the expects were frozen at.
    pub scale: f64,
    /// The checks, in file order.
    pub checks: Vec<FidelityCheck>,
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[derive(Debug, Default)]
struct PartialCheck {
    id: Option<String>,
    figure: Option<String>,
    metric: Option<String>,
    paper: Option<f64>,
    expect: Option<f64>,
    tol_pct: Option<f64>,
    abs: Option<f64>,
}

impl PartialCheck {
    fn finish(self, line: usize) -> Result<FidelityCheck, String> {
        let need = |f: Option<String>, name: &str| {
            f.ok_or_else(|| format!("check ending at line {line}: missing `{name}`"))
        };
        Ok(FidelityCheck {
            id: need(self.id, "id")?,
            figure: need(self.figure, "figure")?,
            metric: need(self.metric, "metric")?,
            paper: self.paper,
            expect: self
                .expect
                .ok_or_else(|| format!("check ending at line {line}: missing `expect`"))?,
            tol_pct: self
                .tol_pct
                .ok_or_else(|| format!("check ending at line {line}: missing `tol_pct`"))?,
            abs: self.abs,
        })
    }
}

impl FidelitySpec {
    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside the
    /// subset, malformed values, or checks missing required keys.
    pub fn parse(text: &str) -> Result<FidelitySpec, String> {
        let mut scale = None;
        let mut checks = Vec::new();
        let mut current: Option<PartialCheck> = None;
        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[check]]" {
                if let Some(c) = current.take() {
                    checks.push(c.finish(n)?);
                }
                current = Some(PartialCheck::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {n}: only [[check]] tables are supported"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {n}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let string = |v: &str| -> Result<String, String> {
                v.strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {n}: `{key}` must be a quoted string"))
            };
            let number = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .map_err(|_| format!("line {n}: `{key}` must be a number"))
            };
            match (&mut current, key) {
                (None, "scale") => scale = Some(number(value)?),
                (None, _) => return Err(format!("line {n}: unknown top-level key `{key}`")),
                (Some(c), "id") => c.id = Some(string(value)?),
                (Some(c), "figure") => c.figure = Some(string(value)?),
                (Some(c), "metric") => c.metric = Some(string(value)?),
                (Some(c), "paper") => c.paper = Some(number(value)?),
                (Some(c), "expect") => c.expect = Some(number(value)?),
                (Some(c), "tol_pct") => c.tol_pct = Some(number(value)?),
                (Some(c), "abs") => c.abs = Some(number(value)?),
                (Some(_), _) => return Err(format!("line {n}: unknown check key `{key}`")),
            }
        }
        if let Some(c) = current.take() {
            checks.push(c.finish(text.lines().count())?);
        }
        if checks.is_empty() {
            return Err("no [[check]] tables found".into());
        }
        Ok(FidelitySpec {
            scale: scale.unwrap_or(0.1),
            checks,
        })
    }

    /// Renders the spec back to the TOML subset (stable formatting; used to
    /// freeze new expect values with `fidelity_gate --write-expect`).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str(
            "# Paper-fidelity regression baseline (see EXPERIMENTS.md).\n\
             # `expect` values are frozen from a release run at `scale`;\n\
             # `paper` values are the published numbers (informational).\n\
             # Regenerate expects: cargo run --release -p pim-bench --bin fidelity_gate -- --write-expect\n\n",
        );
        let _ = writeln!(out, "scale = {}", self.scale);
        for c in &self.checks {
            out.push_str("\n[[check]]\n");
            let _ = writeln!(out, "id = \"{}\"", c.id);
            let _ = writeln!(out, "figure = \"{}\"", c.figure);
            let _ = writeln!(out, "metric = \"{}\"", c.metric);
            if let Some(p) = c.paper {
                let _ = writeln!(out, "paper = {p}");
            }
            let _ = writeln!(out, "expect = {}", c.expect);
            let _ = writeln!(out, "tol_pct = {}", c.tol_pct);
            if let Some(a) = c.abs {
                let _ = writeln!(out, "abs = {a}");
            }
        }
        out
    }
}

/// Lazily regenerated figures at one scale (each figure runs at most once
/// no matter how many checks read from it).
#[derive(Debug)]
pub struct FigureCache {
    scale: Scale,
    engine: Option<EngineParams>,
    fig17: Option<figures::MetricTable>,
    fig18: Option<figures::MetricTable>,
    fig21: Option<Vec<(u32, f64)>>,
    fig22: Option<Vec<(&'static str, f64)>>,
    fig23: Option<Vec<figures::Fig23Row>>,
    table5: Option<Vec<figures::Table5Row>>,
    cluster: Option<Vec<(&'static str, f64)>>,
}

impl FigureCache {
    /// A cache for `scale`, optionally perturbing the StreamPIM engine.
    pub fn new(scale: f64, engine: Option<EngineParams>) -> Self {
        FigureCache {
            scale: Scale(scale),
            engine,
            fig17: None,
            fig18: None,
            fig21: None,
            fig22: None,
            fig23: None,
            table5: None,
            cluster: None,
        }
    }

    /// Resolves `figure`/`metric` to a value, regenerating the figure on
    /// first use. Metric grammar per figure:
    ///
    /// * `fig17` / `fig18` — `avg:<platform name>` (e.g. `avg:StPIM`);
    /// * `fig21` — the subarray count (`128`..`1024`), yielding the average
    ///   speedup over the 128-subarray baseline;
    /// * `fig22` — the optimization level (`base`/`distribute`/`unblock`);
    /// * `fig23` — `<model>:<platform>` (e.g. `MLP:StPIM`);
    /// * `table5` — `<segment>:time` or `<segment>:energy` (percent);
    /// * `area` — `bus_pct`, `proc_pct` or `transfer_pct`;
    /// * `fabrication` — the process node in nm, yielding pJ per gate;
    /// * `cluster` — `n1_time_ratio`, `n1_energy_ratio` or `n1_identical`
    ///   (single-device-equivalence metrics, frozen at exactly 1).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown figures/metrics or pricing failures.
    pub fn value(&mut self, figure: &str, metric: &str) -> Result<f64, String> {
        let engine = self.engine;
        match figure {
            "fig17" | "fig18" => {
                let slot = if figure == "fig17" {
                    &mut self.fig17
                } else {
                    &mut self.fig18
                };
                if slot.is_none() {
                    let table = if figure == "fig17" {
                        figures::fig17_with(self.scale, engine.as_ref())
                    } else {
                        figures::fig18_with(self.scale, engine.as_ref())
                    }
                    .map_err(|e| format!("{figure}: {e}"))?;
                    *slot = Some(table);
                }
                let table = slot.as_ref().expect("just filled");
                let name = metric
                    .strip_prefix("avg:")
                    .ok_or_else(|| format!("{figure}: metric must be `avg:<platform>`"))?;
                table
                    .platforms
                    .iter()
                    .position(|p| p == name)
                    .map(|i| table.averages[i])
                    .ok_or_else(|| format!("{figure}: unknown platform `{name}`"))
            }
            "fig21" => {
                if self.fig21.is_none() {
                    self.fig21 = Some(
                        figures::fig21_with(self.scale, engine.as_ref())
                            .map_err(|e| format!("fig21: {e}"))?,
                    );
                }
                let count: u32 = metric.parse().map_err(|_| {
                    format!("fig21: metric must be a subarray count, got `{metric}`")
                })?;
                self.fig21
                    .as_ref()
                    .expect("just filled")
                    .iter()
                    .find(|(c, _)| *c == count)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("fig21: no entry for {count} subarrays"))
            }
            "fig22" => {
                if self.fig22.is_none() {
                    self.fig22 = Some(
                        figures::fig22_with(self.scale, engine.as_ref())
                            .map_err(|e| format!("fig22: {e}"))?,
                    );
                }
                self.fig22
                    .as_ref()
                    .expect("just filled")
                    .iter()
                    .find(|(name, _)| *name == metric)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("fig22: unknown level `{metric}`"))
            }
            "fig23" => {
                if self.fig23.is_none() {
                    self.fig23 = Some(
                        figures::fig23_with(engine.as_ref()).map_err(|e| format!("fig23: {e}"))?,
                    );
                }
                let (model, platform) = metric
                    .split_once(':')
                    .ok_or_else(|| "fig23: metric must be `<model>:<platform>`".to_string())?;
                self.fig23
                    .as_ref()
                    .expect("just filled")
                    .iter()
                    .find(|r| r.model == model && r.platform == platform)
                    .map(|r| r.speedup)
                    .ok_or_else(|| format!("fig23: no row for `{metric}`"))
            }
            "table5" => {
                if self.table5.is_none() {
                    self.table5 = Some(
                        figures::table5_with(self.scale, engine.as_ref())
                            .map_err(|e| format!("table5: {e}"))?,
                    );
                }
                let (seg, which) = metric
                    .split_once(':')
                    .ok_or_else(|| "table5: metric must be `<segment>:time|energy`".to_string())?;
                let seg: u32 = seg
                    .parse()
                    .map_err(|_| format!("table5: bad segment `{seg}`"))?;
                let row = self
                    .table5
                    .as_ref()
                    .expect("just filled")
                    .iter()
                    .find(|r| r.segment == seg)
                    .ok_or_else(|| format!("table5: no row for segment {seg}"))?;
                match which {
                    "time" => Ok(row.time_overhead_pct),
                    "energy" => Ok(row.energy_delta_pct),
                    other => Err(format!("table5: unknown column `{other}`")),
                }
            }
            "area" => {
                let a = figures::area();
                match metric {
                    "bus_pct" => Ok(a.bus_fraction() * 100.0),
                    "proc_pct" => Ok(a.processor_fraction() * 100.0),
                    "transfer_pct" => Ok(a.transfer_fraction_of_banks() * 100.0),
                    other => Err(format!("area: unknown metric `{other}`")),
                }
            }
            "cluster" => {
                if self.cluster.is_none() {
                    self.cluster = Some(
                        figures::cluster_equivalence_with(engine.as_ref())
                            .map_err(|e| format!("cluster: {e}"))?,
                    );
                }
                self.cluster
                    .as_ref()
                    .expect("just filled")
                    .iter()
                    .find(|(name, _)| *name == metric)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("cluster: unknown metric `{metric}`"))
            }
            "fabrication" => {
                let nm: u32 = metric
                    .parse()
                    .map_err(|_| "fabrication: metric must be a node in nm".to_string())?;
                figures::fabrication()
                    .iter()
                    .find(|(n, _)| *n == nm)
                    .map(|(_, pj)| *pj)
                    .ok_or_else(|| format!("fabrication: no entry for {nm} nm"))
            }
            other => Err(format!("unknown figure `{other}`")),
        }
    }
}

/// One evaluated check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// The check that produced this result.
    pub check: FidelityCheck,
    /// The regenerated value.
    pub actual: f64,
    /// Whether `actual` is within tolerance of the frozen expect.
    pub pass: bool,
}

impl CheckResult {
    /// Signed relative drift from the frozen expect, percent.
    pub fn drift_pct(&self) -> f64 {
        if self.actual == self.check.expect {
            0.0
        } else if self.check.expect == 0.0 {
            f64::INFINITY * (self.actual - self.check.expect).signum()
        } else {
            (self.actual - self.check.expect) / self.check.expect.abs() * 100.0
        }
    }
}

/// The gate's verdict over a whole spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityOutcome {
    /// Per-check results, in spec order.
    pub results: Vec<CheckResult>,
}

impl FidelityOutcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.results.iter().filter(|r| !r.pass).collect()
    }

    /// A fixed-width report table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:<12} {:<16} {:>10} {:>12} {:>12} {:>9}  status",
            "check", "figure", "metric", "paper", "expect", "actual", "drift"
        );
        for r in &self.results {
            let paper = r
                .check
                .paper
                .map_or_else(|| "-".to_string(), |p| format!("{p:.4}"));
            let _ = writeln!(
                out,
                "{:<26} {:<12} {:<16} {:>10} {:>12.4} {:>12.4} {:>8.2}%  {}",
                r.check.id,
                r.check.figure,
                r.check.metric,
                paper,
                r.check.expect,
                r.actual,
                r.drift_pct(),
                if r.pass { "ok" } else { "FAIL" },
            );
        }
        out
    }
}

/// Reruns every check of `spec`, optionally under a perturbed StreamPIM
/// engine (that is how the gate's own failure path is exercised).
///
/// # Errors
///
/// Returns a message for unresolvable figures/metrics or pricing failures.
pub fn evaluate(
    spec: &FidelitySpec,
    engine: Option<EngineParams>,
) -> Result<FidelityOutcome, String> {
    let mut cache = FigureCache::new(spec.scale, engine);
    let mut results = Vec::with_capacity(spec.checks.len());
    for check in &spec.checks {
        let actual = cache.value(&check.figure, &check.metric)?;
        let pass = (actual - check.expect).abs() <= check.allowed();
        results.push(CheckResult {
            check: check.clone(),
            actual,
            pass,
        });
    }
    Ok(FidelityOutcome { results })
}

/// Applies one `field=value` override to StreamPIM engine parameters (the
/// gate's `--perturb` grammar); field names match [`EngineParams`].
///
/// # Errors
///
/// Returns a message for unknown fields or unparsable values.
pub fn perturb_engine(mut base: EngineParams, spec: &str) -> Result<EngineParams, String> {
    let (field, value) = spec
        .split_once('=')
        .ok_or_else(|| format!("perturbation `{spec}` must be field=value"))?;
    let float = || {
        value
            .parse::<f64>()
            .map_err(|_| format!("`{value}` is not a number"))
    };
    let int = || {
        value
            .parse::<u64>()
            .map_err(|_| format!("`{value}` is not an integer"))
    };
    match field {
        "dist_serialization" => base.dist_serialization = float()?,
        "electrical_beats_per_row" => base.electrical_beats_per_row = int()?,
        "mat_shifts_per_row" => base.mat_shifts_per_row = int()?,
        "operand_buses" => base.operand_buses = int()?,
        "controller_ns_per_vpc" => base.controller_ns_per_vpc = float()?,
        "bus_fill_exposure" => base.bus_fill_exposure = float()?,
        other => return Err(format!("unknown engine parameter `{other}`")),
    }
    base.validate()?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
# comment
scale = 0.25

[[check]]
id = "area-bus"            # trailing comment
figure = "area"
metric = "bus_pct"
paper = 1.8
expect = 1.49
tol_pct = 1.0

[[check]]
id = "fab-32nm"
figure = "fabrication"
metric = "32"
expect = 0.0008
tol_pct = 5.0
abs = 0.0001
"#;

    #[test]
    fn parses_the_subset() {
        let spec = FidelitySpec::parse(SPEC).unwrap();
        assert_eq!(spec.scale, 0.25);
        assert_eq!(spec.checks.len(), 2);
        assert_eq!(spec.checks[0].id, "area-bus");
        assert_eq!(spec.checks[0].paper, Some(1.8));
        assert_eq!(spec.checks[1].abs, Some(0.0001));
        assert!(spec.checks[1].allowed() >= 0.0001);
    }

    #[test]
    fn roundtrips_through_to_toml() {
        let spec = FidelitySpec::parse(SPEC).unwrap();
        let again = FidelitySpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(FidelitySpec::parse("scale = x").is_err());
        assert!(FidelitySpec::parse("[[check]]\nid = \"a\"").is_err());
        assert!(FidelitySpec::parse("junk line").is_err());
        assert!(FidelitySpec::parse("").is_err());
        assert!(FidelitySpec::parse("[table]\n").is_err());
    }

    #[test]
    fn closed_form_checks_evaluate_and_gate() {
        let spec = FidelitySpec::parse(SPEC).unwrap();
        let outcome = evaluate(&spec, None).unwrap();
        assert!(outcome.results[1].pass, "fabrication fit is exact");
        assert!(outcome.render().contains("area-bus"));
    }

    #[test]
    fn drift_outside_tolerance_fails_and_names_the_check() {
        let mut spec = FidelitySpec::parse(SPEC).unwrap();
        spec.checks[0].expect *= 2.0; // guaranteed > 1% off
        let outcome = evaluate(&spec, None).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.failures()[0].check.id, "area-bus");
    }

    #[test]
    fn cluster_equivalence_holds_with_zero_tolerance() {
        let spec = FidelitySpec::parse(
            "[[check]]\nid = \"c-time\"\nfigure = \"cluster\"\nmetric = \"n1_time_ratio\"\n\
             expect = 1\ntol_pct = 0\n\
             [[check]]\nid = \"c-ident\"\nfigure = \"cluster\"\nmetric = \"n1_identical\"\n\
             expect = 1\ntol_pct = 0\n",
        )
        .unwrap();
        let outcome = evaluate(&spec, None).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        // The equivalence is a code-path property, so it must also hold
        // under engine perturbation (both sides move together).
        let perturbed =
            perturb_engine(EngineParams::default(), "controller_ns_per_vpc=50").unwrap();
        let outcome = evaluate(&spec, Some(perturbed)).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
    }

    #[test]
    fn perturbation_grammar() {
        let base = EngineParams::default();
        let p = perturb_engine(base, "controller_ns_per_vpc=50").unwrap();
        assert_eq!(p.controller_ns_per_vpc, 50.0);
        assert!(perturb_engine(base, "nope=1").is_err());
        assert!(
            perturb_engine(base, "operand_buses=0").is_err(),
            "validated"
        );
        assert!(perturb_engine(base, "controller_ns_per_vpc").is_err());
    }
}
