//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§V).
//!
//! Each `figures::*` function returns structured rows (so integration tests
//! can assert on the reproduced trends) and the `experiments` binary renders
//! them as markdown tables. `EXPERIMENTS.md` records paper-vs-measured for
//! every experiment.

pub mod fidelity;
pub mod figures;
pub mod render;
pub mod trace;

pub use figures::*;
