//! The `trace` experiment: records one kernel's simulated execution as a
//! Perfetto trace and derives the utilization report from the spans.
//!
//! Two engines contribute to the same trace: the operational
//! [`EventEngine`] (one span per scheduled command on subarray /
//! transfer-lane / decoder tracks) and the analytic [`Engine`] (per-round
//! phase spans). The overlap comparison prices the *same* schedule with
//! optimizations off and on — the span-level view of Figure 22's
//! mechanism.

use crate::figures::Scale;
use pim_device::engine::Engine;
use pim_device::engine_event::EventEngine;
use pim_device::{OptLevel, StreamPim, StreamPimConfig};
use pim_trace::analyze::Analysis;
use pim_trace::{chrome, Collector};
use pim_workloads::polybench::Kernel;

/// Everything the `trace` experiment produces.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Chrome trace-event JSON (load at <https://ui.perfetto.dev>).
    pub json: String,
    /// Human-readable utilization report derived from the same spans.
    pub report: String,
    /// Analytic overlap fraction with optimizations off.
    pub overlap_base: f64,
    /// Analytic overlap fraction with `distribute` + `unblock`.
    pub overlap_unblock: f64,
    /// Number of spans in the trace.
    pub spans: usize,
}

/// Traces `kernel` at `scale` on the paper-default device.
///
/// # Errors
///
/// Propagates device-validation and lowering errors.
pub fn trace_kernel(kernel: Kernel, scale: Scale) -> Result<TraceRun, Box<dyn std::error::Error>> {
    let cfg = StreamPimConfig::paper_default();
    let device = StreamPim::new(cfg.clone())?;
    let schedule = kernel
        .scaled(scale.0)
        .build_task(None)
        .task
        .lower(&device)?;

    let sink = Collector::new();
    EventEngine::new(&cfg).run_traced(&schedule, &sink);
    Engine::new(&cfg).run_traced(&schedule, &sink);

    let overlap = |opt: OptLevel| {
        let c = Collector::new();
        Engine::new(&cfg.clone().with_opt(opt)).run_traced(&schedule, &c);
        Analysis::of(&c.spans()).overlap_fraction
    };

    let spans = sink.spans();
    Ok(TraceRun {
        json: chrome::to_chrome_json(&spans, &sink.events()),
        report: Analysis::of(&spans).to_string(),
        overlap_base: overlap(OptLevel::Base),
        overlap_unblock: overlap(OptLevel::Unblock),
        spans: spans.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_run_produces_valid_overlaps_and_json() {
        let run = trace_kernel(Kernel::Atax, Scale(0.02)).unwrap();
        assert!(run.spans > 0);
        assert!(run.json.contains("traceEvents"));
        assert!(run.report.contains("makespan"));
        // Serial layout: any residue is float ulps from the running clock.
        assert!(run.overlap_base < 1e-9);
        assert!(
            run.overlap_unblock > run.overlap_base,
            "unblock hides transfers: {} vs {}",
            run.overlap_unblock,
            run.overlap_base
        );
    }
}
