//! The paper-fidelity regression gate (CI entry point).
//!
//! ```text
//! fidelity_gate [--spec fidelity.toml] [--perturb FIELD=VALUE]... [--write-expect]
//! ```
//!
//! Reruns the scaled experiment suite against the frozen baselines in
//! `fidelity.toml` and exits non-zero naming every drifted check.
//! `--perturb` deliberately alters a StreamPIM engine parameter before the
//! rerun — the gate must then fail, which is how its failure path is
//! exercised in tests and how "would this model change move a paper
//! result?" is answered locally. `--write-expect` freezes the current
//! (unperturbed) values back into the spec file.

use pim_bench::fidelity::{evaluate, perturb_engine, FidelitySpec};
use pim_device::engine::EngineParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path = "fidelity.toml".to_string();
    let mut engine: Option<EngineParams> = None;
    let mut write_expect = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => match it.next() {
                Some(p) => spec_path = p,
                None => {
                    eprintln!("--spec needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--perturb" => {
                let Some(p) = it.next() else {
                    eprintln!("--perturb needs FIELD=VALUE");
                    return ExitCode::FAILURE;
                };
                let base = engine.unwrap_or_default();
                match perturb_engine(base, &p) {
                    Ok(e) => engine = Some(e),
                    Err(e) => {
                        eprintln!("bad perturbation: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--write-expect" => write_expect = true,
            "--help" | "-h" => {
                println!(
                    "usage: fidelity_gate [--spec fidelity.toml] [--perturb FIELD=VALUE]... \
                     [--write-expect]\n\
                     Reruns the scaled experiment suite against the frozen baselines and \
                     exits non-zero on drift. --perturb alters an engine parameter \
                     (fields of pim-device EngineParams) to prove the gate trips; \
                     --write-expect refreezes the current values."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if write_expect && engine.is_some() {
        eprintln!("refusing to freeze perturbed values (--write-expect with --perturb)");
        return ExitCode::FAILURE;
    }

    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {spec_path} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = match FidelitySpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "# Fidelity gate — {} checks at scale {}{}\n",
        spec.checks.len(),
        spec.scale,
        if engine.is_some() { " (perturbed)" } else { "" }
    );
    let outcome = match evaluate(&spec, engine) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gate evaluation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.render());

    if write_expect {
        for (check, result) in spec.checks.iter_mut().zip(&outcome.results) {
            check.expect = result.actual;
        }
        if let Err(e) = std::fs::write(&spec_path, spec.to_toml()) {
            eprintln!("writing {spec_path} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "\nfroze {} expect values into {spec_path}",
            spec.checks.len()
        );
        return ExitCode::SUCCESS;
    }

    if outcome.passed() {
        println!(
            "\nfidelity gate: all {} checks within tolerance",
            spec.checks.len()
        );
        ExitCode::SUCCESS
    } else {
        let failures = outcome.failures();
        eprintln!(
            "\nfidelity gate FAILED — {} drifted check(s):",
            failures.len()
        );
        for f in failures {
            eprintln!(
                "  {} ({} {}): expected {:.4} ±{:.4}, got {:.4} ({:+.2}%)",
                f.check.id,
                f.check.figure,
                f.check.metric,
                f.check.expect,
                f.check.allowed(),
                f.actual,
                f.drift_pct(),
            );
        }
        ExitCode::FAILURE
    }
}
