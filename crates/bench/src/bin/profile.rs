//! Per-component profiles of simulated runs, and diffs between them.
//!
//! ```text
//! profile run <kernel> [--platform NAME] [--scale F] [--top N]
//!             [--out PATH] [--folded PATH]
//! profile diff <a.json> <b.json> [--tolerance PCT]
//! ```
//!
//! `run` prices one polybench kernel with an [`pim_profile::AttributionProbe`]
//! attached and prints the top-N hotspot components; `--out` writes the full
//! profile as JSON (the input format of `diff`), `--folded` writes
//! inferno/speedscope-compatible folded stacks (`inferno-flamegraph <
//! profile.folded > flame.svg`). `diff` compares two profile JSONs
//! per-component and exits non-zero when any component's busy time or
//! energy moved by more than the tolerance (default 0: bit-equal runs
//! only), or when operation counts differ at all.

use pim_baselines::platform::{Platform, PlatformKind, Workload};
use pim_bench::figures::Scale;
use pim_profile::{diff, AttributionProbe, Profile};
use pim_workloads::polybench::Kernel;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some("--help" | "-h") | None => {
            println!(
                "usage:\n  profile run <kernel> [--platform NAME] [--scale F] [--top N] \
                 [--out PATH] [--folded PATH]\n  profile diff <a.json> <b.json> \
                 [--tolerance PCT]\n\
                 kernels: {}\nplatforms: {}",
                Kernel::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(" "),
                PlatformKind::FIGURE_17
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?} (see --help)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut kernel: Option<Kernel> = None;
    let mut platform = PlatformKind::StPim;
    let mut scale = 0.05f64;
    let mut top = 10usize;
    let mut out: Option<String> = None;
    let mut folded: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--platform" => {
                let Some(name) = it.next() else {
                    eprintln!("--platform needs a name");
                    return ExitCode::FAILURE;
                };
                match PlatformKind::FIGURE_17.iter().find(|k| k.name() == name) {
                    Some(k) => platform = *k,
                    None => {
                        eprintln!("unknown platform {name:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = f,
                _ => {
                    eprintln!("--scale needs a factor in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => top = n,
                _ => {
                    eprintln!("--top needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--folded" => match it.next() {
                Some(p) => folded = Some(p.clone()),
                None => {
                    eprintln!("--folded needs a path");
                    return ExitCode::FAILURE;
                }
            },
            name => match Kernel::ALL.iter().find(|k| k.name() == name) {
                Some(k) => kernel = Some(*k),
                None => {
                    eprintln!("unknown kernel {name:?} (see --help)");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let Some(kernel) = kernel else {
        eprintln!("profile run needs a kernel name (see --help)");
        return ExitCode::FAILURE;
    };

    let workload = Workload::from_kernel(&Scale(scale).instance(kernel));
    let p = match Platform::new(platform) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("building {platform} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let probe = AttributionProbe::new();
    let report = match p.run_with_schedule_profiled(&workload, None, &probe) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pricing {} on {platform} failed: {e}", workload.name);
            return ExitCode::FAILURE;
        }
    };
    let label = format!("{} {} scale {scale}", platform.name(), workload.name);
    let profile = Profile::from_tree(&label, &probe.into_tree());

    println!(
        "# {label}: {:.1} us, {:.1} nJ\n",
        report.total_ns() / 1e3,
        report.total_pj() / 1e3
    );
    print!("{}", profile.hotspots(top));
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, profile.to_json()) {
            eprintln!("writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote profile JSON to {path}");
    }
    if let Some(path) = folded {
        if let Err(e) = std::fs::write(&path, profile.folded()) {
            eprintln!("writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote folded stacks to {path}");
    }
    ExitCode::SUCCESS
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut tolerance = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative percent");
                    return ExitCode::FAILURE;
                }
            },
            _ => paths.push(arg),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        eprintln!("profile diff needs exactly two profile JSON paths");
        return ExitCode::FAILURE;
    };
    let load = |path: &String| -> Result<Profile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Profile::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let d = diff(&a, &b);
    print!("{}", d.render());
    if d.exceeds(tolerance) {
        eprintln!(
            "\nprofile diff: drift exceeds {tolerance}% (max component drift {:.3}%)",
            d.max_abs_pct()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nprofile diff: within {tolerance}% (max component drift {:.3}%)",
            d.max_abs_pct()
        );
        ExitCode::SUCCESS
    }
}
