//! Machine-readable cluster scaling benchmark (`BENCH_cluster.json`).
//!
//! Sweeps simulated device counts over the `pim-cluster` scale-out layer
//! and records three curves:
//!
//! * **strong scaling** — fixed total work (a batched tall gemm, the
//!   data-parallel headline shape) split across 1/2/4/8 devices;
//! * **weak scaling** — per-device work held constant (the gemm's `m`
//!   grows with the device count), so ideal efficiency is a flat 1.0;
//! * **pipeline scaling** — the MLP layer graph sharded layer-wise with a
//!   steady-state batch streamed through the stages.
//!
//! All speedups are ratios of *simulated* time, which is host-independent
//! — unlike `bench_device`'s thread speedups, these numbers transfer
//! between machines and do not depend on `available_parallelism` (the
//! host env block is recorded for wall-clock context only). The
//! acceptance gate rides along: data-parallel batched-gemm throughput
//! must reach ≥ 3x at 4 devices, and the run exits non-zero if it
//! doesn't.
//!
//! Usage: `bench_cluster [--smoke] [--out PATH]`.

use pim_cluster::{Cluster, PartitionStrategy};
use pim_workloads::{DnnKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// Host context (wall-clock only — simulated results are host-invariant).
#[derive(Debug, Serialize, Deserialize)]
struct HostEnv {
    available_parallelism: usize,
    arch: String,
}

/// One device-count point of a scaling curve.
#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    devices: u32,
    /// Simulated makespan of the whole batch, nanoseconds.
    sim_ns: f64,
    /// Total simulated energy, picojoules.
    sim_pj: f64,
    /// Share of the makespan spent on inter-device transfers.
    interconnect_ns: f64,
    /// Speedup in simulated time against the 1-device point of the same
    /// curve (strong/pipeline) or efficiency against ideal (weak).
    speedup: f64,
    /// Host wall-clock of the pricing run itself, nanoseconds
    /// (informational; depends on the machine).
    host_ns: u64,
}

/// One scaling curve: a workload swept over device counts.
#[derive(Debug, Serialize, Deserialize)]
struct ScalingCurve {
    name: String,
    workload: String,
    strategy: String,
    batch: u32,
    points: Vec<ScalePoint>,
}

/// The whole report (`BENCH_cluster.json`).
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    host: HostEnv,
    curves: Vec<ScalingCurve>,
    /// The acceptance-gate figure: data-parallel batched-gemm speedup at
    /// 4 devices (simulated time; the gate wants ≥ 3).
    gate_speedup_4dev: f64,
}

fn run_curve(
    name: &str,
    strategy: PartitionStrategy,
    batch: u32,
    device_counts: &[u32],
    workload_for: impl Fn(u32) -> WorkloadSpec,
) -> ScalingCurve {
    let mut points = Vec::new();
    let mut base_ns = 0.0;
    for &devices in device_counts {
        let workload = workload_for(devices);
        let cluster = Cluster::paper_default(devices).expect("cluster builds");
        let start = std::time::Instant::now();
        let report = cluster
            .run(&workload, strategy, batch)
            .expect("cluster prices");
        let host_ns = start.elapsed().as_nanos() as u64;
        let sim_ns = report.total_ns();
        if devices == device_counts[0] {
            base_ns = sim_ns;
        }
        points.push(ScalePoint {
            devices,
            sim_ns,
            sim_pj: report.total_pj(),
            interconnect_ns: report.interconnect.total_ns(),
            speedup: base_ns / sim_ns,
            host_ns,
        });
    }
    ScalingCurve {
        name: name.into(),
        workload: workload_for(device_counts[0]).name(),
        strategy: format!("{strategy:?}"),
        batch,
        points,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // The headline shape is tall (m >> k·n): per-device pricing carries an
    // m-independent operand-distribution component, so row-sharding only
    // approaches linear once the row dimension dominates. Batch replication
    // amortizes the per-item interconnect collectives.
    let (m, k, n, batch, pipeline_batch) = if smoke {
        (2048, 64, 64, 4, 4)
    } else {
        (8192, 128, 128, 8, 16)
    };
    let strong_shape = WorkloadSpec::MatMul { m, k, n };
    let device_counts = [1u32, 2, 4, 8];

    let strong = run_curve(
        "strong_gemm",
        PartitionStrategy::Data,
        batch,
        &device_counts,
        |_| strong_shape,
    );
    // Weak scaling: per-device rows held at `m`, so total work grows with
    // the cluster; `speedup` is re-expressed as efficiency below.
    let mut weak = run_curve(
        "weak_gemm",
        PartitionStrategy::Data,
        batch,
        &device_counts,
        |devices| WorkloadSpec::MatMul {
            m: m * devices as usize,
            k,
            n,
        },
    );
    // Efficiency: ideal weak scaling keeps sim_ns flat while work grows
    // `devices`-fold, so efficiency = t(1) / t(n).
    let weak_base = weak.points[0].sim_ns;
    for p in &mut weak.points {
        p.speedup = weak_base / p.sim_ns;
    }
    let pipeline = run_curve(
        "pipeline_mlp",
        PartitionStrategy::Pipeline,
        pipeline_batch,
        &[1, 2, 4],
        |_| WorkloadSpec::dnn(DnnKind::Mlp),
    );

    let gate_speedup_4dev = strong
        .points
        .iter()
        .find(|p| p.devices == 4)
        .map(|p| p.speedup)
        .unwrap_or(0.0);

    let report = Report {
        bench: "cluster".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        host: HostEnv {
            available_parallelism: std::thread::available_parallelism().map_or(1, |v| v.get()),
            arch: std::env::consts::ARCH.to_string(),
        },
        curves: vec![strong, weak, pipeline],
        gate_speedup_4dev,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("report written");

    println!("cluster scaling ({} mode):", report.mode);
    for curve in &report.curves {
        println!(
            "  {} — {} / {:?} / batch {}",
            curve.name, curve.workload, curve.strategy, curve.batch
        );
        for p in &curve.points {
            println!(
                "    {} dev   sim {:>14.0} ns   interconnect {:>12.0} ns   {:>5.2}x   (host {:>7.1} ms)",
                p.devices,
                p.sim_ns,
                p.interconnect_ns,
                p.speedup,
                p.host_ns as f64 / 1e6,
            );
        }
    }
    println!("wrote {out_path}");

    // Acceptance gate: data-parallel batched gemm ≥ 3x at 4 devices. A
    // simulated-time ratio — it holds (or fails) identically on any host.
    if gate_speedup_4dev < 3.0 {
        eprintln!(
            "bench_cluster: FAIL — data-parallel gemm speedup at 4 devices is {gate_speedup_4dev:.2}x, gate wants >= 3x"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_cluster: 4-device data-parallel speedup {gate_speedup_4dev:.2}x (gate >= 3x) ok"
    );
    ExitCode::SUCCESS
}
