//! Cluster scale-out smoke: the release-mode CI gate for `pim-cluster`.
//!
//! Four checks, each a hard failure:
//!
//! 1. **Single-device equivalence** — `Cluster{n:1}` at batch 1 is
//!    byte-identical (serialized JSON) to `Platform::stream_pim` on the
//!    same device configuration.
//! 2. **Conservation** — the combined report's energy, counters, and VPC
//!    counts equal the fixed-device-order fold of the per-device reports
//!    plus the interconnect, *exactly* (bitwise for floats: same fold
//!    order, same association); in data mode the combined time equals the
//!    critical device's time plus the interconnect time exactly.
//! 3. **Worker determinism** — the full `ClusterReport` is byte-identical
//!    across host worker counts {1, 2, 7, 16} at every device count
//!    {1, 2, 4, 8}, for both partition strategies.
//! 4. **Scaling gate** — data-parallel batched tall-gemm speedup at 4
//!    devices is ≥ 3x in simulated time (the ISSUE acceptance figure).

use pim_baselines::{Platform, Workload};
use pim_cluster::{Cluster, ClusterReport, PartitionStrategy};
use pim_device::{Parallelism, StreamPimConfig};
use pim_workloads::{DnnKind, WorkloadSpec};
use std::process::ExitCode;

fn fail(what: &str) -> ExitCode {
    eprintln!("cluster_smoke: FAIL — {what}");
    ExitCode::FAILURE
}

fn json(report: &ClusterReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

fn main() -> ExitCode {
    // 1. Single-device equivalence.
    let workload = WorkloadSpec::MatMul {
        m: 192,
        k: 96,
        n: 64,
    };
    let platform = Platform::stream_pim(StreamPimConfig::paper_default()).expect("platform builds");
    let single = platform
        .run(&Workload::from_spec(&workload))
        .expect("platform prices");
    let cluster1 = Cluster::paper_default(1).expect("cluster builds");
    let clustered = cluster1
        .run(&workload, PartitionStrategy::Data, 1)
        .expect("cluster prices");
    if serde_json::to_string(&single).unwrap()
        != serde_json::to_string(&clustered.combined).unwrap()
    {
        return fail("Cluster{n:1} result differs from the single-device platform");
    }
    println!("cluster_smoke: single-device equivalence ok");

    // 2 + 3. Conservation and worker determinism across the grid.
    let worker_counts = [1usize, 2, 7, 16];
    let device_counts = [1u32, 2, 4, 8];
    let strategies = [
        (PartitionStrategy::Data, 3u32),
        (PartitionStrategy::Pipeline, 4u32),
    ];
    let dnn = WorkloadSpec::dnn(DnnKind::Mlp);
    for (strategy, batch) in strategies {
        for devices in device_counts {
            let reference = Cluster::paper_default(devices)
                .expect("cluster builds")
                .with_parallelism(Parallelism::Serial)
                .run(&dnn, strategy, batch)
                .expect("cluster prices");

            // Conservation: combined energy/counters/vpc are the
            // device-order fold of the finalized per-device reports plus
            // the interconnect — recompute the fold and compare bitwise.
            let mut energy = rm_core::EnergyBreakdown::default();
            let mut counters = rm_core::OpCounters::default();
            let mut pim = 0u64;
            let mut moves = 0u64;
            for d in &reference.per_device {
                energy += d.energy;
                counters += d.counters;
                pim += d.vpc.pim;
                moves += d.vpc.moves;
            }
            energy += reference.interconnect.energy;
            counters += reference.interconnect.counters;
            let c = &reference.combined;
            if serde_json::to_string(&energy).unwrap() != serde_json::to_string(&c.energy).unwrap()
            {
                return fail(&format!(
                    "{strategy:?}/{devices}dev: combined energy is not the device-order fold"
                ));
            }
            if counters != c.counters || pim != c.vpc.pim || moves != c.vpc.moves {
                return fail(&format!(
                    "{strategy:?}/{devices}dev: combined counters/vpc are not the exact fold"
                ));
            }
            if strategy == PartitionStrategy::Data && devices > 1 {
                let critical = &reference.per_device[reference.critical_device as usize];
                let composed = critical.time + reference.interconnect.time;
                if serde_json::to_string(&composed).unwrap()
                    != serde_json::to_string(&c.time).unwrap()
                {
                    return fail(&format!(
                        "{devices}dev: data-mode time is not critical-device + interconnect"
                    ));
                }
            }

            let want = json(&reference);
            for workers in worker_counts {
                let got = Cluster::paper_default(devices)
                    .expect("cluster builds")
                    .with_parallelism(Parallelism::Threads(workers))
                    .run(&dnn, strategy, batch)
                    .expect("cluster prices");
                if json(&got) != want {
                    return fail(&format!(
                        "{strategy:?}/{devices}dev: report differs at {workers} workers"
                    ));
                }
            }
        }
    }
    println!(
        "cluster_smoke: conservation + worker determinism ok ({} workers x {} devices x {} strategies)",
        worker_counts.len(),
        device_counts.len(),
        strategies.len()
    );

    // 4. Scaling gate (simulated time, host-independent).
    let tall = WorkloadSpec::MatMul {
        m: 8192,
        k: 128,
        n: 128,
    };
    let t1 = Cluster::paper_default(1)
        .expect("cluster builds")
        .run(&tall, PartitionStrategy::Data, 8)
        .expect("cluster prices")
        .total_ns();
    let t4 = Cluster::paper_default(4)
        .expect("cluster builds")
        .run(&tall, PartitionStrategy::Data, 8)
        .expect("cluster prices")
        .total_ns();
    let speedup = t1 / t4;
    if speedup < 3.0 {
        return fail(&format!(
            "data-parallel gemm speedup at 4 devices is {speedup:.2}x, gate wants >= 3x"
        ));
    }
    println!("cluster_smoke: 4-device data-parallel speedup {speedup:.2}x (gate >= 3x) ok");
    println!("cluster_smoke: all checks passed");
    ExitCode::SUCCESS
}
