//! Machine-readable device-kernel benchmark: packed vs scalar medians.
//!
//! Runs the same four comparisons as the criterion `device` group —
//! bulk faulted nanowire shift, 64-track mat row read/write, and a
//! GEMV-shaped dot product — and writes median ns/op per variant plus the
//! speedup to a JSON report (default `BENCH_device.json`). A second,
//! informational `parallel` group times the functional [`DeviceFlow`]
//! gemv/gemm at several intra-run worker counts, recording the machine's
//! `available_parallelism` alongside — thread speedups are meaningless
//! without knowing how many cores the run actually had.
//!
//! Usage: `bench_device [--smoke] [--out PATH] [--compare PATH [--tolerance PCT]]`.
//! `--smoke` shrinks the sample counts so CI can validate the pipeline in
//! well under a second. `--compare` checks this run's speedups against a
//! previously written report (e.g. the committed `BENCH_device.json`) and
//! exits non-zero when any kernel's speedup moved by more than the
//! tolerance — speedups are same-machine ratios, so they transfer across
//! machines where absolute ns/op do not. The default tolerance (60%) is
//! deliberately loose: it rides through sampling noise and CI-runner
//! variation but still catches a packed kernel collapsing to scalar speed.
//! The `parallel` group is never gated: its speedups depend on the core
//! count of the machine at hand.

use pim_device::flow::DeviceFlow;
use pim_device::Parallelism;
use rm_core::reference::{ScalarMat, ScalarNanowire};
use rm_core::{Mat, Nanowire, ShiftDir, ShiftFaultModel};
use rm_proc::RmProcessor;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Median ns/op comparison of one kernel.
#[derive(Debug, Serialize, Deserialize)]
struct KernelResult {
    name: String,
    scalar_ns: f64,
    packed_ns: f64,
    speedup: f64,
}

/// One intra-run parallelism measurement: the same `DeviceFlow` workload
/// under `threads` workers vs serial, on a machine that reported
/// `available_parallelism` hardware threads.
#[derive(Debug, Serialize, Deserialize)]
struct ParallelResult {
    name: String,
    threads: usize,
    available_parallelism: usize,
    serial_ns: f64,
    parallel_ns: f64,
    speedup: f64,
}

/// The whole report (`BENCH_device.json`).
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    iters_per_sample: u64,
    samples: usize,
    results: Vec<KernelResult>,
    parallel: Vec<ParallelResult>,
}

/// Median of `samples` timings of `iters` calls to `op`, in ns per call.
fn median_ns<F: FnMut()>(iters: u64, samples: usize, mut op: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[samples / 2]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_device.json".to_string());
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tolerance_pct = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(60.0);

    let (iters, samples, gemv_iters) = if smoke { (200, 3, 2) } else { (20_000, 9, 30) };

    let mut results = Vec::new();

    // Kernel 1: bulk faulted shift — STEPS faulty single-domain steps
    // right, STEPS back, then a fault-free correction re-centring the
    // drift the injected over/under-shifts left behind (identical on both
    // sides, so the comparison stays apples-to-apples). The packed side
    // amortizes range checks and offset bookkeeping across the whole bulk
    // via `shift_bulk_with_faults`; the scalar reference pays them per
    // step, which is exactly how the pre-bulk engine behaved.
    {
        const STEPS: u64 = 32;
        let mut packed = Nanowire::with_even_ports(512, 8);
        let mut packed_faults = ShiftFaultModel::new(0.01, 0.01, 0xB13);
        let packed_ns = median_ns(iters, samples, || {
            packed
                .shift_bulk_with_faults(ShiftDir::Right, 1, STEPS, &mut packed_faults)
                .unwrap();
            packed
                .shift_bulk_with_faults(ShiftDir::Left, 1, STEPS, &mut packed_faults)
                .unwrap();
            let drift = packed.offset();
            if drift != 0 {
                let dir = if drift > 0 {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                };
                packed.shift(dir, drift.unsigned_abs()).unwrap();
            }
        });
        let mut scalar = ScalarNanowire::with_even_ports(512, 8);
        let mut scalar_faults = ShiftFaultModel::new(0.01, 0.01, 0xB13);
        let scalar_ns = median_ns(iters, samples, || {
            for _ in 0..STEPS {
                scalar
                    .shift_with_faults(ShiftDir::Right, 1, &mut scalar_faults)
                    .unwrap();
            }
            for _ in 0..STEPS {
                scalar
                    .shift_with_faults(ShiftDir::Left, 1, &mut scalar_faults)
                    .unwrap();
            }
            let drift = scalar.offset();
            if drift != 0 {
                let dir = if drift > 0 {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                };
                scalar.shift(dir, drift.unsigned_abs()).unwrap();
            }
        });
        results.push(KernelResult {
            name: "shift".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Kernels 2-3: 64-track mat row read and write.
    {
        let data = [0xA5u8; 8];
        let mut packed = Mat::new(64, 32, 64, 4);
        let mut scalar = ScalarMat::new(64, 32, 64, 4);
        for r in 0..64 {
            packed.write_row(r, &data).unwrap();
            scalar.write_row(r, &data).unwrap();
        }

        let mut buf = [0u8; 8];
        let mut r = 0;
        let packed_ns = median_ns(iters, samples, || {
            packed.read_row_into(black_box(r), &mut buf).unwrap();
            r = (r + 17) % 64;
        });
        let mut r = 0;
        let scalar_ns = median_ns(iters, samples, || {
            black_box(scalar.read_row(black_box(r)).unwrap());
            r = (r + 17) % 64;
        });
        results.push(KernelResult {
            name: "read_row".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });

        let mut r = 0;
        let packed_ns = median_ns(iters, samples, || {
            packed.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        });
        let mut r = 0;
        let scalar_ns = median_ns(iters, samples, || {
            scalar.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        });
        results.push(KernelResult {
            name: "write_row".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Kernel 4: GEMV-shaped 256-element dot product through the datapath.
    {
        let a: Vec<u64> = (0..256).map(|i| (i * 37 + 11) % 256).collect();
        let b: Vec<u64> = (0..256).map(|i| (i * 91 + 13) % 256).collect();
        let mut packed = RmProcessor::new(8, 2);
        let packed_ns = median_ns(gemv_iters, samples, || {
            black_box(packed.dot(black_box(&a), black_box(&b)));
        });
        let mut scalar = RmProcessor::new(8, 2);
        let scalar_ns = median_ns(gemv_iters, samples, || {
            black_box(scalar.dot_scalar(black_box(&a), black_box(&b)));
        });
        results.push(KernelResult {
            name: "gemv".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Parallel group: functional DeviceFlow gemv/gemm sharded across
    // intra-run worker threads. Informational, never gated by --compare:
    // the speedup is a property of the machine's core count, which is why
    // each entry records `available_parallelism` next to `threads`.
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (par_iters, par_samples) = if smoke { (1, 3) } else { (4, 7) };
    let mut parallel = Vec::new();
    {
        let (m, k, n) = (16usize, 32usize, 4usize);
        let a: Vec<u8> = (0..(m * k) as u32).map(|i| (i * 37 % 251) as u8).collect();
        let b: Vec<u8> = (0..(k * n) as u32).map(|i| (i * 91 % 247) as u8).collect();
        let x: Vec<u8> = (0..k as u32).map(|i| (i * 13 + 1) as u8).collect();
        type FlowRun<'a> = Box<dyn FnMut(&mut DeviceFlow, Parallelism) + 'a>;
        let workloads: [(&str, FlowRun); 2] = [
            (
                "flow_gemv",
                Box::new(|flow, par| {
                    black_box(flow.gemv(&a, &x, m, k, par).unwrap());
                }),
            ),
            (
                "flow_gemm",
                Box::new(|flow, par| {
                    black_box(flow.gemm(&a, &b, m, k, n, par).unwrap());
                }),
            ),
        ];
        for (name, mut run) in workloads {
            let mut flow = DeviceFlow::new(8).expect("flow builds");
            let serial_ns = median_ns(par_iters, par_samples, || {
                run(&mut flow, Parallelism::Serial);
            });
            for threads in [2usize, 4, 8] {
                let parallel_ns = median_ns(par_iters, par_samples, || {
                    run(&mut flow, Parallelism::Threads(threads));
                });
                parallel.push(ParallelResult {
                    name: name.into(),
                    threads,
                    available_parallelism: available,
                    serial_ns,
                    parallel_ns,
                    speedup: serial_ns / parallel_ns,
                });
            }
        }
    }

    let report = Report {
        bench: "device".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        iters_per_sample: iters,
        samples,
        results,
        parallel,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("report written");

    println!("device kernels ({} mode):", report.mode);
    for k in &report.results {
        println!(
            "  {:<10} scalar {:>10.1} ns/op   packed {:>10.1} ns/op   {:>6.1}x",
            k.name, k.scalar_ns, k.packed_ns, k.speedup
        );
    }
    println!("intra-run parallel flow (machine has {available} hardware threads):");
    for p in &report.parallel {
        println!(
            "  {:<10} x{:<2} serial {:>10.1} ns/op   parallel {:>10.1} ns/op   {:>5.2}x",
            p.name, p.threads, p.serial_ns, p.parallel_ns, p.speedup
        );
    }
    println!("wrote {out_path}");

    if let Some(base_path) = compare_path {
        return compare(&report, &base_path, tolerance_pct);
    }
    ExitCode::SUCCESS
}

/// Gates this run's speedups against a baseline report's.
fn compare(report: &Report, base_path: &str, tolerance_pct: f64) -> ExitCode {
    let baseline: Report = match std::fs::read_to_string(base_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("{e:?}")))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("loading baseline {base_path} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\ncomparing speedups against {base_path} (tolerance {tolerance_pct}%):");
    let mut failed = false;
    for k in &report.results {
        let Some(base) = baseline.results.iter().find(|b| b.name == k.name) else {
            eprintln!("  {:<10} MISSING from baseline", k.name);
            failed = true;
            continue;
        };
        let drift_pct = (k.speedup / base.speedup - 1.0) * 100.0;
        let ok = drift_pct.abs() <= tolerance_pct;
        failed |= !ok;
        println!(
            "  {:<10} baseline {:>6.2}x   now {:>6.2}x   {:>+7.1}%  {}",
            k.name,
            base.speedup,
            k.speedup,
            drift_pct,
            if ok { "ok" } else { "FAIL" }
        );
    }
    for b in &baseline.results {
        if !report.results.iter().any(|k| k.name == b.name) {
            eprintln!("  {:<10} in baseline but not measured", b.name);
            failed = true;
        }
    }
    if failed {
        eprintln!("bench_device: speedup drift beyond {tolerance_pct}% of {base_path}");
        ExitCode::FAILURE
    } else {
        println!("bench_device: all speedups within {tolerance_pct}% of {base_path}");
        ExitCode::SUCCESS
    }
}
