//! Machine-readable device-kernel benchmark: packed vs scalar medians.
//!
//! Runs the same four comparisons as the criterion `device` group —
//! bulk faulted nanowire shift, 64-track mat row read/write, and a
//! GEMV-shaped dot product — and writes median ns/op per variant plus the
//! speedup to a JSON report (default `BENCH_device.json`). A second,
//! informational `parallel` group times the functional [`DeviceFlow`]
//! gemv/gemm at several intra-run worker counts, recording the machine's
//! `available_parallelism` alongside — thread speedups are meaningless
//! without knowing how many cores the run actually had.
//!
//! Usage: `bench_device [--smoke] [--out PATH] [--compare PATH [--tolerance PCT]]`.
//! `--smoke` shrinks the sample counts so CI can validate the pipeline in
//! well under a second. `--compare` checks this run's speedups against a
//! previously written report (e.g. the committed `BENCH_device.json`) and
//! exits non-zero when any kernel's speedup moved by more than the
//! tolerance — speedups are same-machine ratios, so they transfer across
//! machines where absolute ns/op do not. The default tolerance (60%) is
//! deliberately loose: it rides through sampling noise and CI-runner
//! variation but still catches a packed kernel collapsing to scalar speed.
//! The `parallel` group is never gated: its speedups depend on the core
//! count of the machine at hand.

use pim_device::flow::DeviceFlow;
use pim_device::Parallelism;
use rm_core::reference::{ScalarMat, ScalarNanowire};
use rm_core::{Mat, Nanowire, ShiftDir, ShiftFaultModel};
use rm_proc::RmProcessor;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// The host environment a report was produced on. Absolute timings — and
/// thread speedups especially — only transfer between hosts that match on
/// these fields; `--compare` reads them to decide which gates apply.
#[derive(Debug, Serialize, Deserialize)]
struct HostEnv {
    /// `std::thread::available_parallelism` at bench time.
    available_parallelism: usize,
    /// Target architecture (`std::env::consts::ARCH`).
    arch: String,
    /// SIMD level the wide kernels dispatch to (`rm_core::wide::simd_level`).
    simd: String,
}

impl HostEnv {
    fn current() -> Self {
        HostEnv {
            available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            arch: std::env::consts::ARCH.to_string(),
            simd: rm_core::wide::simd_level().to_string(),
        }
    }
}

/// Median ns/op comparison of one kernel.
#[derive(Debug, Serialize, Deserialize)]
struct KernelResult {
    name: String,
    scalar_ns: f64,
    packed_ns: f64,
    speedup: f64,
}

/// Median ns/op of one kernel's wide word-group path against its retained
/// single-word reference path (PR 8 tentpole): `ratio` is `word_ns /
/// wide_ns`, so ≥ 1 means the widening pays off.
#[derive(Debug, Serialize, Deserialize)]
struct WideResult {
    name: String,
    word_ns: f64,
    wide_ns: f64,
    ratio: f64,
}

/// Cold pricing vs near-miss re-pricing of one submission, medianed over a
/// shape-swept workload: `cold_ns` builds the task, lowers, and prices every
/// row from scratch (the pre-cache submission path); `repriced_ns` lowers
/// the shape-only task and replays already-priced rows through a warmed
/// [`pim_device::PriceTable`] (the runtime's near-miss path). `ratio` is
/// `repriced_ns / cold_ns` — the acceptance gate wants it under 0.5.
#[derive(Debug, Serialize, Deserialize)]
struct RepriceResult {
    shapes: usize,
    cold_ns: f64,
    repriced_ns: f64,
    ratio: f64,
}

/// One intra-run parallelism measurement: the same `DeviceFlow` workload
/// under `threads` workers vs serial, on a machine that reported
/// `available_parallelism` hardware threads.
#[derive(Debug, Serialize, Deserialize)]
struct ParallelResult {
    name: String,
    threads: usize,
    available_parallelism: usize,
    serial_ns: f64,
    parallel_ns: f64,
    speedup: f64,
}

/// The whole report (`BENCH_device.json`).
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    host: HostEnv,
    iters_per_sample: u64,
    samples: usize,
    results: Vec<KernelResult>,
    wide: Vec<WideResult>,
    reprice: RepriceResult,
    parallel: Vec<ParallelResult>,
}

/// Median of `samples` timings of `iters` calls to `op`, in ns per call.
fn median_ns<F: FnMut()>(iters: u64, samples: usize, mut op: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[samples / 2]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_device.json".to_string());
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tolerance_pct = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(60.0);

    let (iters, samples, gemv_iters) = if smoke { (200, 3, 2) } else { (20_000, 9, 30) };

    let mut results = Vec::new();

    // Kernel 1: bulk faulted shift — STEPS faulty single-domain steps
    // right, STEPS back, then a fault-free correction re-centring the
    // drift the injected over/under-shifts left behind (identical on both
    // sides, so the comparison stays apples-to-apples). The packed side
    // amortizes range checks and offset bookkeeping across the whole bulk
    // via `shift_bulk_with_faults`; the scalar reference pays them per
    // step, which is exactly how the pre-bulk engine behaved.
    {
        const STEPS: u64 = 32;
        let mut packed = Nanowire::with_even_ports(512, 8);
        let mut packed_faults = ShiftFaultModel::new(0.01, 0.01, 0xB13);
        let packed_ns = median_ns(iters, samples, || {
            packed
                .shift_bulk_with_faults(ShiftDir::Right, 1, STEPS, &mut packed_faults)
                .unwrap();
            packed
                .shift_bulk_with_faults(ShiftDir::Left, 1, STEPS, &mut packed_faults)
                .unwrap();
            let drift = packed.offset();
            if drift != 0 {
                let dir = if drift > 0 {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                };
                packed.shift(dir, drift.unsigned_abs()).unwrap();
            }
        });
        let mut scalar = ScalarNanowire::with_even_ports(512, 8);
        let mut scalar_faults = ShiftFaultModel::new(0.01, 0.01, 0xB13);
        let scalar_ns = median_ns(iters, samples, || {
            for _ in 0..STEPS {
                scalar
                    .shift_with_faults(ShiftDir::Right, 1, &mut scalar_faults)
                    .unwrap();
            }
            for _ in 0..STEPS {
                scalar
                    .shift_with_faults(ShiftDir::Left, 1, &mut scalar_faults)
                    .unwrap();
            }
            let drift = scalar.offset();
            if drift != 0 {
                let dir = if drift > 0 {
                    ShiftDir::Left
                } else {
                    ShiftDir::Right
                };
                scalar.shift(dir, drift.unsigned_abs()).unwrap();
            }
        });
        results.push(KernelResult {
            name: "shift".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Kernels 2-3: 64-track mat row read and write.
    {
        let data = [0xA5u8; 8];
        let mut packed = Mat::new(64, 32, 64, 4);
        let mut scalar = ScalarMat::new(64, 32, 64, 4);
        for r in 0..64 {
            packed.write_row(r, &data).unwrap();
            scalar.write_row(r, &data).unwrap();
        }

        let mut buf = [0u8; 8];
        let mut r = 0;
        let packed_ns = median_ns(iters, samples, || {
            packed.read_row_into(black_box(r), &mut buf).unwrap();
            r = (r + 17) % 64;
        });
        let mut r = 0;
        let scalar_ns = median_ns(iters, samples, || {
            black_box(scalar.read_row(black_box(r)).unwrap());
            r = (r + 17) % 64;
        });
        results.push(KernelResult {
            name: "read_row".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });

        let mut r = 0;
        let packed_ns = median_ns(iters, samples, || {
            packed.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        });
        let mut r = 0;
        let scalar_ns = median_ns(iters, samples, || {
            scalar.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        });
        results.push(KernelResult {
            name: "write_row".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Kernel 4: GEMV-shaped 256-element dot product through the datapath.
    {
        let a: Vec<u64> = (0..256).map(|i| (i * 37 + 11) % 256).collect();
        let b: Vec<u64> = (0..256).map(|i| (i * 91 + 13) % 256).collect();
        let mut packed = RmProcessor::new(8, 2);
        let packed_ns = median_ns(gemv_iters, samples, || {
            black_box(packed.dot(black_box(&a), black_box(&b)));
        });
        let mut scalar = RmProcessor::new(8, 2);
        let scalar_ns = median_ns(gemv_iters, samples, || {
            black_box(scalar.dot_scalar(black_box(&a), black_box(&b)));
        });
        results.push(KernelResult {
            name: "gemv".into(),
            scalar_ns,
            packed_ns,
            speedup: scalar_ns / packed_ns,
        });
    }

    // Wide group: each widened hot path against its retained single-word
    // reference (PR 8): the processor dot datapath, the aligned row copy
    // under `Mat` reads/writes, and the bus's closed-form bulk stream.
    let mut wide = Vec::new();
    {
        let a: Vec<u64> = (0..256).map(|i| (i * 37 + 11) % 256).collect();
        let b: Vec<u64> = (0..256).map(|i| (i * 91 + 13) % 256).collect();
        let mut proc = RmProcessor::new(8, 2);
        let wide_ns = median_ns(gemv_iters, samples, || {
            black_box(proc.dot(black_box(&a), black_box(&b)));
        });
        let word_ns = median_ns(gemv_iters, samples, || {
            black_box(proc.dot_words(black_box(&a), black_box(&b)));
        });
        wide.push(WideResult {
            name: "gemv".into(),
            word_ns,
            wide_ns,
            ratio: word_ns / wide_ns,
        });
    }
    {
        // A full 4096-lane plane row, the grain `Mat` row reads copy.
        const LANES: usize = 4096;
        let mut src = rm_core::PackedBits::new(LANES);
        for i in (0..LANES).step_by(3) {
            src.set(i, true);
        }
        let mut dst = rm_core::PackedBits::new(LANES);
        let wide_ns = median_ns(iters, samples, || {
            dst.copy_range_from(0, black_box(&src), 0, LANES);
            black_box(&dst);
        });
        let word_ns = median_ns(iters, samples, || {
            dst.copy_range_from_by_words(0, black_box(&src), 0, LANES);
            black_box(&dst);
        });
        wide.push(WideResult {
            name: "read_row".into(),
            word_ns,
            wide_ns,
            ratio: word_ns / wide_ns,
        });
    }
    {
        let words: Vec<u64> = (0..64).map(|i| i * 0x9E37_79B9_7F4A_7C15u64).collect();
        let (src, dst) = (0usize, 8usize);
        let mut bulk = rm_bus::SegmentedBus::new(16);
        let wide_ns = median_ns(iters / 4, samples, || {
            black_box(bulk.stream_words(src, dst, black_box(&words)));
        });
        let mut cycled = rm_bus::SegmentedBus::new(16);
        let word_ns = median_ns(iters / 4, samples, || {
            black_box(cycled.stream_words_cycled_reference(src, dst, black_box(&words)));
        });
        wide.push(WideResult {
            name: "stream_words".into(),
            word_ns,
            wide_ns,
            ratio: word_ns / wide_ns,
        });
    }

    // Reprice group: the runtime's near-miss submission path (shape-only
    // lowering + memoized pricing) against the cold path (task build + full
    // pricing), medianed over a shape-swept MatMul workload whose price
    // table was warmed by one sibling shape.
    let reprice = {
        use pim_device::{PriceTable, StreamPim, StreamPimConfig};
        use pim_workloads::WorkloadSpec;
        let device = StreamPim::new(StreamPimConfig::paper_default()).expect("device builds");
        let shapes: Vec<WorkloadSpec> = (0..6)
            .map(|i| WorkloadSpec::MatMul {
                m: 32 + 8 * i,
                k: 48 + 4 * i,
                n: 16 + 2 * i,
            })
            .collect();
        let (rep_iters, rep_samples) = if smoke { (2, 3) } else { (20, 7) };
        let cold_ns = median_ns(rep_iters, rep_samples, || {
            for spec in &shapes {
                let schedule = spec.build_task().lower(&device).expect("lowers");
                black_box(device.execute(&schedule));
            }
        });
        // Warm the table with the first shape, then sweep the rest —
        // exactly what the runtime does after one shape-class submission.
        let mut table = PriceTable::new();
        let warm = shapes[0].shape_task().lower(&device).expect("lowers");
        device.execute_repriced(&warm, &mut table);
        let repriced_ns = median_ns(rep_iters, rep_samples, || {
            for spec in &shapes {
                let schedule = spec.shape_task().lower(&device).expect("lowers");
                black_box(device.execute_repriced(&schedule, &mut table));
            }
        });
        RepriceResult {
            shapes: shapes.len(),
            cold_ns,
            repriced_ns,
            ratio: repriced_ns / cold_ns,
        }
    };

    // Parallel group: functional DeviceFlow gemv/gemm sharded across
    // intra-run worker threads. Gated by --compare only when the baseline
    // ran with the same hardware thread count: the speedup is a property
    // of the machine's core count, which is why each entry records
    // `available_parallelism` next to `threads`.
    let host = HostEnv::current();
    let available = host.available_parallelism;
    let (par_iters, par_samples) = if smoke { (1, 3) } else { (4, 7) };
    let mut parallel = Vec::new();
    {
        let (m, k, n) = (16usize, 32usize, 4usize);
        let a: Vec<u8> = (0..(m * k) as u32).map(|i| (i * 37 % 251) as u8).collect();
        let b: Vec<u8> = (0..(k * n) as u32).map(|i| (i * 91 % 247) as u8).collect();
        let x: Vec<u8> = (0..k as u32).map(|i| (i * 13 + 1) as u8).collect();
        type FlowRun<'a> = Box<dyn FnMut(&mut DeviceFlow, Parallelism) + 'a>;
        let workloads: [(&str, FlowRun); 2] = [
            (
                "flow_gemv",
                Box::new(|flow, par| {
                    black_box(flow.gemv(&a, &x, m, k, par).unwrap());
                }),
            ),
            (
                "flow_gemm",
                Box::new(|flow, par| {
                    black_box(flow.gemm(&a, &b, m, k, n, par).unwrap());
                }),
            ),
        ];
        for (name, mut run) in workloads {
            let mut flow = DeviceFlow::new(8).expect("flow builds");
            let serial_ns = median_ns(par_iters, par_samples, || {
                run(&mut flow, Parallelism::Serial);
            });
            for threads in [2usize, 4, 8] {
                let parallel_ns = median_ns(par_iters, par_samples, || {
                    run(&mut flow, Parallelism::Threads(threads));
                });
                parallel.push(ParallelResult {
                    name: name.into(),
                    threads,
                    available_parallelism: available,
                    serial_ns,
                    parallel_ns,
                    speedup: serial_ns / parallel_ns,
                });
            }
        }
    }

    let report = Report {
        bench: "device".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        host,
        iters_per_sample: iters,
        samples,
        results,
        wide,
        reprice,
        parallel,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("report written");

    println!(
        "device kernels ({} mode, {} / {} / {} threads):",
        report.mode, report.host.arch, report.host.simd, report.host.available_parallelism
    );
    for k in &report.results {
        println!(
            "  {:<10} scalar {:>10.1} ns/op   packed {:>10.1} ns/op   {:>6.1}x",
            k.name, k.scalar_ns, k.packed_ns, k.speedup
        );
    }
    println!("wide word-group vs single-word paths:");
    for w in &report.wide {
        println!(
            "  {:<12} word {:>10.1} ns/op   wide {:>10.1} ns/op   {:>6.2}x",
            w.name, w.word_ns, w.wide_ns, w.ratio
        );
    }
    println!(
        "near-miss re-pricing over {} swept shapes: cold {:>10.1} ns   repriced {:>10.1} ns   {:.2}x",
        report.reprice.shapes, report.reprice.cold_ns, report.reprice.repriced_ns, report.reprice.ratio
    );
    println!("intra-run parallel flow (machine has {available} hardware threads):");
    for p in &report.parallel {
        println!(
            "  {:<10} x{:<2} serial {:>10.1} ns/op   parallel {:>10.1} ns/op   {:>5.2}x",
            p.name, p.threads, p.serial_ns, p.parallel_ns, p.speedup
        );
    }
    println!("wrote {out_path}");

    if let Some(base_path) = compare_path {
        return compare(&report, &base_path, tolerance_pct);
    }
    ExitCode::SUCCESS
}

/// The ways `now`'s host differs from the baseline's, one description per
/// mismatched field. Speedup ratios only transfer between matching hosts:
/// packed-vs-scalar depends on the SIMD level, everything on the
/// architecture, and thread ratios on the core count.
fn host_mismatches(base: &HostEnv, now: &HostEnv) -> Vec<String> {
    let mut out = Vec::new();
    if base.arch != now.arch {
        out.push(format!("arch: baseline {} vs {}", base.arch, now.arch));
    }
    if base.simd != now.simd {
        out.push(format!("simd: baseline {} vs {}", base.simd, now.simd));
    }
    if base.available_parallelism != now.available_parallelism {
        out.push(format!(
            "threads: baseline {} vs {}",
            base.available_parallelism, now.available_parallelism
        ));
    }
    out
}

/// Whether the parallel speedup gate is meaningful on this host. On a
/// single-hardware-thread host the "speedup" of the threaded engine is
/// pure scheduler overhead; the ratio swings 2x run to run and gating it
/// only produces flaky CI.
fn parallel_gate_applies(host: &HostEnv) -> bool {
    host.available_parallelism > 1
}

/// Gates this run's speedups against a baseline report's.
fn compare(report: &Report, base_path: &str, tolerance_pct: f64) -> ExitCode {
    let baseline: Report = match std::fs::read_to_string(base_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("{e:?}")))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("loading baseline {base_path} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A mismatched host block used to gate the kernel speedups anyway and
    // silently skip the parallel group — a baseline from another machine
    // then "passed" without checking anything real. Refuse instead: the
    // committed baseline must be regenerated on the class of machine that
    // runs the gate.
    let mismatches = host_mismatches(&baseline.host, &report.host);
    if !mismatches.is_empty() {
        eprintln!("bench_device: refusing to compare against {base_path} — host mismatch:");
        for m in &mismatches {
            eprintln!("  {m}");
        }
        eprintln!("  (speedup ratios do not transfer across hosts; regenerate the baseline on this machine class)");
        return ExitCode::FAILURE;
    }
    println!("\ncomparing speedups against {base_path} (tolerance {tolerance_pct}%):");
    let mut failed = false;
    for k in &report.results {
        let Some(base) = baseline.results.iter().find(|b| b.name == k.name) else {
            eprintln!("  {:<10} MISSING from baseline", k.name);
            failed = true;
            continue;
        };
        let drift_pct = (k.speedup / base.speedup - 1.0) * 100.0;
        let ok = drift_pct.abs() <= tolerance_pct;
        failed |= !ok;
        println!(
            "  {:<10} baseline {:>6.2}x   now {:>6.2}x   {:>+7.1}%  {}",
            k.name,
            base.speedup,
            k.speedup,
            drift_pct,
            if ok { "ok" } else { "FAIL" }
        );
    }
    for b in &baseline.results {
        if !report.results.iter().any(|k| k.name == b.name) {
            eprintln!("  {:<10} in baseline but not measured", b.name);
            failed = true;
        }
    }
    // Host blocks match (checked above), so the only remaining reason to
    // skip the parallel gate is a host where thread ratios are noise.
    if !parallel_gate_applies(&report.host) {
        eprintln!(
            "  WARNING: skipping parallel speedup gate — host has 1 hardware thread, ratios are scheduler noise"
        );
    } else {
        for p in &report.parallel {
            let Some(base) = baseline
                .parallel
                .iter()
                .find(|b| b.name == p.name && b.threads == p.threads)
            else {
                eprintln!(
                    "  {:<10} x{:<2} MISSING from baseline parallel group",
                    p.name, p.threads
                );
                failed = true;
                continue;
            };
            let drift_pct = (p.speedup / base.speedup - 1.0) * 100.0;
            let ok = drift_pct.abs() <= tolerance_pct;
            failed |= !ok;
            println!(
                "  {:<10} x{:<2} baseline {:>6.2}x   now {:>6.2}x   {:>+7.1}%  {}",
                p.name,
                p.threads,
                base.speedup,
                p.speedup,
                drift_pct,
                if ok { "ok" } else { "FAIL" }
            );
        }
    }
    if failed {
        eprintln!("bench_device: speedup drift beyond {tolerance_pct}% of {base_path}");
        ExitCode::FAILURE
    } else {
        println!("bench_device: all speedups within {tolerance_pct}% of {base_path}");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(threads: usize, arch: &str, simd: &str) -> HostEnv {
        HostEnv {
            available_parallelism: threads,
            arch: arch.into(),
            simd: simd.into(),
        }
    }

    #[test]
    fn matching_hosts_compare() {
        let a = host(8, "x86_64", "avx2");
        let b = host(8, "x86_64", "avx2");
        assert!(host_mismatches(&a, &b).is_empty());
    }

    #[test]
    fn every_host_field_is_checked() {
        let base = host(8, "x86_64", "avx2");
        for (other, field) in [
            (host(1, "x86_64", "avx2"), "threads"),
            (host(8, "aarch64", "avx2"), "arch"),
            (host(8, "x86_64", "portable"), "simd"),
        ] {
            let mismatches = host_mismatches(&base, &other);
            assert_eq!(mismatches.len(), 1, "{field}: {mismatches:?}");
            assert!(mismatches[0].starts_with(field), "{mismatches:?}");
        }
        assert_eq!(
            host_mismatches(&base, &host(2, "aarch64", "portable")).len(),
            3
        );
    }

    #[test]
    fn one_thread_hosts_skip_the_parallel_gate() {
        assert!(!parallel_gate_applies(&host(1, "x86_64", "avx2")));
        assert!(parallel_gate_applies(&host(2, "x86_64", "avx2")));
        assert!(parallel_gate_applies(&host(8, "x86_64", "avx2")));
    }
}
