//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale F] [--json PATH] [fig3 fig4 fig17 fig18 fig19 fig20
//!              fig21 fig22 fig23 table4 table5 area fab trace | all]
//! ```
//!
//! `--scale F` shrinks every kernel dimension by `F` (default 1.0 = the
//! paper's full problem sizes). `--json PATH` additionally writes the
//! selected figures' structured data (one key per figure, the same values
//! the printed tables show) for downstream tooling — each figure is
//! computed once and both outputs are derived from it. `trace`
//! additionally writes `trace.json` (Chrome trace-event format; load at
//! <https://ui.perfetto.dev>) next to the printed utilization report.

use pim_bench::figures::{self, Scale};
use pim_bench::render;
use pim_bench::trace;
use serde::Serialize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = Scale(f),
                _ => {
                    eprintln!("--scale needs a factor in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale F] [--json PATH] [fig3 fig4 fig17 fig18 \
                     fig19 fig20 fig21 fig22 fig23 table4 table5 area fab trace | all]\n\
                     `--json PATH` writes the structured per-figure data alongside the \
                     printed tables.\n\
                     `trace` writes trace.json (Perfetto) and prints the utilization \
                     report; it is not part of `all`."
                );
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig3", "fig4", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "table4", "table5", "area", "fab",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!(
        "# StreamPIM experiment suite (scale {:.3}{})\n",
        scale.0,
        if (scale.0 - 1.0).abs() < 1e-12 {
            ", paper-size"
        } else {
            ""
        }
    );

    let want_json = json_path.is_some();
    let mut fragments: Vec<(String, String)> = Vec::new();
    for name in &wanted {
        match run_one(name, scale, want_json) {
            Ok((text, json)) => {
                println!("{text}");
                if let Some(j) = json {
                    fragments.push((name.clone(), j));
                }
            }
            Err(e) => {
                eprintln!("experiment {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = json_path {
        let body: Vec<String> = fragments
            .iter()
            .map(|(name, j)| format!("    \"{name}\": {j}"))
            .collect();
        let doc = format!(
            "{{\n  \"scale\": {},\n  \"figures\": {{\n{}\n  }}\n}}\n",
            scale.0,
            body.join(",\n")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("writing {path} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote structured figures to {path}");
    }
    ExitCode::SUCCESS
}

/// Serializes a figure's structured data when `--json` asked for it.
fn maybe_json<T: Serialize>(want: bool, value: &T) -> Result<Option<String>, serde::Error> {
    if want {
        serde_json::to_string(value).map(Some)
    } else {
        Ok(None)
    }
}

#[allow(clippy::too_many_lines)]
fn run_one(
    name: &str,
    scale: Scale,
    json: bool,
) -> Result<(String, Option<String>), Box<dyn std::error::Error>> {
    Ok(match name {
        "fig3" => {
            let data = figures::fig3(scale);
            (render::fig3(&data), maybe_json(json, &data)?)
        }
        "fig4" => {
            let data = figures::fig4();
            (render::fig4(&data), maybe_json(json, &data)?)
        }
        "fig17" => {
            let data = figures::fig17(scale)?;
            (
                render::metric_table(
                    "Figure 17 — Speedup over CPU-RM (paper avgs: StPIM 39.1x, StPIM-e 12.7x, \
                     CORUSCANT 15.6x, FELIX 8.7x, ELP2IM 3.6x, CPU-DRAM 1.5x)",
                    "x",
                    &data,
                ),
                maybe_json(json, &data)?,
            )
        }
        "fig18" => {
            let data = figures::fig18(scale)?;
            (
                render::metric_table(
                    "Figure 18 — Energy normalized to StPIM (paper: CPU-DRAM 58.4x, \
                     CORUSCANT 2.8x, FELIX 3.5x, ELP2IM 11.7x, StPIM-e 1.6x)",
                    "x",
                    &data,
                ),
                maybe_json(json, &data)?,
            )
        }
        "fig19" => {
            let data = figures::fig19(scale)?;
            (
                render::breakdowns(
                    "Figure 19 — Execution-time breakdown (paper: CORUSCANT 81.8% exclusive \
                     transfer; StPIM < 1%)",
                    ["read", "write", "shift", "process", "overlapped"],
                    &data,
                ),
                maybe_json(json, &data)?,
            )
        }
        "fig20" => {
            let data = figures::fig20(scale)?;
            (
                render::breakdowns(
                    "Figure 20 — Energy breakdown (paper: CORUSCANT 86% transfer; StPIM ~30%)",
                    ["read", "write", "shift", "compute", "other"],
                    &data,
                ),
                maybe_json(json, &data)?,
            )
        }
        "fig21" => {
            let data = figures::fig21(scale)?;
            (render::fig21(&data), maybe_json(json, &data)?)
        }
        "fig22" => {
            let data = figures::fig22(scale)?;
            (render::fig22(&data), maybe_json(json, &data)?)
        }
        "fig23" => {
            let data = figures::fig23()?;
            (render::fig23(&data), maybe_json(json, &data)?)
        }
        "table4" => {
            let data = figures::table4();
            (render::table4(&data), maybe_json(json, &data)?)
        }
        "table5" => {
            let data = figures::table5(scale)?;
            (render::table5(&data), maybe_json(json, &data)?)
        }
        "area" => {
            let data = figures::area();
            (render::area(&data), maybe_json(json, &data)?)
        }
        "fab" => {
            let data = figures::fabrication();
            (render::fabrication(&data), maybe_json(json, &data)?)
        }
        "trace" => {
            // The full-size gemm schedule is too large for the event
            // engine's expanded timelines; cap the trace scale.
            let run = trace::trace_kernel(
                pim_workloads::polybench::Kernel::Gemm,
                Scale(scale.0.min(0.05)),
            )?;
            std::fs::write("trace.json", &run.json)?;
            (
                format!(
                    "## Trace — gemm utilization (wrote trace.json, {} spans; \
                     open at https://ui.perfetto.dev)\n\n{}\n\noverlap fraction: \
                     base {:.4}, unblock {:.4}",
                    run.spans, run.report, run.overlap_base, run.overlap_unblock
                ),
                None,
            )
        }
        other => return Err(format!("unknown experiment {other:?}").into()),
    })
}
