//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale F] [fig3 fig4 fig17 fig18 fig19 fig20 fig21 fig22
//!              fig23 table4 table5 area fab trace | all]
//! ```
//!
//! `--scale F` shrinks every kernel dimension by `F` (default 1.0 = the
//! paper's full problem sizes). `trace` additionally writes `trace.json`
//! (Chrome trace-event format; load at <https://ui.perfetto.dev>) next to
//! the printed utilization report.

use pim_bench::figures::{self, Scale};
use pim_bench::render;
use pim_bench::trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = Scale(f),
                _ => {
                    eprintln!("--scale needs a factor in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale F] [fig3 fig4 fig17 fig18 fig19 fig20 \
                     fig21 fig22 fig23 table4 table5 area fab trace | all]\n\
                     `trace` writes trace.json (Perfetto) and prints the utilization \
                     report; it is not part of `all`."
                );
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig3", "fig4", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
            "table4", "table5", "area", "fab",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!(
        "# StreamPIM experiment suite (scale {:.3}{})\n",
        scale.0,
        if (scale.0 - 1.0).abs() < 1e-12 {
            ", paper-size"
        } else {
            ""
        }
    );

    for name in &wanted {
        let result = run_one(name, scale);
        match result {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("experiment {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_one(name: &str, scale: Scale) -> Result<String, Box<dyn std::error::Error>> {
    Ok(match name {
        "fig3" => render::fig3(&figures::fig3(scale)),
        "fig4" => render::fig4(&figures::fig4()),
        "fig17" => render::metric_table(
            "Figure 17 — Speedup over CPU-RM (paper avgs: StPIM 39.1x, StPIM-e 12.7x, \
             CORUSCANT 15.6x, FELIX 8.7x, ELP2IM 3.6x, CPU-DRAM 1.5x)",
            "x",
            &figures::fig17(scale)?,
        ),
        "fig18" => render::metric_table(
            "Figure 18 — Energy normalized to StPIM (paper: CPU-DRAM 58.4x, CORUSCANT 2.8x, \
             FELIX 3.5x, ELP2IM 11.7x, StPIM-e 1.6x)",
            "x",
            &figures::fig18(scale)?,
        ),
        "fig19" => render::breakdowns(
            "Figure 19 — Execution-time breakdown (paper: CORUSCANT 81.8% exclusive transfer; \
             StPIM < 1%)",
            ["read", "write", "shift", "process", "overlapped"],
            &figures::fig19(scale)?,
        ),
        "fig20" => render::breakdowns(
            "Figure 20 — Energy breakdown (paper: CORUSCANT 86% transfer; StPIM ~30%)",
            ["read", "write", "shift", "compute", "other"],
            &figures::fig20(scale)?,
        ),
        "fig21" => render::fig21(&figures::fig21(scale)?),
        "fig22" => render::fig22(&figures::fig22(scale)?),
        "fig23" => render::fig23(&figures::fig23()?),
        "table4" => render::table4(&figures::table4()),
        "table5" => render::table5(&figures::table5(scale)?),
        "area" => render::area(&figures::area()),
        "fab" => render::fabrication(&figures::fabrication()),
        "trace" => {
            // The full-size gemm schedule is too large for the event
            // engine's expanded timelines; cap the trace scale.
            let run = trace::trace_kernel(
                pim_workloads::polybench::Kernel::Gemm,
                Scale(scale.0.min(0.05)),
            )?;
            std::fs::write("trace.json", &run.json)?;
            format!(
                "## Trace — gemm utilization (wrote trace.json, {} spans; \
                 open at https://ui.perfetto.dev)\n\n{}\n\noverlap fraction: \
                 base {:.4}, unblock {:.4}",
                run.spans, run.report, run.overlap_base, run.overlap_unblock
            )
        }
        other => return Err(format!("unknown experiment {other:?}").into()),
    })
}
