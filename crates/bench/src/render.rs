//! Markdown rendering of the experiment results.

use crate::figures::{BreakdownRow, Fig23Row, Fig3Row, Fig4Row, MetricTable, Table5Row};
use pim_device::area::AreaModel;
use pim_workloads::trace::TraceRow;
use std::fmt::Write;

/// Renders Figure 3 as a markdown table.
pub fn fig3(rows: &[Fig3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Figure 3 — CPU/GPU execution-time breakdown\n");
    let _ = writeln!(
        s,
        "| kernel | group | CPU mem fraction | GPU transfer fraction |"
    );
    let _ = writeln!(s, "|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.1}% | {:.1}% |",
            r.kernel,
            if r.small { "small" } else { "large" },
            r.cpu_mem_fraction * 100.0,
            r.gpu_transfer_fraction * 100.0
        );
    }
    let small: Vec<&Fig3Row> = rows.iter().filter(|r| r.small).collect();
    let avg_cpu = small.iter().map(|r| r.cpu_mem_fraction).sum::<f64>() / small.len() as f64;
    let avg_gpu = small.iter().map(|r| r.gpu_transfer_fraction).sum::<f64>() / small.len() as f64;
    let _ = writeln!(
        s,
        "\nSmall-kernel averages: CPU mem {:.1}% (paper 47.6%), GPU transfer {:.1}% (paper 90.0%)",
        avg_cpu * 100.0,
        avg_gpu * 100.0
    );
    s
}

/// Renders Figure 4 as markdown.
pub fn fig4(rows: &[Fig4Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Figure 4 — CORUSCANT operation breakdown\n");
    let _ = writeln!(
        s,
        "| op | time: read/write/shift/compute | energy: read/write/shift/compute |"
    );
    let _ = writeln!(s, "|---|---|---|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {:.0}% / {:.0}% / {:.0}% / {:.0}% | {:.0}% / {:.0}% / {:.0}% / {:.0}% |",
            r.op,
            r.time_shares[0] * 100.0,
            r.time_shares[1] * 100.0,
            r.time_shares[2] * 100.0,
            r.time_shares[3] * 100.0,
            r.energy_shares[0] * 100.0,
            r.energy_shares[1] * 100.0,
            r.energy_shares[2] * 100.0,
            r.energy_shares[3] * 100.0,
        );
    }
    let _ = writeln!(
        s,
        "\nPaper: mul time write 51.0%, compute 30.1%; energy compute 29.1%."
    );
    s
}

/// Renders a [`MetricTable`] (Figures 17/18) as markdown.
pub fn metric_table(title: &str, unit: &str, t: &MetricTable) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### {title}\n");
    let _ = write!(s, "| kernel |");
    for p in &t.platforms {
        let _ = write!(s, " {p} |");
    }
    let _ = writeln!(s);
    let _ = write!(s, "|---|");
    for _ in &t.platforms {
        let _ = write!(s, "---|");
    }
    let _ = writeln!(s);
    for (kernel, values) in &t.rows {
        let _ = write!(s, "| {kernel} |");
        for v in values {
            let _ = write!(s, " {v:.2}{unit} |");
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "| **average** |");
    for v in &t.averages {
        let _ = write!(s, " **{v:.2}{unit}** |");
    }
    let _ = writeln!(s);
    s
}

/// Renders Figures 19/20 as markdown.
pub fn breakdowns(title: &str, labels: [&str; 5], rows: &[BreakdownRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### {title}\n");
    let _ = writeln!(
        s,
        "| kernel | platform | {} | {} | {} | {} | {} |",
        labels[0], labels[1], labels[2], labels[3], labels[4]
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            r.kernel,
            r.platform,
            r.shares[0] * 100.0,
            r.shares[1] * 100.0,
            r.shares[2] * 100.0,
            r.shares[3] * 100.0,
            r.shares[4] * 100.0
        );
    }
    s
}

/// Renders Figure 21 as markdown.
pub fn fig21(rows: &[(u32, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Figure 21 — PIM subarray-count sensitivity\n");
    let _ = writeln!(s, "| subarrays | speedup vs 128 | paper |");
    let _ = writeln!(s, "|---|---|---|");
    let paper = [1.0, 1.74, 3.0, 3.2];
    for (i, (count, v)) in rows.iter().enumerate() {
        let _ = writeln!(s, "| {count} | {v:.2}x | {:.2}x |", paper[i]);
    }
    s
}

/// Renders Figure 22 as markdown.
pub fn fig22(rows: &[(&str, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Figure 22 — Optimization ablation\n");
    let _ = writeln!(s, "| optimization | speedup vs base | paper |");
    let _ = writeln!(s, "|---|---|---|");
    let paper = [1.0, 7.1, 199.7];
    for (i, (name, v)) in rows.iter().enumerate() {
        let _ = writeln!(s, "| {name} | {v:.1}x | {:.1}x |", paper[i]);
    }
    s
}

/// Renders Figure 23 as markdown.
pub fn fig23(rows: &[Fig23Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Figure 23 — DNN end-to-end speedup vs CPU-DRAM\n");
    let _ = writeln!(s, "| model | platform | speedup |");
    let _ = writeln!(s, "|---|---|---|");
    for r in rows {
        let _ = writeln!(s, "| {} | {} | {:.2}x |", r.model, r.platform, r.speedup);
    }
    let _ = writeln!(
        s,
        "\nPaper: MLP StPIM 54.77x (1.86x vs CORUSCANT); BERT 4.49x (1.97x)."
    );
    s
}

/// Renders Table IV as markdown.
pub fn table4(rows: &[TraceRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Table IV — VPC counts per kernel\n");
    let _ = writeln!(
        s,
        "| kernel | #PIM-VPC | paper | err | #move-VPC | paper | err |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.2e} | {:.1}% | {} | {:.2e} | {:.1}% |",
            r.kernel,
            r.measured_pim,
            r.paper_pim,
            r.pim_error() * 100.0,
            r.measured_moves,
            r.paper_moves,
            r.move_error() * 100.0
        );
    }
    s
}

/// Renders Table V as markdown.
pub fn table5(rows: &[Table5Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Table V — Bus segment-size sensitivity\n");
    let _ = writeln!(
        s,
        "| segment | time overhead | paper | energy delta | paper |"
    );
    let _ = writeln!(s, "|---|---|---|---|---|");
    let paper_t = [2.33, 0.58, 0.29, 0.0];
    let paper_e = [-0.1, -0.05, -0.04, 0.0];
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "| {} | +{:.2}% | +{:.2}% | {:+.2}% | {:+.2}% |",
            r.segment, r.time_overhead_pct, paper_t[i], r.energy_delta_pct, paper_e[i]
        );
    }
    s
}

/// Renders the area model as markdown.
pub fn area(model: &AreaModel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Section V-G — Area overheads\n");
    let _ = writeln!(s, "| component | fraction | paper |");
    let _ = writeln!(s, "|---|---|---|");
    let _ = writeln!(
        s,
        "| RM bus | {:.2}% | 1.8% |",
        model.bus_fraction() * 100.0
    );
    let _ = writeln!(
        s,
        "| RM processor | {:.2}% | 0.1% |",
        model.processor_fraction() * 100.0
    );
    let _ = writeln!(
        s,
        "| transfer tracks (of bank) | {:.2}% | 3.1% |",
        model.transfer_fraction_of_banks() * 100.0
    );
    let _ = writeln!(
        s,
        "| control logic | {:.2}% | ~1.0% |",
        model.control_fraction * 100.0
    );
    s
}

/// Renders the fabrication-process scaling as markdown.
pub fn fabrication(rows: &[(u32, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Section V-F — Per-gate energy vs fabrication node\n");
    let _ = writeln!(s, "| node (nm) | energy per gate (pJ) |");
    let _ = writeln!(s, "|---|---|");
    for (nm, pj) in rows {
        let _ = writeln!(s, "| {nm} | {pj:.6} |");
    }
    let _ = writeln!(s, "\nPaper anchors: 20 pJ at 1.0 um, 0.0008 pJ at 32 nm.");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{self, Scale};

    #[test]
    fn fig3_renders_all_kernels_and_the_summary() {
        let text = fig3(&figures::fig3(Scale::quick()));
        for kernel in [
            "2mm", "3mm", "gemm", "syrk", "syr2k", "atax", "bicg", "gesu", "mvt",
        ] {
            assert!(text.contains(kernel), "missing {kernel}");
        }
        assert!(text.contains("paper 47.6%"));
    }

    #[test]
    fn fig4_renders_shares_as_percentages() {
        let text = fig4(&figures::fig4());
        assert!(text.contains("| mul |"));
        assert!(text.contains('%'));
    }

    #[test]
    fn metric_table_renders_average_row() {
        let t = figures::fig17(Scale(0.05)).unwrap();
        let text = metric_table("t", "x", &t);
        assert!(text.contains("**average**"));
        assert!(text.contains("StPIM"));
    }

    #[test]
    fn static_sections_render() {
        assert!(area(&figures::area()).contains("RM bus"));
        let fab_text = fabrication(&figures::fabrication());
        assert!(fab_text.contains("32"));
        assert!(fab_text.contains("0.000800"));
    }

    #[test]
    fn table4_renders_errors() {
        let text = table4(&figures::table4());
        assert!(text.contains("gemm"));
        assert!(text.contains('%'));
    }
}
