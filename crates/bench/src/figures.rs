//! Structured regeneration of every evaluation table and figure.

use pim_baselines::cpu::CpuModel;
use pim_baselines::gpu::GpuModel;
use pim_baselines::platform::{dnn_end_to_end, Platform, PlatformKind, Workload};
use pim_device::area::AreaModel;
use pim_device::engine::EngineParams;
use pim_device::report::ExecReport;
use pim_device::{OptLevel, PimError, StreamPim, StreamPimConfig};
use pim_workloads::dnn::DnnModel;
use pim_workloads::polybench::{Kernel, KernelInstance};
use pim_workloads::trace::{table_iv, TraceRow};
use rm_core::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Problem-size scale for the experiment suite: `1.0` is the paper's full
/// size; smaller factors shrink every dimension proportionally (fast CI
/// runs; trends are preserved).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale(pub f64);

impl Scale {
    /// The paper's full problem sizes.
    pub fn full() -> Self {
        Scale(1.0)
    }

    /// A fast scale for tests (~1/10 linear dimensions).
    pub fn quick() -> Self {
        Scale(0.1)
    }

    /// The kernel instance at this scale (paper-size at exactly 1.0).
    pub fn instance(&self, kernel: Kernel) -> KernelInstance {
        if (self.0 - 1.0).abs() < 1e-12 {
            kernel.paper_instance()
        } else {
            kernel.scaled(self.0)
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::full()
    }
}

/// One row of Figure 3: host-platform breakdown fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Kernel name.
    pub kernel: String,
    /// Whether the paper groups it as a small workload.
    pub small: bool,
    /// Exposed-memory fraction of CPU (on RM) execution time (Fig 3a).
    pub cpu_mem_fraction: f64,
    /// Data-transfer fraction of GPU execution time (Fig 3b).
    pub gpu_transfer_fraction: f64,
}

/// Regenerates Figure 3 (CPU/GPU execution-time breakdown).
pub fn fig3(scale: Scale) -> Vec<Fig3Row> {
    let cpu = CpuModel::cpu_rm();
    let gpu = GpuModel::paper_default();
    Kernel::ALL
        .iter()
        .map(|&k| {
            let profile = scale.instance(k).profile();
            Fig3Row {
                kernel: k.name().to_string(),
                small: k.is_small(),
                cpu_mem_fraction: cpu.mem_fraction(&profile),
                gpu_transfer_fraction: gpu.transfer_fraction(&profile),
            }
        })
        .collect()
}

/// One row of Figure 4: CORUSCANT per-operation breakdown shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Operation name (`add`, `mul`, `dot`).
    pub op: String,
    /// Time shares `(read, write, shift, compute)`.
    pub time_shares: [f64; 4],
    /// Energy shares `(read, write, shift, compute)`.
    pub energy_shares: [f64; 4],
}

/// Regenerates Figure 4 (CORUSCANT operation breakdown).
pub fn fig4() -> Vec<Fig4Row> {
    use pim_baselines::coruscant::CoruscantModel;
    use pim_device::schedule::WorkCounts;
    let m = CoruscantModel::paper_default();
    let cases = [
        (
            "add",
            WorkCounts {
                word_muls: 0,
                word_adds: 1_000_000,
                elements_moved: 0,
            },
        ),
        (
            "mul",
            WorkCounts {
                word_muls: 1_000_000,
                word_adds: 0,
                elements_moved: 0,
            },
        ),
        (
            "dot",
            WorkCounts {
                word_muls: 1_000_000,
                word_adds: 1_000_000,
                elements_moved: 0,
            },
        ),
    ];
    cases
        .iter()
        .map(|(name, work)| {
            let r = m.run_work(work);
            let t = r.time.total_ns();
            let e = r.energy.total_pj();
            Fig4Row {
                op: name.to_string(),
                time_shares: [
                    r.time.read_ns / t,
                    r.time.write_ns / t,
                    r.time.shift_ns / t,
                    r.time.process_ns / t,
                ],
                energy_shares: [
                    r.energy.read_pj / e,
                    r.energy.write_pj / e,
                    r.energy.shift_pj / e,
                    r.energy.compute_pj / e,
                ],
            }
        })
        .collect()
}

/// Per-kernel metric values for a set of platforms, plus the average row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricTable {
    /// Platform order of the value columns.
    pub platforms: Vec<String>,
    /// `(kernel, value-per-platform)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Arithmetic mean across kernels per platform.
    pub averages: Vec<f64>,
}

impl MetricTable {
    /// The average value for a platform by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the table's platforms.
    pub fn average_of(&self, name: &str) -> f64 {
        let idx = self
            .platforms
            .iter()
            .position(|p| p == name)
            .unwrap_or_else(|| panic!("platform {name} not in table"));
        self.averages[idx]
    }
}

/// Per-kernel reports for every Figure 17/18 platform.
type PlatformRuns = Vec<(String, Vec<(PlatformKind, ExecReport)>)>;

/// Builds `kind`, optionally overriding the StreamPIM engine parameters
/// (fidelity-gate perturbations; `None` is the paper default).
fn build_platform(kind: PlatformKind, engine: Option<&EngineParams>) -> Result<Platform, PimError> {
    match engine {
        Some(e) => Platform::with_engine_params(kind, e),
        None => Platform::new(kind),
    }
}

/// Applies an optional engine override to a StreamPIM sweep configuration.
fn apply_engine(cfg: StreamPimConfig, engine: Option<&EngineParams>) -> StreamPimConfig {
    match engine {
        Some(e) => cfg.with_engine(*e),
        None => cfg,
    }
}

fn run_all_platforms(
    scale: Scale,
    engine: Option<&EngineParams>,
) -> Result<PlatformRuns, PimError> {
    let platforms: Vec<Platform> = PlatformKind::FIGURE_17
        .iter()
        .map(|&k| build_platform(k, engine))
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let workload = Workload::from_kernel(&scale.instance(kernel));
        let mut row = Vec::new();
        for p in &platforms {
            row.push((p.kind(), p.run(&workload)?));
        }
        out.push((kernel.name().to_string(), row));
    }
    Ok(out)
}

/// Regenerates Figure 17: per-kernel speedup of every platform over CPU-RM.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig17(scale: Scale) -> Result<MetricTable, PimError> {
    fig17_with(scale, None)
}

/// [`fig17`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig17_with(scale: Scale, engine: Option<&EngineParams>) -> Result<MetricTable, PimError> {
    let all = run_all_platforms(scale, engine)?;
    metric_table(&all, |reports| {
        let base = reports
            .iter()
            .find(|(k, _)| *k == PlatformKind::CpuRm)
            .expect("CPU-RM present")
            .1
            .total_ns();
        reports.iter().map(|(_, r)| base / r.total_ns()).collect()
    })
}

/// Regenerates Figure 18: per-kernel energy, normalized to StPIM
/// (values > 1 mean "consumes x times more energy than StPIM").
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig18(scale: Scale) -> Result<MetricTable, PimError> {
    fig18_with(scale, None)
}

/// [`fig18`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig18_with(scale: Scale, engine: Option<&EngineParams>) -> Result<MetricTable, PimError> {
    let all = run_all_platforms(scale, engine)?;
    metric_table(&all, |reports| {
        let stpim = reports
            .iter()
            .find(|(k, _)| *k == PlatformKind::StPim)
            .expect("StPIM present")
            .1
            .total_pj();
        reports.iter().map(|(_, r)| r.total_pj() / stpim).collect()
    })
}

fn metric_table(
    all: &PlatformRuns,
    metric: impl Fn(&[(PlatformKind, ExecReport)]) -> Vec<f64>,
) -> Result<MetricTable, PimError> {
    let platforms: Vec<String> = all[0].1.iter().map(|(k, _)| k.name().to_string()).collect();
    let rows: Vec<(String, Vec<f64>)> = all
        .iter()
        .map(|(name, reports)| (name.clone(), metric(reports)))
        .collect();
    let n = rows.len() as f64;
    let averages = (0..platforms.len())
        .map(|i| rows.iter().map(|(_, v)| v[i]).sum::<f64>() / n)
        .collect();
    Ok(MetricTable {
        platforms,
        rows,
        averages,
    })
}

/// One row of Figures 19/20: a normalized breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Kernel name.
    pub kernel: String,
    /// Platform name.
    pub platform: String,
    /// Shares `(read, write, shift, process, overlapped)` of total time or
    /// energy `(read, write, shift, compute, other)`.
    pub shares: [f64; 5],
}

/// Regenerates Figure 19: execution-time breakdown of CORUSCANT vs StPIM.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig19(scale: Scale) -> Result<Vec<BreakdownRow>, PimError> {
    breakdown(scale, |r| {
        let t = r.time.total_ns();
        [
            r.time.read_ns / t,
            r.time.write_ns / t,
            r.time.shift_ns / t,
            r.time.process_ns / t,
            r.time.overlapped_ns / t,
        ]
    })
}

/// Regenerates Figure 20: energy breakdown of CORUSCANT vs StPIM.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig20(scale: Scale) -> Result<Vec<BreakdownRow>, PimError> {
    breakdown(scale, |r| {
        let e = r.energy.total_pj();
        [
            r.energy.read_pj / e,
            r.energy.write_pj / e,
            r.energy.shift_pj / e,
            r.energy.compute_pj / e,
            r.energy.other_pj / e,
        ]
    })
}

fn breakdown(
    scale: Scale,
    shares: impl Fn(&ExecReport) -> [f64; 5],
) -> Result<Vec<BreakdownRow>, PimError> {
    let platforms = [PlatformKind::Coruscant, PlatformKind::StPim];
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let workload = Workload::from_kernel(&scale.instance(kernel));
        for kind in platforms {
            let r = Platform::new(kind)?.run(&workload)?;
            rows.push(BreakdownRow {
                kernel: kernel.name().to_string(),
                platform: kind.name().to_string(),
                shares: shares(&r),
            });
        }
    }
    Ok(rows)
}

/// Regenerates Figure 21: average speedup vs the 128-subarray baseline for
/// 128/256/512/1024 PIM subarrays.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig21(scale: Scale) -> Result<Vec<(u32, f64)>, PimError> {
    fig21_with(scale, None)
}

/// [`fig21`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig21_with(
    scale: Scale,
    engine: Option<&EngineParams>,
) -> Result<Vec<(u32, f64)>, PimError> {
    let counts = [128u32, 256, 512, 1024];
    // Per-kernel times per count.
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); counts.len()];
    for kernel in Kernel::ALL {
        let workload = Workload::from_kernel(&scale.instance(kernel));
        for (i, &count) in counts.iter().enumerate() {
            let cfg = StreamPimConfig::paper_default().with_pim_subarrays(count);
            let p = Platform::stream_pim(apply_engine(cfg, engine))?;
            totals[i].push(p.run(&workload)?.total_ns());
        }
    }
    // Speedup vs 128, averaged across kernels.
    let n = Kernel::ALL.len();
    Ok(counts
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let avg = (0..n).map(|k| totals[0][k] / totals[i][k]).sum::<f64>() / n as f64;
            (count, avg)
        })
        .collect())
}

/// Regenerates Figure 22: average speedup of each optimization level over
/// `base`.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig22(scale: Scale) -> Result<Vec<(&'static str, f64)>, PimError> {
    fig22_with(scale, None)
}

/// [`fig22`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig22_with(
    scale: Scale,
    engine: Option<&EngineParams>,
) -> Result<Vec<(&'static str, f64)>, PimError> {
    let levels = [
        ("base", OptLevel::Base),
        ("distribute", OptLevel::Distribute),
        ("unblock", OptLevel::Unblock),
    ];
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); levels.len()];
    for kernel in Kernel::ALL {
        let workload = Workload::from_kernel(&scale.instance(kernel));
        for (i, &(_, opt)) in levels.iter().enumerate() {
            let cfg = StreamPimConfig::paper_default().with_opt(opt);
            let p = Platform::stream_pim(apply_engine(cfg, engine))?;
            totals[i].push(p.run(&workload)?.total_ns());
        }
    }
    let n = Kernel::ALL.len();
    Ok(levels
        .iter()
        .enumerate()
        .map(|(i, &(name, _))| {
            let avg = (0..n).map(|k| totals[0][k] / totals[i][k]).sum::<f64>() / n as f64;
            (name, avg)
        })
        .collect())
}

/// One row of Figure 23: DNN end-to-end speedup vs CPU-DRAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig23Row {
    /// Model name.
    pub model: String,
    /// Platform name.
    pub platform: String,
    /// Speedup over the CPU-DRAM end-to-end time.
    pub speedup: f64,
}

/// Regenerates Figure 23 (MLP and BERT end-to-end).
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig23() -> Result<Vec<Fig23Row>, PimError> {
    fig23_with(None)
}

/// [`fig23`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn fig23_with(engine: Option<&EngineParams>) -> Result<Vec<Fig23Row>, PimError> {
    let platforms = [
        PlatformKind::CpuDram,
        PlatformKind::Coruscant,
        PlatformKind::StPim,
    ];
    let mut rows = Vec::new();
    for model in [DnnModel::mlp(), DnnModel::bert()] {
        let cpu = Platform::new(PlatformKind::CpuDram)?;
        let base = dnn_end_to_end(&cpu, &model)?.total_ns();
        for kind in platforms {
            let p = build_platform(kind, engine)?;
            let t = dnn_end_to_end(&p, &model)?.total_ns();
            rows.push(Fig23Row {
                model: model.name.clone(),
                platform: kind.name().to_string(),
                speedup: base / t,
            });
        }
    }
    Ok(rows)
}

/// Regenerates Table IV (VPC counts per kernel).
pub fn table4() -> Vec<TraceRow> {
    table_iv()
}

/// One row of Table V: bus-segment-size sensitivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Segment size in domains.
    pub segment: u32,
    /// Average execution-time overhead vs the 1024 baseline, percent.
    pub time_overhead_pct: f64,
    /// Average energy delta vs the 1024 baseline, percent.
    pub energy_delta_pct: f64,
}

/// Regenerates Table V.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn table5(scale: Scale) -> Result<Vec<Table5Row>, PimError> {
    table5_with(scale, None)
}

/// [`table5`] with an optional StreamPIM engine-parameter override.
///
/// # Errors
///
/// Propagates platform configuration/pricing errors.
pub fn table5_with(
    scale: Scale,
    engine: Option<&EngineParams>,
) -> Result<Vec<Table5Row>, PimError> {
    let segments = [64u32, 256, 512, 1024];
    let mut time: Vec<Vec<f64>> = vec![Vec::new(); segments.len()];
    let mut energy: Vec<Vec<f64>> = vec![Vec::new(); segments.len()];
    for kernel in Kernel::ALL {
        let workload = Workload::from_kernel(&scale.instance(kernel));
        for (i, &seg) in segments.iter().enumerate() {
            let cfg = StreamPimConfig::paper_default().with_segment_domains(seg);
            let r = Platform::stream_pim(apply_engine(cfg, engine))?.run(&workload)?;
            time[i].push(r.total_ns());
            energy[i].push(r.total_pj());
        }
    }
    let n = Kernel::ALL.len();
    let base_idx = segments.len() - 1;
    Ok(segments
        .iter()
        .enumerate()
        .map(|(i, &segment)| {
            let t = (0..n)
                .map(|k| time[i][k] / time[base_idx][k] - 1.0)
                .sum::<f64>()
                / n as f64;
            let e = (0..n)
                .map(|k| energy[i][k] / energy[base_idx][k] - 1.0)
                .sum::<f64>()
                / n as f64;
            Table5Row {
                segment,
                time_overhead_pct: t * 100.0,
                energy_delta_pct: e * 100.0,
            }
        })
        .collect())
}

/// Regenerates the cluster single-device-equivalence metrics: a one-device
/// `pim-cluster` run at batch 1 against the plain single-device platform on
/// the same configuration. The scale-out layer's contract (DESIGN.md §17)
/// is that `Cluster{n:1}` routes through the exact single-device code path,
/// so all three metrics are frozen at exactly `1.0`:
///
/// * `n1_time_ratio` — cluster simulated time over platform simulated time;
/// * `n1_energy_ratio` — cluster energy over platform energy;
/// * `n1_identical` — `1.0` only when the *serialized* reports are
///   byte-equal (strictly stronger than the two ratios).
///
/// # Errors
///
/// Propagates platform/cluster configuration and pricing errors.
pub fn cluster_equivalence() -> Result<Vec<(&'static str, f64)>, PimError> {
    cluster_equivalence_with(None)
}

/// [`cluster_equivalence`] with an optional StreamPIM engine-parameter
/// override (applied to both sides, so the frozen `1.0` values must hold
/// under perturbation too).
///
/// # Errors
///
/// Propagates platform/cluster configuration and pricing errors.
pub fn cluster_equivalence_with(
    engine: Option<&EngineParams>,
) -> Result<Vec<(&'static str, f64)>, PimError> {
    use pim_cluster::{Cluster, ClusterConfig, PartitionStrategy};
    let workload = pim_workloads::spec::WorkloadSpec::MatMul {
        m: 192,
        k: 96,
        n: 64,
    };
    let device = apply_engine(StreamPimConfig::paper_default(), engine);
    let single = Platform::stream_pim(device.clone())?.run(&Workload::from_spec(&workload))?;
    let mut config = ClusterConfig::paper_default(1);
    config.device = device;
    let clustered = Cluster::new(config)?
        .run(&workload, PartitionStrategy::Data, 1)?
        .combined;
    let identical = serde_json::to_string(&clustered).expect("report serializes")
        == serde_json::to_string(&single).expect("report serializes");
    Ok(vec![
        ("n1_time_ratio", clustered.total_ns() / single.total_ns()),
        ("n1_energy_ratio", clustered.total_pj() / single.total_pj()),
        ("n1_identical", if identical { 1.0 } else { 0.0 }),
    ])
}

/// Regenerates the §V-G area-overhead numbers.
pub fn area() -> AreaModel {
    AreaModel::new(&DeviceConfig::paper_default())
}

/// Regenerates the §V-F fabrication-process energy scaling: per-gate energy
/// at representative nodes.
pub fn fabrication() -> Vec<(u32, f64)> {
    use dw_logic::ProcessNode;
    [1000u32, 180, 90, 65, 45, 32]
        .iter()
        .map(|&nm| (nm, ProcessNode::nm(nm).gate_energy_pj()))
        .collect()
}

/// Validates a StreamPIM config exists for doc-tests and sanity checks.
///
/// # Errors
///
/// Never fails for the paper default.
pub fn default_device() -> Result<StreamPim, PimError> {
    StreamPim::new(StreamPimConfig::paper_default())
}
