//! Benchmarks of the full platform comparison path: one kernel priced on
//! each evaluated platform (a Figure 17 column), at a reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_baselines::platform::{Platform, PlatformKind, Workload};
use pim_workloads::polybench::Kernel;
use std::hint::black_box;

fn bench_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform_price_gemm_0.1");
    group.sample_size(10);
    let workload = Workload::from_kernel(&Kernel::Gemm.scaled(0.1));
    for kind in PlatformKind::FIGURE_17 {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let platform = Platform::new(kind).unwrap();
                b.iter(|| platform.run(black_box(&workload)).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_kernels_on_stpim(c: &mut Criterion) {
    let mut group = c.benchmark_group("stpim_price_kernel_0.1");
    group.sample_size(10);
    let platform = Platform::new(PlatformKind::StPim).unwrap();
    for kernel in [Kernel::Gemm, Kernel::ThreeMm, Kernel::Atax, Kernel::Mvt] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &kernel| {
                let workload = Workload::from_kernel(&kernel.scaled(0.1));
                b.iter(|| platform.run(black_box(&workload)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = platforms;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_platforms, bench_kernels_on_stpim
}
criterion_main!(platforms);
