//! Micro-benchmarks of the RM processor: bit-accurate dot products and the
//! closed-form pipeline model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rm_proc::{PipelineModel, ProcOp, RmProcessor};
use std::hint::black_box;

fn bench_functional_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("processor_dot_bitlevel");
    for n in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut proc = RmProcessor::new(8, 2);
            let a: Vec<u64> = (0..n as u64).map(|i| i % 256).collect();
            let v: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 256).collect();
            b.iter(|| proc.dot(black_box(&a), black_box(&v)))
        });
    }
    group.finish();
}

fn bench_pipeline_model(c: &mut Criterion) {
    c.bench_function("pipeline_cost_dot_2000", |b| {
        let model = PipelineModel::paper_default();
        b.iter(|| model.cost(black_box(ProcOp::DotProduct { n: 2000 })))
    });
}

fn bench_functional_vadd(c: &mut Criterion) {
    c.bench_function("processor_vadd_1024", |b| {
        let mut proc = RmProcessor::new(8, 2);
        let a: Vec<u64> = (0..1024u64).map(|i| i % 256).collect();
        let v = a.clone();
        b.iter(|| proc.vadd(black_box(&a), black_box(&v)))
    });
}

criterion_group! {
    name = processor;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_functional_dot,
    bench_pipeline_model,
    bench_functional_vadd
}
criterion_main!(processor);
