//! Benchmarks of the execution engine and task lowering: how fast the
//! analytic simulator prices work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_device::matrix::Matrix;
use pim_device::task::{MatrixOp, PimTask};
use pim_device::{OptLevel, StreamPim, StreamPimConfig};
use std::hint::black_box;

fn matmul_task(n: usize) -> PimTask {
    let mut task = PimTask::new();
    let a = task.add_matrix(&Matrix::zeros(n, n)).unwrap();
    let b = task.add_matrix(&Matrix::zeros(n, n)).unwrap();
    let c = task.add_output(n, n).unwrap();
    task.add_operation(MatrixOp::MatMul { a, b, dst: c })
        .unwrap();
    task
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_lowering");
    group.sample_size(20);
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let device = StreamPim::new(StreamPimConfig::paper_default()).unwrap();
            let task = matmul_task(n);
            b.iter(|| task.lower(black_box(&device)).unwrap())
        });
    }
    group.finish();
}

fn bench_pricing(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_pricing");
    group.sample_size(20);
    for n in [128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let device = StreamPim::new(StreamPimConfig::paper_default()).unwrap();
            let schedule = matmul_task(n).lower(&device).unwrap();
            b.iter(|| device.execute(black_box(&schedule)))
        });
    }
    group.finish();
}

fn bench_opt_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_opt_levels");
    group.sample_size(20);
    for opt in [OptLevel::Base, OptLevel::Distribute, OptLevel::Unblock] {
        group.bench_with_input(
            BenchmarkId::new("price", format!("{opt:?}")),
            &opt,
            |b, &opt| {
                let device =
                    StreamPim::new(StreamPimConfig::paper_default().with_opt(opt)).unwrap();
                let schedule = matmul_task(256).lower(&device).unwrap();
                b.iter(|| device.execute(black_box(&schedule)))
            },
        );
    }
    group.finish();
}

fn bench_functional_run(c: &mut Criterion) {
    c.bench_function("task_functional_run_32", |b| {
        let device = StreamPim::new(StreamPimConfig::paper_default()).unwrap();
        let a = Matrix::from_fn(32, 32, |i, j| ((i * j) % 13) as i64);
        let mut task = PimTask::new();
        let ha = task.add_matrix(&a).unwrap();
        let hb = task.add_matrix(&a).unwrap();
        let hc = task.add_output(32, 32).unwrap();
        task.add_operation(MatrixOp::MatMul {
            a: ha,
            b: hb,
            dst: hc,
        })
        .unwrap();
        b.iter(|| task.run(black_box(&device)).unwrap())
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_lowering,
    bench_pricing,
    bench_opt_levels,
    bench_functional_run
}
criterion_main!(engine);
