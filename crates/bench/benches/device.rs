//! Device-model micro-benchmarks: word-packed bit-plane kernels vs the
//! retained scalar reference (`rm_core::reference`).
//!
//! The `device` group measures the four hot paths the packed layout
//! accelerates — nanowire shifts, 64-track mat row reads and writes, and a
//! GEMV-shaped dot product through the processor datapath — each in a
//! `packed` and a `scalar` variant. The `bench_device` binary reports the
//! same comparisons as machine-readable medians (`BENCH_device.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use rm_core::reference::{ScalarMat, ScalarNanowire};
use rm_core::{Mat, Nanowire, ShiftDir};
use rm_proc::RmProcessor;
use std::hint::black_box;

/// 64 save tracks, 32 transfer tracks, 64 rows, 4 ports per track.
fn packed_mat() -> Mat {
    Mat::new(64, 32, 64, 4)
}

fn scalar_mat() -> ScalarMat {
    ScalarMat::new(64, 32, 64, 4)
}

fn gemv_operands() -> (Vec<u64>, Vec<u64>) {
    let a: Vec<u64> = (0..256).map(|i| (i * 37 + 11) % 256).collect();
    let b: Vec<u64> = (0..256).map(|i| (i * 91 + 13) % 256).collect();
    (a, b)
}

fn bench_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("device/shift");
    group.bench_function("packed", |bch| {
        let mut wire = Nanowire::with_even_ports(512, 8);
        bch.iter(|| {
            wire.shift(ShiftDir::Right, black_box(1)).unwrap();
            wire.shift(ShiftDir::Left, black_box(1)).unwrap();
        })
    });
    group.bench_function("scalar", |bch| {
        let mut wire = ScalarNanowire::with_even_ports(512, 8);
        bch.iter(|| {
            wire.shift(ShiftDir::Right, black_box(1)).unwrap();
            wire.shift(ShiftDir::Left, black_box(1)).unwrap();
        })
    });
    group.finish();
}

fn bench_read_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("device/read_row");
    let data = [0xA5u8; 8];
    group.bench_function("packed", |bch| {
        let mut mat = packed_mat();
        let mut buf = [0u8; 8];
        for r in 0..64 {
            mat.write_row(r, &data).unwrap();
        }
        let mut r = 0;
        bch.iter(|| {
            mat.read_row_into(black_box(r), &mut buf).unwrap();
            r = (r + 17) % 64;
        })
    });
    group.bench_function("scalar", |bch| {
        let mut mat = scalar_mat();
        for r in 0..64 {
            mat.write_row(r, &data).unwrap();
        }
        let mut r = 0;
        bch.iter(|| {
            black_box(mat.read_row(black_box(r)).unwrap());
            r = (r + 17) % 64;
        })
    });
    group.finish();
}

fn bench_write_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("device/write_row");
    let data = [0x3Cu8; 8];
    group.bench_function("packed", |bch| {
        let mut mat = packed_mat();
        let mut r = 0;
        bch.iter(|| {
            mat.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        })
    });
    group.bench_function("scalar", |bch| {
        let mut mat = scalar_mat();
        let mut r = 0;
        bch.iter(|| {
            mat.write_row(black_box(r), &data).unwrap();
            r = (r + 17) % 64;
        })
    });
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("device/gemv");
    group.sample_size(10);
    let (a, b) = gemv_operands();
    group.bench_function("packed", |bch| {
        let mut proc = RmProcessor::new(8, 2);
        bch.iter(|| black_box(proc.dot(black_box(&a), black_box(&b))))
    });
    group.bench_function("scalar", |bch| {
        let mut proc = RmProcessor::new(8, 2);
        bch.iter(|| black_box(proc.dot_scalar(black_box(&a), black_box(&b))))
    });
    group.finish();
}

criterion_group!(
    device,
    bench_shift,
    bench_read_row,
    bench_write_row,
    bench_gemv
);
criterion_main!(device);
