//! Micro-benchmarks of the segmented RM bus: functional cycle stepping and
//! the closed-form cost models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rm_bus::{BusModel, SegmentedBus, SegmentedBusModel};
use std::hint::black_box;

fn bench_functional_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmented_bus_stream");
    for n_words in [16u64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n_words), &n_words, |b, &n| {
            b.iter(|| {
                let mut bus = SegmentedBus::new(32);
                let mut sent = 0u64;
                let mut delivered = 0u64;
                while delivered < n {
                    if sent < n && bus.try_inject(0, sent, 31) {
                        sent += 1;
                    }
                    delivered += bus.cycle().len() as u64;
                }
                black_box(delivered)
            })
        });
    }
    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    c.bench_function("bus_model_stream_cost", |b| {
        let model = BusModel::domain_wall_default();
        b.iter(|| model.stream_cost(black_box(10_000), 10.0))
    });
    c.bench_function("segment_model_cycles", |b| {
        let model = SegmentedBusModel::with_segment_domains(64);
        b.iter(|| model.stream_cycles(black_box(100_000)))
    });
}

criterion_group! {
    name = bus;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_functional_stream, bench_cost_models
}
criterion_main!(bus);
