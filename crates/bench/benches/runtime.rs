//! Batch-runtime throughput: jobs/sec across worker counts, and the effect
//! of a warm schedule cache.
//!
//! One iteration executes a full mixed batch, so ns/iter is directly
//! comparable across worker counts (speedup requires a multi-core host;
//! on one core the extra workers only add scheduling overhead, which the
//! job sizes below are chosen to keep small).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_baselines::PlatformKind;
use pim_runtime::{Job, Runtime, RuntimeConfig};
use pim_trace::{Collector, NullSink, TraceSink};
use pim_workloads::{Kernel, WorkloadSpec};
use std::hint::black_box;
use std::sync::Arc;

/// A mixed batch across kernels and platforms (small instances so one
/// bench iteration executes a full batch).
fn batch() -> Vec<Job> {
    let kernels = [Kernel::Atax, Kernel::Bicg, Kernel::Gesummv, Kernel::Mvt];
    let platforms = [
        PlatformKind::StPim,
        PlatformKind::StPimE,
        PlatformKind::Coruscant,
        PlatformKind::CpuRm,
    ];
    kernels
        .into_iter()
        .flat_map(|k| {
            platforms
                .into_iter()
                .map(move |p| Job::new(WorkloadSpec::polybench(k, 0.05), p))
        })
        .collect()
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batch_workers");
    group.sample_size(10);
    let jobs = batch();
    let n_cpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut worker_counts = vec![1usize, 4, n_cpu];
    worker_counts.sort_unstable();
    worker_counts.dedup(); // n_cpu may coincide with 1 or 4
    for workers in worker_counts {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            // Fresh runtime per iteration: a cold cache every time, so the
            // measurement isolates worker scaling from cache warmth.
            b.iter(|| {
                let runtime = Runtime::new(RuntimeConfig {
                    workers: w,
                    cache_enabled: true,
                    ..RuntimeConfig::default()
                });
                black_box(runtime.run_batch(black_box(&jobs)))
            })
        });
    }
    group.finish();
}

fn bench_cache_warmth(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batch_cache");
    group.sample_size(10);
    let jobs = batch();

    group.bench_function("cold", |b| {
        b.iter(|| {
            let runtime = Runtime::new(RuntimeConfig {
                workers: 4,
                cache_enabled: true,
                ..RuntimeConfig::default()
            });
            black_box(runtime.run_batch(black_box(&jobs)))
        })
    });

    group.bench_function("warm", |b| {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 4,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        runtime.run_batch(&jobs); // prime the cache
        assert!(runtime.cache().misses() > 0);
        b.iter(|| black_box(runtime.run_batch(black_box(&jobs))));
        assert!(runtime.cache().hits() > 0, "warm runs hit the cache");
    });

    group.bench_function("disabled", |b| {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 4,
            cache_enabled: false,
            ..RuntimeConfig::default()
        });
        b.iter(|| black_box(runtime.run_batch(black_box(&jobs))));
    });

    group.finish();
}

/// Tracing overhead: the disabled-sink path must be free (the <2%
/// acceptance budget of the observability layer), and even a live
/// collector should stay cheap relative to the simulations themselves.
fn bench_tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batch_tracing");
    group.sample_size(10);
    let jobs = batch();
    let cfg = RuntimeConfig {
        workers: 4,
        cache_enabled: true,
        ..RuntimeConfig::default()
    };

    group.bench_function("untraced", |b| {
        let runtime = Runtime::new(cfg.clone());
        runtime.run_batch(&jobs); // warm cache: isolate steady-state cost
        b.iter(|| black_box(runtime.run_batch(black_box(&jobs))));
    });

    group.bench_function("null_sink", |b| {
        let runtime = Runtime::with_sink(cfg.clone(), Arc::new(NullSink));
        runtime.run_batch(&jobs);
        b.iter(|| black_box(runtime.run_batch(black_box(&jobs))));
    });

    group.bench_function("collector", |b| {
        let runtime = Runtime::with_sink(
            cfg.clone(),
            Arc::new(Collector::new()) as Arc<dyn TraceSink>,
        );
        runtime.run_batch(&jobs);
        b.iter(|| black_box(runtime.run_batch(black_box(&jobs))));
    });

    group.finish();
}

criterion_group! {
    name = runtime;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_worker_scaling,
    bench_cache_warmth,
    bench_tracing_overhead
}
criterion_main!(runtime);
