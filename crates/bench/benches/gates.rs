//! Micro-benchmarks of the domain-wall logic substrate: how fast the
//! bit-accurate structural models simulate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dw_logic::{
    AdderTree, CircleAdder, DuplicatorBank, FullAdder, GateTally, Multiplier, RippleCarryAdder,
};
use std::hint::black_box;

fn bench_full_adder(c: &mut Criterion) {
    c.bench_function("full_adder_1bit", |b| {
        let mut tally = GateTally::new();
        b.iter(|| {
            FullAdder.add(
                black_box(true),
                black_box(false),
                black_box(true),
                &mut tally,
            )
        })
    });
}

fn bench_ripple_adder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ripple_adder");
    for width in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            let adder = RippleCarryAdder::new(w);
            let mut tally = GateTally::new();
            b.iter(|| adder.add(black_box(0xAB), black_box(0x55), false, &mut tally))
        });
    }
    group.finish();
}

fn bench_multiplier(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplier");
    for width in [4u32, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            let m = Multiplier::new(w);
            let mut tally = GateTally::new();
            let mask = (1u64 << w) - 1;
            b.iter(|| {
                m.multiply(
                    black_box(0xA5A5 & mask),
                    black_box(0x5A5A & mask),
                    &mut tally,
                )
            })
        });
    }
    group.finish();
}

fn bench_adder_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("adder_tree_sum");
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let tree = AdderTree::new(16);
            let ops: Vec<u64> = (0..n as u64).collect();
            let mut tally = GateTally::new();
            b.iter(|| tree.sum(black_box(&ops), &mut tally))
        });
    }
    group.finish();
}

fn bench_duplicator_bank(c: &mut Criterion) {
    c.bench_function("duplicator_bank_8_replicas", |b| {
        let mut bank = DuplicatorBank::new(2, 8);
        let mut tally = GateTally::new();
        b.iter(|| bank.replicate(black_box(0xA5), 8, &mut tally))
    });
}

fn bench_circle_adder(c: &mut Criterion) {
    c.bench_function("circle_adder_accumulate", |b| {
        let mut acc = CircleAdder::new(32);
        let mut tally = GateTally::new();
        b.iter(|| acc.accumulate(black_box(12345), &mut tally))
    });
}

criterion_group! {
    name = gates;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20);
    targets = bench_full_adder,
    bench_ripple_adder,
    bench_multiplier,
    bench_adder_tree,
    bench_duplicator_bank,
    bench_circle_adder
}
criterion_main!(gates);
