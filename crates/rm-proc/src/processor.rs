//! Bit-accurate functional datapath of the RM processor.
//!
//! Wires the `dw-logic` structures together exactly as Figure 11 describes:
//! duplicator bank → multiplier (partial products) → adder tree → circle
//! adder. Every gate traversal is tallied, so small-scale runs double as
//! energy ground truth for the closed-form model.

use crate::op::ProcOp;
use crate::pipeline::PipelineModel;
use dw_logic::adder_tree::AdderTree;
use dw_logic::circle_adder::CircleAdder;
use dw_logic::cost::GateTally;
use dw_logic::duplicator::DuplicatorBank;
use dw_logic::multiplier::Multiplier;

/// Caller-provided scratch for the processor's vector hot paths.
///
/// Holds the intermediate product stream of [`RmProcessor::dot_with`] so a
/// caller looping over many rows (or a shard of a parallel run) reuses one
/// buffer instead of allocating per call. Scratch lives *outside* the
/// processor on purpose: differential tests compare whole processors with
/// `==`, and transient buffers must not participate in that state.
#[derive(Debug, Clone, Default)]
pub struct ProcScratch {
    products: Vec<u64>,
}

impl ProcScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        ProcScratch::default()
    }
}

/// A functional RM processor for `width`-bit elements.
///
/// The accumulator is 64-bit (wrapping), comfortably holding dot products of
/// any realistic vector length of `width ≤ 16` elements.
///
/// ```
/// use rm_proc::RmProcessor;
///
/// let mut proc = RmProcessor::new(8, 2);
/// let (result, tally) = proc.dot(&[1, 2, 3], &[4, 5, 6]);
/// assert_eq!(result, 32);
/// assert!(tally.total() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmProcessor {
    width: u32,
    duplicators: DuplicatorBank,
    multiplier: Multiplier,
    product_tree: AdderTree,
    circle: CircleAdder,
    ops_executed: u64,
}

impl RmProcessor {
    /// Creates a processor for `width`-bit elements with `duplicators`
    /// duplicator units.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=16` or `duplicators` is zero.
    pub fn new(width: u32, duplicators: u32) -> Self {
        assert!(
            (1..=16).contains(&width),
            "functional processor supports widths 1..=16"
        );
        RmProcessor {
            width,
            duplicators: DuplicatorBank::new(duplicators, width),
            multiplier: Multiplier::new(width),
            product_tree: AdderTree::new(2 * width),
            circle: CircleAdder::new(63),
            ops_executed: 0,
        }
    }

    /// Element width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Vector operations executed so far.
    #[inline]
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// One scalar multiplication through stages 1-3, returning the exact
    /// `2*width`-bit product.
    pub fn scalar_mul(&mut self, a: u64, b: u64, tally: &mut GateTally) -> u64 {
        // Stage 2a: the duplicator bank replicates `a` once per bit of `b`.
        let (replicas, _cycles) = self.duplicators.replicate(a, self.width as usize, tally);
        // Stage 2b: AND replicas against the bits of `b`.
        let pps = self
            .multiplier
            .partial_products(&replicas, b & self.mask(), tally);
        // Stage 3: the adder tree sums the partial products.
        self.product_tree.sum(&pps, tally)
    }

    /// Dot product of two element slices (values masked to `width` bits).
    ///
    /// Runs the wide word-group datapath: the duplicator bank accounts all
    /// replications in bulk, the multiplier evaluates up to
    /// [`rm_core::wide::GROUP_LANES`] scalar products per plane-group gate
    /// op, and the circle adder accumulates the product stream in one pass.
    /// Results, gate tallies, and unit state are identical to
    /// [`Self::dot_words`] and [`Self::dot_scalar`].
    ///
    /// Returns the result and the accumulated gate tally.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&mut self, a: &[u64], b: &[u64]) -> (u64, GateTally) {
        self.dot_probed(a, b, &rm_core::NullProbe, "proc")
    }

    /// [`Self::dot`] with per-stage attribution: the gate-op delta of each
    /// pipeline stage is recorded on `probe` under `{prefix}/duplicator`
    /// (stage 2a), `{prefix}/multiplier` (stages 2b-3: partial products and
    /// the product adder tree, whose tallies are fused in the word path) and
    /// `{prefix}/adder_tree` (stage 4: the circle-adder accumulation).
    /// Result, tally, and unit state are identical to the unprobed call.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_probed(
        &mut self,
        a: &[u64],
        b: &[u64],
        probe: &dyn rm_core::Probe,
        prefix: &str,
    ) -> (u64, GateTally) {
        self.dot_probed_with(a, b, probe, prefix, &mut ProcScratch::new())
    }

    /// [`Self::dot`] with caller-provided scratch: the intermediate product
    /// stream lands in `scratch` instead of a fresh allocation, so per-row
    /// callers (and allocation-free shards) reuse one buffer. Result, tally,
    /// and unit state are identical to [`Self::dot`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_with(
        &mut self,
        a: &[u64],
        b: &[u64],
        scratch: &mut ProcScratch,
    ) -> (u64, GateTally) {
        self.dot_probed_with(a, b, &rm_core::NullProbe, "proc", scratch)
    }

    /// [`Self::dot_probed`] with caller-provided scratch (see
    /// [`Self::dot_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_probed_with(
        &mut self,
        a: &[u64],
        b: &[u64],
        probe: &dyn rm_core::Probe,
        prefix: &str,
        scratch: &mut ProcScratch,
    ) -> (u64, GateTally) {
        assert_eq!(a.len(), b.len(), "dot product needs equal-length vectors");
        let mut tally = GateTally::new();
        self.circle.reset();
        // Stage 2a: one replicate call per element, accounted in bulk.
        self.duplicators
            .replicate_bulk(self.width as usize, a.len() as u64, &mut tally);
        let after_dup = tally.total();
        // Stages 2b-3: plane-form partial products and adder tree, 64
        // elements per gate word. Operands are masked inside the transpose.
        scratch.products.clear();
        self.multiplier
            .multiply_many_into(a, b, &mut tally, &mut scratch.products);
        let after_mul = tally.total();
        // Stage 4: the circle adder accumulates the product stream.
        self.circle.accumulate_many(&scratch.products, &mut tally);
        let after_acc = tally.total();
        self.ops_executed += 1;
        if probe.enabled() {
            record_stage(probe, prefix, "duplicator", after_dup);
            record_stage(probe, prefix, "multiplier", after_mul - after_dup);
            record_stage(probe, prefix, "adder_tree", after_acc - after_mul);
        }
        (self.circle.take_result(), tally)
    }

    /// Single-word reference datapath for [`Self::dot`]: same bulk staging,
    /// but the multiplier evaluates one 64-lane word per gate op
    /// ([`Multiplier::multiply_many_words_into`]) instead of a wide
    /// word-group. Retained for differential tests and as the bench
    /// comparison point for the wide path; must match [`Self::dot`]
    /// bit-for-bit in result, tally, and unit state.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_words(&mut self, a: &[u64], b: &[u64]) -> (u64, GateTally) {
        assert_eq!(a.len(), b.len(), "dot product needs equal-length vectors");
        let mut tally = GateTally::new();
        self.circle.reset();
        self.duplicators
            .replicate_bulk(self.width as usize, a.len() as u64, &mut tally);
        let mut products = Vec::new();
        self.multiplier
            .multiply_many_words_into(a, b, &mut tally, &mut products);
        self.circle.accumulate_many(&products, &mut tally);
        self.ops_executed += 1;
        (self.circle.take_result(), tally)
    }

    /// Serial reference datapath for [`Self::dot`]: one element at a time
    /// through duplicators → multiplier → tree → circle adder. Retained for
    /// differential tests; the word and wide paths must match it bit-for-bit
    /// in result, tally, and unit state.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_scalar(&mut self, a: &[u64], b: &[u64]) -> (u64, GateTally) {
        assert_eq!(a.len(), b.len(), "dot product needs equal-length vectors");
        let mut tally = GateTally::new();
        self.circle.reset();
        for (&x, &y) in a.iter().zip(b) {
            let product = self.scalar_mul(x & self.mask(), y & self.mask(), &mut tally);
            // Stage 4: the circle adder accumulates.
            self.circle.accumulate(product, &mut tally);
        }
        self.ops_executed += 1;
        (self.circle.take_result(), tally)
    }

    /// Element-wise vector addition (stages 1-3 bypassed; circle adder in
    /// scalar mode). Sums wrap at `width + 1` bits — the carry-out travels
    /// with the result, as in the ripple adder.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn vadd(&mut self, a: &[u64], b: &[u64]) -> (Vec<u64>, GateTally) {
        self.vadd_probed(a, b, &rm_core::NullProbe, "proc")
    }

    /// [`Self::vadd`] with attribution: every gate op lands on
    /// `{prefix}/adder_tree` (the addition path uses the circle adder in
    /// scalar mode only). Behaviour is identical to the unprobed call.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn vadd_probed(
        &mut self,
        a: &[u64],
        b: &[u64],
        probe: &dyn rm_core::Probe,
        prefix: &str,
    ) -> (Vec<u64>, GateTally) {
        assert_eq!(
            a.len(),
            b.len(),
            "vector addition needs equal-length vectors"
        );
        let mut tally = GateTally::new();
        let av: Vec<u64> = a.iter().map(|&x| x & self.mask()).collect();
        let bv: Vec<u64> = b.iter().map(|&y| y & self.mask()).collect();
        let out = self
            .circle
            .scalar_add_many(&av, &bv, &mut tally)
            .into_iter()
            .map(|(sum, carry)| sum | ((carry as u64) << self.width))
            .collect();
        self.ops_executed += 1;
        if probe.enabled() {
            record_stage(probe, prefix, "adder_tree", tally.total());
        }
        (out, tally)
    }

    /// Serial reference for [`Self::vadd`], retained for differential tests.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn vadd_scalar(&mut self, a: &[u64], b: &[u64]) -> (Vec<u64>, GateTally) {
        assert_eq!(
            a.len(),
            b.len(),
            "vector addition needs equal-length vectors"
        );
        let mut tally = GateTally::new();
        let out = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let (sum, carry) =
                    self.circle
                        .scalar_add(x & self.mask(), y & self.mask(), &mut tally);
                sum | ((carry as u64) << self.width)
            })
            .collect();
        self.ops_executed += 1;
        (out, tally)
    }

    /// Scalar-vector multiplication: duplicates `s` repeatedly and pipelines
    /// scalar multiplications (circle adder bypassed). Word-parallel like
    /// [`Self::dot`]; [`Self::svmul_scalar`] is the serial reference.
    pub fn svmul(&mut self, s: u64, v: &[u64]) -> (Vec<u64>, GateTally) {
        self.svmul_probed(s, v, &rm_core::NullProbe, "proc")
    }

    /// [`Self::svmul`] with attribution: stage gate-op deltas land on
    /// `{prefix}/duplicator` and `{prefix}/multiplier` (the circle adder is
    /// bypassed). Behaviour is identical to the unprobed call.
    pub fn svmul_probed(
        &mut self,
        s: u64,
        v: &[u64],
        probe: &dyn rm_core::Probe,
        prefix: &str,
    ) -> (Vec<u64>, GateTally) {
        let mut tally = GateTally::new();
        self.duplicators
            .replicate_bulk(self.width as usize, v.len() as u64, &mut tally);
        let after_dup = tally.total();
        let sv = vec![s; v.len()];
        let out = self.multiplier.multiply_many(&sv, v, &mut tally);
        self.ops_executed += 1;
        if probe.enabled() {
            record_stage(probe, prefix, "duplicator", after_dup);
            record_stage(probe, prefix, "multiplier", tally.total() - after_dup);
        }
        (out, tally)
    }

    /// Serial reference for [`Self::svmul`], retained for differential tests.
    pub fn svmul_scalar(&mut self, s: u64, v: &[u64]) -> (Vec<u64>, GateTally) {
        let mut tally = GateTally::new();
        let out = v
            .iter()
            .map(|&x| self.scalar_mul(s, x, &mut tally))
            .collect();
        self.ops_executed += 1;
        (out, tally)
    }

    /// The pipeline cost model matching this processor's configuration,
    /// given the row width (save tracks per mat).
    pub fn pipeline_model(&self, save_tracks: u32) -> PipelineModel {
        PipelineModel::new(self.width, self.duplicators.count() as u32, save_tracks)
    }

    /// Cost of `op` under this processor's pipeline model (convenience).
    pub fn cost(&self, op: ProcOp, save_tracks: u32) -> crate::op::ProcCost {
        self.pipeline_model(save_tracks).cost(op)
    }

    fn mask(&self) -> u64 {
        (1u64 << self.width) - 1
    }
}

/// Records a pipeline stage's gate-op delta under `{prefix}/{stage}`.
fn record_stage(probe: &dyn rm_core::Probe, prefix: &str, stage: &str, gate_ops: u64) {
    probe.record(
        &format!("{prefix}/{stage}"),
        rm_core::ProbeSample::ops(rm_core::OpCounters {
            gate_ops,
            ..rm_core::OpCounters::default()
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_mul_matches_host() {
        let mut p = RmProcessor::new(8, 2);
        let mut t = GateTally::new();
        for (a, b) in [(0, 0), (1, 1), (255, 255), (17, 13), (128, 2)] {
            assert_eq!(p.scalar_mul(a, b, &mut t), a * b);
        }
    }

    #[test]
    fn dot_matches_host() {
        let mut p = RmProcessor::new(8, 2);
        let a = [1u64, 2, 3, 4, 5];
        let b = [10u64, 20, 30, 40, 50];
        let (r, tally) = p.dot(&a, &b);
        assert_eq!(r, 550);
        assert!(tally.fanout > 0, "duplications happened");
        assert!(tally.nand > 0, "adders ran");
        assert_eq!(p.ops_executed(), 1);
    }

    #[test]
    fn probed_stages_partition_the_gate_tally() {
        use rm_core::{Probe, ProbeSample};
        use std::collections::BTreeMap;
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct MapProbe(Mutex<BTreeMap<String, u64>>);
        impl Probe for MapProbe {
            fn enabled(&self) -> bool {
                true
            }
            fn record(&self, path: &str, sample: ProbeSample) {
                *self.0.lock().unwrap().entry(path.to_string()).or_default() += sample.ops.gate_ops;
            }
        }

        let a = [1u64, 2, 3, 4, 5];
        let b = [10u64, 20, 30, 40, 50];
        let probe = MapProbe::default();
        let mut probed = RmProcessor::new(8, 2);
        let (r, tally) = probed.dot_probed(&a, &b, &probe, "proc");
        let mut plain = RmProcessor::new(8, 2);
        assert_eq!(
            (r, tally),
            plain.dot(&a, &b),
            "probing must not change results"
        );
        assert_eq!(probed, plain, "probing must not change unit state");
        {
            let map = probe.0.lock().unwrap();
            assert_eq!(
                map.keys().collect::<Vec<_>>(),
                ["proc/adder_tree", "proc/duplicator", "proc/multiplier"]
            );
            assert_eq!(map.values().sum::<u64>(), tally.total());
            assert!(map.values().all(|&v| v > 0));
        }

        let (_, vt) = probed.vadd_probed(&[3, 4], &[5, 6], &probe, "proc");
        let (_, st) = probed.svmul_probed(7, &[1, 2, 3], &probe, "proc");
        let map = probe.0.lock().unwrap();
        assert_eq!(
            map.values().sum::<u64>(),
            tally.total() + vt.total() + st.total()
        );
    }

    #[test]
    fn dot_masks_oversized_elements() {
        let mut p = RmProcessor::new(8, 2);
        let (r, _) = p.dot(&[0x1FF], &[2]);
        assert_eq!(r, 0xFF * 2);
    }

    #[test]
    fn vadd_matches_host_with_carry() {
        let mut p = RmProcessor::new(8, 2);
        let (out, _) = p.vadd(&[200, 1], &[100, 2]);
        assert_eq!(out, vec![300, 3]);
    }

    #[test]
    fn svmul_matches_host() {
        let mut p = RmProcessor::new(8, 1);
        let (out, _) = p.svmul(7, &[0, 1, 2, 36]);
        assert_eq!(out, vec![0, 7, 14, 252]);
    }

    #[test]
    fn empty_vectors_are_fine() {
        let mut p = RmProcessor::new(8, 2);
        let (r, tally) = p.dot(&[], &[]);
        assert_eq!(r, 0);
        assert_eq!(tally.total(), 0);
        let (out, _) = p.vadd(&[], &[]);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn dot_length_mismatch_panics() {
        let mut p = RmProcessor::new(8, 2);
        let _ = p.dot(&[1], &[1, 2]);
    }

    #[test]
    fn sixteen_bit_width_works() {
        let mut p = RmProcessor::new(16, 2);
        let (r, _) = p.dot(&[60_000, 2], &[60_000, 3]);
        assert_eq!(r, 60_000u64 * 60_000 + 6);
    }

    #[test]
    fn gate_energy_consistency_dot_vs_components() {
        // A 1-element dot product tallies exactly one scalar_mul plus one
        // circle accumulation.
        let mut p1 = RmProcessor::new(8, 2);
        let (_, t_dot) = p1.dot(&[123], &[45]);
        let mut p2 = RmProcessor::new(8, 2);
        let mut t_parts = GateTally::new();
        let product = p2.scalar_mul(123, 45, &mut t_parts);
        let mut circle = CircleAdder::new(63);
        circle.accumulate(product, &mut t_parts);
        assert_eq!(t_dot, t_parts);
    }

    #[test]
    fn dot_with_reuses_scratch_and_matches_dot() {
        let a: Vec<u64> = (0..130).map(|i| i * 11 % 256).collect();
        let b: Vec<u64> = (0..130).map(|i| i * 5 + 2).collect();
        let mut with = RmProcessor::new(8, 2);
        let mut plain = RmProcessor::new(8, 2);
        let mut scratch = ProcScratch::new();
        for _ in 0..3 {
            let (rw, tw) = with.dot_with(&a, &b, &mut scratch);
            let (rp, tp) = plain.dot(&a, &b);
            assert_eq!((rw, tw), (rp, tp));
        }
        assert_eq!(with, plain, "scratch must stay out of processor state");
    }

    #[test]
    fn word_dot_matches_scalar_dot_state_and_tally() {
        let a: Vec<u64> = (0..150).map(|i| i * 37 % 256).collect();
        let b: Vec<u64> = (0..150).map(|i| i * 91 + 13).collect();
        let mut pw = RmProcessor::new(8, 2);
        let mut ps = RmProcessor::new(8, 2);
        let (rw, tw) = pw.dot(&a, &b);
        let (rs, ts) = ps.dot_scalar(&a, &b);
        assert_eq!(rw, rs);
        assert_eq!(tw, ts);
        assert_eq!(pw, ps, "all duplicator/circle/diode state must match");
    }

    #[test]
    fn wide_dot_matches_word_dot_state_and_tally() {
        // Cross the 512-lane group boundary with a ragged tail.
        let a: Vec<u64> = (0..600).map(|i| i * 37 % 256).collect();
        let b: Vec<u64> = (0..600).map(|i| i * 91 + 13).collect();
        let mut pg = RmProcessor::new(8, 2);
        let mut pw = RmProcessor::new(8, 2);
        let (rg, tg) = pg.dot(&a, &b);
        let (rw, tw) = pw.dot_words(&a, &b);
        assert_eq!(rg, rw);
        assert_eq!(tg, tw);
        assert_eq!(pg, pw, "all duplicator/circle/diode state must match");
    }

    #[test]
    fn word_vadd_matches_scalar_vadd_state_and_tally() {
        let a: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..100).map(|i| 255 - i).collect();
        let mut pw = RmProcessor::new(8, 2);
        let mut ps = RmProcessor::new(8, 2);
        let (rw, tw) = pw.vadd(&a, &b);
        let (rs, ts) = ps.vadd_scalar(&a, &b);
        assert_eq!(rw, rs);
        assert_eq!(tw, ts);
        assert_eq!(pw, ps);
    }

    #[test]
    fn word_svmul_matches_scalar_svmul_state_and_tally() {
        let v: Vec<u64> = (0..100).map(|i| i * 7 % 256).collect();
        let mut pw = RmProcessor::new(8, 2);
        let mut ps = RmProcessor::new(8, 2);
        let (rw, tw) = pw.svmul(0xAB, &v);
        let (rs, ts) = ps.svmul_scalar(0xAB, &v);
        assert_eq!(rw, rs);
        assert_eq!(tw, ts);
        assert_eq!(pw, ps);
    }

    #[test]
    fn cost_model_accessible() {
        let p = RmProcessor::new(8, 2);
        let model = p.pipeline_model(512);
        assert_eq!(model.lanes, 64);
        let c = p.cost(ProcOp::VectorAdd { n: 64 }, 512);
        assert!(c.cycles > 0);
    }
}
