//! The StreamPIM RM processor (paper §III-C).
//!
//! The RM processor is a matrix datapath built entirely from domain-wall
//! nanowire structures — no CMOS arithmetic. It is organized as a four-stage
//! pipeline (paper Figure 11):
//!
//! 1. **Fetch/split** — a stream of scalar operands enters; one operand goes
//!    to the duplicator, the other is split into separate bits.
//! 2. **Duplicate + multiply** — the duplicator bank replicates the operand
//!    once per bit; the multiplier ANDs the replicas into partial products.
//! 3. **Adder tree** — sums the partial products into the scalar product.
//! 4. **Circle adder** — accumulates products into the dot-product result
//!    (bypassed for plain multiplication; used alone for addition).
//!
//! Two views are provided:
//!
//! * [`processor::RmProcessor`] — a bit-accurate functional datapath wiring
//!   the `dw-logic` structures together, with full gate accounting. Use it
//!   to *verify* results and energy at small scales.
//! * [`pipeline::PipelineModel`] — the closed-form cycle/energy cost model
//!   the execution engine uses at full workload scale. Its constants are
//!   derived from the functional components (duplication stall, tree depth,
//!   circle latency), so both views agree on the physics.

pub mod op;
pub mod pipeline;
pub mod processor;
pub mod stream;

pub use op::{ProcCost, ProcOp};
pub use pipeline::PipelineModel;
pub use processor::{ProcScratch, RmProcessor};
pub use stream::{PipelineSim, StreamRun};
