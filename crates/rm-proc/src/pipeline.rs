//! Closed-form cycle model of the four-stage RM processor pipeline.
//!
//! ## Model
//!
//! The processor consumes operands row-wise: a subarray's mats shift whole
//! rows (one domain per save track) onto the RM bus, so each pipeline
//! **beat** carries `lanes = save_tracks / word_bits` elements in parallel
//! (64 lanes for the Table III configuration of 512 tracks and 8-bit words).
//!
//! The steady-state initiation interval is set by the slowest stage, which
//! is stage 2: producing the `w` operand replicas a `w`-bit multiply needs
//! stalls `ceil(w / d)` cycles with `d` duplicators (paper §III-C — "an
//! n-bit scalar multiplication needs to perform duplication by n times,
//! which costs an n-cycle stall", mitigated by multiple duplicators).
//!
//! Pipeline fill is the sum of the stage latencies, derived from the
//! functional components: 1 (fetch/split) + 4 + `ceil(w/d)` (duplicate) +
//! `ceil(log2 w)` (tree levels) + 4 (circle). Because ops stream, fill is
//! paid once per VPC and amortized over thousands of beats.

use crate::op::{ProcCost, ProcOp};
use dw_logic::adder_tree::AdderTree;
use dw_logic::circle_adder::ACCUMULATE_STEPS;
use dw_logic::duplicator::DUPLICATION_STEPS;
use serde::{Deserialize, Serialize};

/// Closed-form pipeline cost model.
///
/// ```
/// use rm_proc::{PipelineModel, ProcOp};
///
/// let model = PipelineModel::paper_default();
/// let cost = model.cost(ProcOp::DotProduct { n: 2000 });
/// assert_eq!(cost.word_muls, 2000);
/// assert!(cost.cycles > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Operand width in bits (8 in the paper).
    pub word_bits: u32,
    /// Duplicators per processor (2 in the paper).
    pub duplicators: u32,
    /// Parallel word lanes per beat (save tracks / word bits).
    pub lanes: u32,
}

impl PipelineModel {
    /// Table III configuration: 8-bit words, 2 duplicators, 512 save tracks.
    pub fn paper_default() -> Self {
        PipelineModel {
            word_bits: 8,
            duplicators: 2,
            lanes: 512 / 8,
        }
    }

    /// Builds a model from raw configuration values.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `word_bits > 32`.
    pub fn new(word_bits: u32, duplicators: u32, save_tracks: u32) -> Self {
        assert!(word_bits > 0 && word_bits <= 32, "word_bits must be 1..=32");
        assert!(duplicators > 0, "need at least one duplicator");
        assert!(
            save_tracks >= word_bits,
            "a row must hold at least one word"
        );
        PipelineModel {
            word_bits,
            duplicators,
            lanes: save_tracks / word_bits,
        }
    }

    /// Steady-state initiation interval of the multiply path, cycles/beat.
    pub fn beat_interval(&self) -> u64 {
        (self.word_bits as u64).div_ceil(self.duplicators as u64)
    }

    /// Initiation interval of the add-only path (circle adder in scalar
    /// mode), cycles/beat — one beat per cycle.
    pub fn add_beat_interval(&self) -> u64 {
        1
    }

    /// Pipeline fill latency in cycles (all four stages).
    pub fn fill_cycles(&self) -> u64 {
        let split = 1;
        let duplicate = DUPLICATION_STEPS + self.beat_interval();
        let tree = AdderTree::depth_for(self.word_bits as usize) as u64;
        let circle = ACCUMULATE_STEPS;
        split + duplicate + tree + circle
    }

    /// Beats needed for `n` elements.
    pub fn beats(&self, n: u64) -> u64 {
        n.div_ceil(self.lanes as u64)
    }

    /// Cycle/operation cost of `op`.
    pub fn cost(&self, op: ProcOp) -> ProcCost {
        let n = op.elements();
        if n == 0 {
            return ProcCost::default();
        }
        let beats = self.beats(n);
        let interval = if op.uses_multiplier() {
            self.beat_interval()
        } else {
            self.add_beat_interval()
        };
        let cycles = self.fill_cycles() + beats.saturating_sub(1) * interval + interval;
        // I/O: dot consumes 2n words and emits 1; vadd consumes 2n, emits n;
        // smul consumes n + 1 and emits n.
        let io_words = match op {
            ProcOp::DotProduct { n } => 2 * n + 1,
            ProcOp::VectorAdd { n } => 3 * n,
            ProcOp::ScalarVectorMul { n } => 2 * n + 1,
        };
        ProcCost {
            cycles,
            word_muls: op.word_muls(),
            word_adds: op.word_adds(),
            io_words,
        }
    }

    /// Elements retired per cycle in steady state for the multiply path.
    pub fn steady_state_throughput(&self) -> f64 {
        self.lanes as f64 / self.beat_interval() as f64
    }
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let m = PipelineModel::paper_default();
        assert_eq!(m.lanes, 64);
        assert_eq!(m.beat_interval(), 4); // ceil(8 / 2)
        assert_eq!(m.steady_state_throughput(), 16.0);
    }

    #[test]
    fn more_duplicators_shorten_the_interval() {
        let d1 = PipelineModel::new(8, 1, 512);
        let d2 = PipelineModel::new(8, 2, 512);
        let d8 = PipelineModel::new(8, 8, 512);
        assert_eq!(d1.beat_interval(), 8);
        assert_eq!(d2.beat_interval(), 4);
        assert_eq!(d8.beat_interval(), 1);
    }

    #[test]
    fn dot_cost_scales_linearly_in_beats() {
        let m = PipelineModel::paper_default();
        let c1 = m.cost(ProcOp::DotProduct { n: 64 });
        let c2 = m.cost(ProcOp::DotProduct { n: 6400 });
        // 100x the beats, ~100x the steady-state cycles.
        let steady1 = c1.cycles - m.fill_cycles();
        let steady2 = c2.cycles - m.fill_cycles();
        assert_eq!(steady2, 100 * steady1);
    }

    #[test]
    fn add_path_is_faster_than_mul_path() {
        let m = PipelineModel::paper_default();
        let add = m.cost(ProcOp::VectorAdd { n: 6400 });
        let dot = m.cost(ProcOp::DotProduct { n: 6400 });
        assert!(add.cycles < dot.cycles);
    }

    #[test]
    fn zero_length_op_is_free() {
        let m = PipelineModel::paper_default();
        assert_eq!(m.cost(ProcOp::DotProduct { n: 0 }), ProcCost::default());
    }

    #[test]
    fn op_counts_propagate() {
        let m = PipelineModel::paper_default();
        let c = m.cost(ProcOp::DotProduct { n: 1000 });
        assert_eq!(c.word_muls, 1000);
        assert_eq!(c.word_adds, 1000);
        assert_eq!(c.io_words, 2001);
        let c = m.cost(ProcOp::ScalarVectorMul { n: 1000 });
        assert_eq!(c.word_muls, 1000);
        assert_eq!(c.word_adds, 0);
    }

    #[test]
    fn fill_is_amortized() {
        let m = PipelineModel::paper_default();
        let c = m.cost(ProcOp::DotProduct { n: 64_000 });
        assert!((m.fill_cycles() as f64) < 0.01 * c.cycles as f64);
    }

    #[test]
    #[should_panic(expected = "duplicator")]
    fn rejects_zero_duplicators() {
        let _ = PipelineModel::new(8, 0, 512);
    }
}
