//! Cycle-stepped pipeline simulator (paper Figure 11).
//!
//! [`crate::PipelineModel`] prices the four-stage pipeline in closed form.
//! This module *runs* it: beats (row-wide element groups) advance through
//! explicit stage registers one cycle at a time — fetch/split, duplicate +
//! multiply (the stage whose duplication stall sets the initiation
//! interval), adder tree, circle accumulate — producing both the result and
//! the measured cycle count. The tests check the closed form against the
//! measurement.

use crate::pipeline::PipelineModel;
use dw_logic::cost::GateTally;
use dw_logic::multiplier::Multiplier;
use serde::{Deserialize, Serialize};

/// One beat in flight: up to `lanes` element pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Beat {
    a: Vec<u64>,
    b: Vec<u64>,
}

/// Measured outcome of a simulated dot product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRun {
    /// The dot-product result.
    pub result: u64,
    /// Cycles from first fetch to the final accumulate.
    pub cycles: u64,
    /// Beats processed.
    pub beats: u64,
}

/// The cycle-stepped pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    model: PipelineModel,
    multiplier: Multiplier,
}

impl PipelineSim {
    /// Builds a simulator matching `model`'s configuration.
    pub fn new(model: PipelineModel) -> Self {
        PipelineSim {
            model,
            multiplier: Multiplier::new(model.word_bits),
        }
    }

    /// The underlying closed-form model.
    pub fn model(&self) -> &PipelineModel {
        &self.model
    }

    /// Runs a dot product through the pipeline cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn run_dot(&self, a: &[u64], b: &[u64]) -> StreamRun {
        assert_eq!(a.len(), b.len(), "dot product needs equal-length vectors");
        if a.is_empty() {
            return StreamRun {
                result: 0,
                cycles: 0,
                beats: 0,
            };
        }
        let lanes = self.model.lanes as usize;
        let interval = self.model.beat_interval();
        let mask = (1u64 << self.model.word_bits) - 1;

        // Input beats, in order.
        let mut input: std::collections::VecDeque<Beat> = a
            .chunks(lanes)
            .zip(b.chunks(lanes))
            .map(|(ca, cb)| Beat {
                a: ca.iter().map(|&x| x & mask).collect(),
                b: cb.iter().map(|&x| x & mask).collect(),
            })
            .collect();
        let total_beats = input.len() as u64;

        // Stage registers. Stage 2 holds (beat, cycles_remaining).
        let mut s1: Option<Beat> = None;
        let mut s2: Option<(Beat, u64)> = None;
        let mut s3: Option<Vec<u64>> = None; // products leaving the multiplier
        let mut s4: Option<Vec<u64>> = None; // sums leaving the tree
        let mut acc: u64 = 0;
        let mut retired = 0u64;
        let mut cycles = 0u64;
        let mut tally = GateTally::new();

        while retired < total_beats {
            cycles += 1;
            // Stage 4: circle adder accumulates one beat's products.
            if let Some(products) = s4.take() {
                for p in products {
                    acc = acc.wrapping_add(p);
                }
                retired += 1;
            }
            // Stage 3: adder tree finishes a beat's partial-product sums.
            if s4.is_none() {
                if let Some(products) = s3.take() {
                    s4 = Some(products);
                }
            }
            // Stage 2: duplicate + multiply; occupies `interval` cycles.
            if let Some((beat, remaining)) = s2.take() {
                if remaining > 1 {
                    s2 = Some((beat, remaining - 1));
                } else if s3.is_none() {
                    // One beat is at most 64 lanes: a single plane-word
                    // multiply covers it (tally-identical to per-lane calls).
                    let products = self.multiplier.multiply_many(&beat.a, &beat.b, &mut tally);
                    s3 = Some(products);
                } else {
                    s2 = Some((beat, 1)); // structural stall: S3 occupied
                }
            }
            // Stage 1: fetch/split one beat.
            if s2.is_none() {
                if let Some(beat) = s1.take() {
                    s2 = Some((beat, interval));
                }
            }
            if s1.is_none() {
                if let Some(beat) = input.pop_front() {
                    s1 = Some(beat);
                }
            }
            debug_assert!(
                cycles < 64 + total_beats * (interval + 4),
                "pipeline must drain"
            );
        }
        StreamRun {
            result: acc,
            cycles,
            beats: total_beats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ProcOp;

    fn sim() -> PipelineSim {
        PipelineSim::new(PipelineModel::paper_default())
    }

    fn vectors(n: usize) -> (Vec<u64>, Vec<u64>) {
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % 256).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 1) % 256).collect();
        (a, b)
    }

    #[test]
    fn results_match_host_dot() {
        let s = sim();
        for n in [1usize, 5, 64, 200, 1000] {
            let (a, b) = vectors(n);
            let run = s.run_dot(&a, &b);
            let expect: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert_eq!(run.result, expect, "n = {n}");
            assert_eq!(run.beats, n.div_ceil(64) as u64);
        }
    }

    #[test]
    fn empty_dot_is_free() {
        let run = sim().run_dot(&[], &[]);
        assert_eq!(run.result, 0);
        assert_eq!(run.cycles, 0);
    }

    #[test]
    fn measured_cycles_track_the_closed_form() {
        // Long streams: the steady state dominates and the two views agree.
        let s = sim();
        for n in [640usize, 6400, 64_000] {
            let (a, b) = vectors(n);
            let measured = s.run_dot(&a, &b).cycles;
            let modelled = s.model().cost(ProcOp::DotProduct { n: n as u64 }).cycles;
            let err = (measured as f64 - modelled as f64).abs() / modelled as f64;
            assert!(
                err < 0.30,
                "n = {n}: measured {measured} vs model {modelled} ({err:.2})"
            );
        }
    }

    #[test]
    fn model_fill_bounds_the_simulator() {
        // Single beat: the closed form carries the full component fill
        // (duplication steps, tree depth, circle steps) while the simulator
        // hops stage registers in one cycle — so the model is the upper
        // bound.
        let s = sim();
        let (a, b) = vectors(64);
        let measured = s.run_dot(&a, &b).cycles;
        let modelled = s.model().cost(ProcOp::DotProduct { n: 64 }).cycles;
        assert!(measured <= modelled, "{measured} <= {modelled}");
    }

    #[test]
    fn steady_state_interval_is_the_duplication_stall() {
        let s = sim();
        let (a1, b1) = vectors(64 * 10);
        let (a2, b2) = vectors(64 * 20);
        let c1 = s.run_dot(&a1, &b1).cycles;
        let c2 = s.run_dot(&a2, &b2).cycles;
        // 10 extra beats cost ~10 * beat_interval cycles.
        let per_beat = (c2 - c1) as f64 / 10.0;
        assert!(
            (per_beat - s.model().beat_interval() as f64).abs() <= 1.0,
            "per-beat {per_beat} vs interval {}",
            s.model().beat_interval()
        );
    }

    #[test]
    fn more_duplicators_speed_the_measured_pipeline() {
        let (a, b) = vectors(64 * 16);
        let slow = PipelineSim::new(PipelineModel::new(8, 1, 512))
            .run_dot(&a, &b)
            .cycles;
        let fast = PipelineSim::new(PipelineModel::new(8, 4, 512))
            .run_dot(&a, &b)
            .cycles;
        assert!(fast < slow, "{fast} vs {slow}");
    }
}
