//! Vector operations executed by the RM processor and their cost record.

use serde::{Deserialize, Serialize};

/// A word-level vector operation offered by the RM processor.
///
/// These are the compute halves of the paper's Vector Processing Commands
/// (Table II); data movement (`TRAN`) is handled by the RM bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcOp {
    /// Dot product of two `n`-element vectors (VPC `MUL`).
    DotProduct {
        /// Vector length in elements.
        n: u64,
    },
    /// Multiply every element of an `n`-element vector by one scalar
    /// (VPC `SMUL`). The scalar is duplicated repeatedly (stage 1-3),
    /// bypassing the circle adder.
    ScalarVectorMul {
        /// Vector length in elements.
        n: u64,
    },
    /// Element-wise addition of two `n`-element vectors (VPC `ADD`),
    /// pipelined through the circle adder in scalar mode (stages 1-3
    /// bypassed).
    VectorAdd {
        /// Vector length in elements.
        n: u64,
    },
}

impl ProcOp {
    /// Number of vector elements the operation consumes.
    pub fn elements(&self) -> u64 {
        match *self {
            ProcOp::DotProduct { n } | ProcOp::ScalarVectorMul { n } | ProcOp::VectorAdd { n } => n,
        }
    }

    /// Word-level multiplications performed.
    pub fn word_muls(&self) -> u64 {
        match *self {
            ProcOp::DotProduct { n } | ProcOp::ScalarVectorMul { n } => n,
            ProcOp::VectorAdd { .. } => 0,
        }
    }

    /// Word-level additions performed (circle-adder iterations).
    pub fn word_adds(&self) -> u64 {
        match *self {
            ProcOp::DotProduct { n } | ProcOp::VectorAdd { n } => n,
            ProcOp::ScalarVectorMul { .. } => 0,
        }
    }

    /// Whether the circle adder participates.
    pub fn uses_circle_adder(&self) -> bool {
        matches!(self, ProcOp::DotProduct { .. } | ProcOp::VectorAdd { .. })
    }

    /// Whether the duplicator/multiplier/tree stages participate.
    pub fn uses_multiplier(&self) -> bool {
        matches!(
            self,
            ProcOp::DotProduct { .. } | ProcOp::ScalarVectorMul { .. }
        )
    }
}

/// Cycle and operation-count cost of one [`ProcOp`] on the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProcCost {
    /// Total pipeline occupancy in memory-core cycles (fill + drain
    /// included).
    pub cycles: u64,
    /// Word-level multiplications (priced at Table III's `mul` energy).
    pub word_muls: u64,
    /// Word-level additions (priced at Table III's `add` energy).
    pub word_adds: u64,
    /// Words that crossed the processor's input/output boundary (the bus
    /// traffic this operation generates).
    pub io_words: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts() {
        let dot = ProcOp::DotProduct { n: 100 };
        assert_eq!(dot.word_muls(), 100);
        assert_eq!(dot.word_adds(), 100);
        assert!(dot.uses_circle_adder());
        assert!(dot.uses_multiplier());

        let smul = ProcOp::ScalarVectorMul { n: 50 };
        assert_eq!(smul.word_muls(), 50);
        assert_eq!(smul.word_adds(), 0);
        assert!(!smul.uses_circle_adder());

        let add = ProcOp::VectorAdd { n: 25 };
        assert_eq!(add.word_muls(), 0);
        assert_eq!(add.word_adds(), 25);
        assert!(!add.uses_multiplier());
        assert_eq!(add.elements(), 25);
    }
}
