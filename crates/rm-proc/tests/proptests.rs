//! Property-based tests: the functional RM processor agrees with host
//! arithmetic, and the cost model behaves sanely.

use proptest::prelude::*;
use rm_proc::{PipelineModel, ProcOp, RmProcessor};

proptest! {
    /// Dot products match the host for arbitrary 8-bit vectors.
    #[test]
    fn dot_matches_host(
        pairs in proptest::collection::vec((0u64..256, 0u64..256), 0..64),
    ) {
        let mut p = RmProcessor::new(8, 2);
        let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
        let (r, _) = p.dot(&a, &b);
        let expect: u64 = pairs.iter().map(|&(x, y)| x * y).sum();
        prop_assert_eq!(r, expect);
    }

    /// Vector addition matches the host (sums carry at width+1 bits).
    #[test]
    fn vadd_matches_host(
        pairs in proptest::collection::vec((0u64..256, 0u64..256), 0..64),
    ) {
        let mut p = RmProcessor::new(8, 2);
        let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
        let (out, _) = p.vadd(&a, &b);
        let expect: Vec<u64> = pairs.iter().map(|&(x, y)| x + y).collect();
        prop_assert_eq!(out, expect);
    }

    /// Scalar-vector multiplication matches the host.
    #[test]
    fn svmul_matches_host(
        s in 0u64..256,
        v in proptest::collection::vec(0u64..256, 0..32),
    ) {
        let mut p = RmProcessor::new(8, 2);
        let (out, _) = p.svmul(s, &v);
        let expect: Vec<u64> = v.iter().map(|&x| s * x).collect();
        prop_assert_eq!(out, expect);
    }

    /// Duplicator count never changes *results*, only cycles.
    #[test]
    fn duplicator_count_affects_only_cycles(
        pairs in proptest::collection::vec((0u64..256, 0u64..256), 1..16),
        d in 1u32..5,
    ) {
        let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
        let (r1, _) = RmProcessor::new(8, 1).dot(&a, &b);
        let (rd, _) = RmProcessor::new(8, d).dot(&a, &b);
        prop_assert_eq!(r1, rd);
        // Cycle model: more duplicators never slow the pipeline.
        let m1 = PipelineModel::new(8, 1, 512);
        let md = PipelineModel::new(8, d, 512);
        let n = pairs.len() as u64 * 100;
        let cycles_d = md.cost(ProcOp::DotProduct { n }).cycles;
        let cycles_1 = m1.cost(ProcOp::DotProduct { n }).cycles;
        prop_assert!(cycles_d <= cycles_1);
    }

    /// Pipeline cost is monotone in vector length for every op.
    #[test]
    fn cost_monotone_in_length(n in 1u64..100_000) {
        let m = PipelineModel::paper_default();
        for mk in [
            |n| ProcOp::DotProduct { n },
            |n| ProcOp::ScalarVectorMul { n },
            |n| ProcOp::VectorAdd { n },
        ] {
            prop_assert!(m.cost(mk(n + 64)).cycles >= m.cost(mk(n)).cycles);
        }
    }

    /// Differential: the wide word-group dot equals both retained reference
    /// datapaths — single-word and serial — in result, gate tally, and full
    /// processor state (duplicator phases, diode counters, circle
    /// accumulator) for arbitrary vectors. The vector length range crosses
    /// the 512-lane group boundary so ragged tails are exercised.
    #[test]
    fn word_dot_matches_scalar_datapath(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..560),
        d in 1u32..4,
    ) {
        let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
        let mut pwide = RmProcessor::new(8, d);
        let mut pword = RmProcessor::new(8, d);
        let mut ps = RmProcessor::new(8, d);
        let (rwide, twide) = pwide.dot(&a, &b);
        let (rword, tword) = pword.dot_words(&a, &b);
        let (rs, ts) = ps.dot_scalar(&a, &b);
        prop_assert_eq!(rwide, rs);
        prop_assert_eq!(rword, rs);
        prop_assert_eq!(&twide, &ts);
        prop_assert_eq!(&tword, &ts);
        prop_assert_eq!(&pwide, &ps);
        prop_assert_eq!(&pword, &ps);
    }

    /// Differential: word-parallel vadd and svmul equal their serial
    /// references in results, tallies, and state.
    #[test]
    fn word_vadd_svmul_match_scalar_datapath(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..100),
        s in any::<u64>(),
    ) {
        let a: Vec<u64> = pairs.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = pairs.iter().map(|&(_, y)| y).collect();
        let mut pw = RmProcessor::new(8, 2);
        let mut ps = RmProcessor::new(8, 2);
        let (ow, tw) = pw.vadd(&a, &b);
        let (os, ts) = ps.vadd_scalar(&a, &b);
        prop_assert_eq!(ow, os);
        prop_assert_eq!(tw, ts);
        prop_assert_eq!(&pw, &ps);
        let (ow, tw) = pw.svmul(s, &a);
        let (os, ts) = ps.svmul_scalar(s, &a);
        prop_assert_eq!(ow, os);
        prop_assert_eq!(tw, ts);
        prop_assert_eq!(pw, ps);
    }

    /// Gate tallies grow linearly with vector length (streaming, no
    /// super-linear blowup).
    #[test]
    fn tally_linear_in_length(k in 1usize..8) {
        let mut p = RmProcessor::new(8, 2);
        let a = vec![123u64; k];
        let b = vec![45u64; k];
        let (_, t_k) = p.dot(&a, &b);
        let (_, t_1) = p.dot(&[123], &[45]);
        prop_assert_eq!(t_k.total(), t_1.total() * k as u64);
    }
}
