//! The [`Cluster`]: N devices, one lane each, reduced in device order.

use crate::interconnect::{price_collective, InterconnectReport, LinkLoad};
use crate::partition::{data_shards, pipeline_stages};
use crate::topology::ClusterConfig;
use pim_baselines::{add_pim_static_power, PIM_STATIC_W};
use pim_device::{ExecReport, MatrixOp, Parallelism, PimError, Result, ShapeTask, StreamPim};
use pim_trace::{Collector, Event, Span, TraceSink};
use pim_workloads::dnn::MatMulShape;
use pim_workloads::spec::WorkloadSpec;
use rm_core::shard::{map_sharded, BufferProbe};
use rm_core::{EnergyBreakdown, OpCounters, Probe, ProbeSample, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// How a workload is split across the cluster's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Row-shard every matmul across all devices; operands broadcast over
    /// the links, row partials gather back (the all-reduce of disjoint row
    /// blocks). Best for batched throughput: every device works on every
    /// layer.
    Data,
    /// Cut the layer list into contiguous flop-balanced stages, one per
    /// device; activations cross the links between stages and batches
    /// amortize the pipeline fill against the bottleneck stage.
    Pipeline,
}

/// The job-level cluster request: how many devices, split how, over how
/// many batch items. This is what travels in runtime jobs and HTTP
/// submissions; the serving layer validates it at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Simulated devices to spread the job over (1 ..= [`crate::MAX_DEVICES`]).
    pub devices: u32,
    /// Partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Identical batch items priced in one run (≥ 1).
    pub batch: u32,
}

impl ClusterSpec {
    /// A data-parallel spec over `devices` devices, batch 1.
    pub fn data(devices: u32) -> Self {
        ClusterSpec {
            devices,
            strategy: PartitionStrategy::Data,
            batch: 1,
        }
    }

    /// A pipeline-parallel spec over `devices` devices, batch 1.
    pub fn pipeline(devices: u32) -> Self {
        ClusterSpec {
            devices,
            strategy: PartitionStrategy::Pipeline,
            batch: 1,
        }
    }

    /// Sets the batch size (builder style).
    pub fn with_batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }

    /// Checks the spec is admissible.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for zero devices/batch or more devices
    /// than [`crate::MAX_DEVICES`].
    pub fn validate(&self) -> Result<()> {
        if self.devices == 0 || self.devices > crate::MAX_DEVICES {
            return Err(PimError::Config(format!(
                "cluster spec asks for {} devices (allowed 1..={})",
                self.devices,
                crate::MAX_DEVICES
            )));
        }
        if self.batch == 0 {
            return Err(PimError::Config("cluster batch must be at least 1".into()));
        }
        Ok(())
    }
}

/// The result of one cluster run.
///
/// `combined` is the headline report: makespan time (critical device plus
/// link transfers, or the pipeline fill/steady composition), with energy
/// and counters summed over every device and the interconnect. The
/// conservation contract — what the determinism suite asserts bit-for-bit:
///
/// * `combined.energy`/`counters`/`vpc` equal the device-order fold of
///   `per_device` plus `interconnect` (data **and** pipeline modes);
/// * in data mode, `combined.time` equals
///   `per_device[critical_device].time + interconnect.time` exactly;
/// * in pipeline mode `combined.time` is a makespan (fill + steady), so it
///   is *less* than the occupancy sum by design.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The cluster-level report (what callers price against).
    pub combined: ExecReport,
    /// Per-device totals over the whole batch, including each device's
    /// static power; index = device.
    pub per_device: Vec<ExecReport>,
    /// Link transfers, over the whole batch.
    pub interconnect: InterconnectReport,
    /// The device whose compute bounded the makespan (first of ties).
    pub critical_device: u32,
}

impl ClusterReport {
    /// Total simulated time, nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.combined.total_ns()
    }

    /// Total energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.combined.total_pj()
    }
}

/// What one device lane sends back to the coordinator: its engine report
/// plus buffered instruments, replayed in device order afterwards.
struct LaneOutput {
    report: ExecReport,
    spans: Vec<Span>,
    events: Vec<Event>,
    probes: Vec<(String, ProbeSample)>,
}

/// A cluster of N identical StreamPIM devices (see the crate docs for the
/// execution model and determinism contract).
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    parallelism: Parallelism,
}

impl Cluster {
    /// Validates `config` and builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for invalid topology, interconnect, or
    /// device configuration.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        config.validate()?;
        // Surface device-config errors at construction, not per lane.
        StreamPim::new(config.device.clone())?;
        Ok(Cluster {
            config,
            parallelism: Parallelism::Auto,
        })
    }

    /// The paper-default cluster of `n` devices.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] when `n` exceeds [`crate::MAX_DEVICES`].
    pub fn paper_default(n: u32) -> Result<Self> {
        Cluster::new(ClusterConfig::paper_default(n))
    }

    /// Variant with a different host-thread budget for the device lanes.
    /// Results are byte-identical at every level (the determinism
    /// contract); only host wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of simulated devices.
    pub fn devices(&self) -> u32 {
        self.config.topology.devices
    }

    /// Prices `workload` across the cluster (no instruments).
    ///
    /// # Errors
    ///
    /// See [`Cluster::run_instrumented`].
    pub fn run(
        &self,
        workload: &WorkloadSpec,
        strategy: PartitionStrategy,
        batch: u32,
    ) -> Result<ClusterReport> {
        self.run_instrumented(
            workload,
            strategy,
            batch,
            &pim_trace::NullSink,
            &rm_core::NullProbe,
        )
    }

    /// Prices `workload` across the cluster with tracing and profiling
    /// attached. Device spans are re-emitted to `sink` tagged with a
    /// `device` argument; engine attribution lands on `probe` under
    /// `cluster/device[d]/...`, link transfers under
    /// `cluster/interconnect/link[d]`, and per-device static power under
    /// `cluster/device[d]/peripherals`. A single-device cluster at batch 1
    /// routes through the exact single-device code path (unprefixed engine
    /// paths, `device/peripherals` static sample) and its report is
    /// byte-identical to `Platform::run_instrumented` on the same device
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for a zero batch or for partitioning a
    /// workload with no matmul list (polybench) across several devices;
    /// propagates lowering errors from the device.
    pub fn run_instrumented(
        &self,
        workload: &WorkloadSpec,
        strategy: PartitionStrategy,
        batch: u32,
        sink: &dyn TraceSink,
        probe: &dyn Probe,
    ) -> Result<ClusterReport> {
        if batch == 0 {
            return Err(PimError::Config("cluster batch must be at least 1".into()));
        }
        if self.devices() == 1 {
            return self.run_single(workload, batch, sink, probe);
        }
        let shapes = matmul_shapes(workload)?;
        match strategy {
            PartitionStrategy::Data => self.run_data(&shapes, batch, sink, probe),
            PartitionStrategy::Pipeline => self.run_pipeline(&shapes, batch, sink, probe),
        }
    }

    /// The `n = 1` path: exactly the single-device platform sequence
    /// (lower, execute instrumented, static power), so reports, spans and
    /// probe samples are byte-identical to it. Batch replication scales the
    /// finished report and records the residual under
    /// `cluster/batch_replication` so attribution still conserves.
    fn run_single(
        &self,
        workload: &WorkloadSpec,
        batch: u32,
        sink: &dyn TraceSink,
        probe: &dyn Probe,
    ) -> Result<ClusterReport> {
        let device = StreamPim::new(self.config.device.clone())?;
        let schedule = workload.shape_task().lower(&device)?;
        let mut report = device.execute_instrumented(&schedule, sink, probe);
        add_pim_static_power(&mut report, probe);
        if batch > 1 {
            let residual = scale_report(&report, u64::from(batch) - 1);
            record_replication(probe, &residual);
            report = scale_report(&report, u64::from(batch));
        }
        Ok(ClusterReport {
            per_device: vec![report.clone()],
            interconnect: InterconnectReport {
                links: vec![crate::interconnect::LinkStat::default()],
                ..InterconnectReport::default()
            },
            combined: report,
            critical_device: 0,
        })
    }

    /// Data-parallel execution: row shards on every device, operand
    /// broadcast + partial gather on the links, makespan = critical device
    /// plus the collectives, everything × batch.
    fn run_data(
        &self,
        shapes: &[MatMulShape],
        batch: u32,
        sink: &dyn TraceSink,
        probe: &dyn Probe,
    ) -> Result<ClusterReport> {
        let n = self.devices() as usize;
        let shards = data_shards(shapes, n);
        let lanes = self.run_lanes(&shards, sink.enabled(), probe.enabled())?;

        // Link loads of one batch item: each device receives its A row
        // block plus the full (broadcast) B of every layer it computes, and
        // sends back its C row block.
        let elem = u64::from(self.config.device.device.word_bits.div_ceil(8).max(1));
        let loads: Vec<LinkLoad> = shards
            .iter()
            .map(|shard| {
                let mut load = LinkLoad::default();
                for s in shard {
                    load.bytes_in += (s.m * s.k + s.k * s.n) as u64 * elem;
                    load.bytes_out += (s.m * s.n) as u64 * elem;
                }
                load
            })
            .collect();
        let interconnect = price_collective(
            &self.config.topology,
            &self.config.interconnect,
            self.config.device.device.word_bits,
            &loads,
        )
        .scaled(u64::from(batch));

        // Scale per-device engine reports to the whole batch, find the
        // critical device, and compose the makespan: critical compute plus
        // the (serialized) collectives.
        let per_item: Vec<ExecReport> = lanes.iter().map(|l| l.report.clone()).collect();
        let mut per_device: Vec<ExecReport> = per_item
            .iter()
            .map(|r| scale_report(r, u64::from(batch)))
            .collect();
        let critical_device = argmax_time(&per_device);
        let mut combined_time = per_device[critical_device as usize].time;
        combined_time += interconnect.time;

        self.finish(
            per_item,
            &mut per_device,
            combined_time,
            interconnect,
            critical_device,
            batch,
            sink,
            probe,
            &lanes,
        )
    }

    /// Pipeline-parallel execution: one contiguous stage per device, a
    /// one-time weight load, per-item activation transfers, makespan =
    /// fill + (batch-1) × steady-state bottleneck.
    fn run_pipeline(
        &self,
        shapes: &[MatMulShape],
        batch: u32,
        sink: &dyn TraceSink,
        probe: &dyn Probe,
    ) -> Result<ClusterReport> {
        let n = self.devices() as usize;
        let stages = pipeline_stages(shapes, n);
        let lanes = self.run_lanes(&stages, sink.enabled(), probe.enabled())?;
        let elem = u64::from(self.config.device.device.word_bits.div_ceil(8).max(1));

        // One-time weight load: every stage receives its layers' weights.
        let weight_loads: Vec<LinkLoad> = stages
            .iter()
            .map(|stage| LinkLoad {
                bytes_in: stage.iter().map(|s| (s.m * s.k) as u64 * elem).sum(),
                bytes_out: 0,
            })
            .collect();
        // Per-item activations: each active stage receives its first
        // layer's input activation; the last active stage returns its
        // output.
        let mut act_loads = vec![LinkLoad::default(); n];
        for (d, stage) in stages.iter().enumerate() {
            if let Some(first) = stage.first() {
                act_loads[d].bytes_in = (first.k * first.n) as u64 * elem;
            }
        }
        if let Some((last_dev, last)) = stages
            .iter()
            .enumerate()
            .rev()
            .find_map(|(d, s)| s.last().map(|l| (d, *l)))
        {
            act_loads[last_dev].bytes_out = (last.m * last.n) as u64 * elem;
        }
        let word_bits = self.config.device.device.word_bits;
        let weights = price_collective(
            &self.config.topology,
            &self.config.interconnect,
            word_bits,
            &weight_loads,
        );
        let act = price_collective(
            &self.config.topology,
            &self.config.interconnect,
            word_bits,
            &act_loads,
        );
        let mut interconnect = weights.clone();
        interconnect.absorb(&act.scaled(u64::from(batch)));

        // Makespan: weights, then one item traverses every stage and its
        // transfers (fill), then each further item is bounded by the
        // slower of the bottleneck stage and the activation transfers.
        let per_item: Vec<ExecReport> = lanes.iter().map(|l| l.report.clone()).collect();
        let critical_device = argmax_time(&per_item);
        let mut combined_time = weights.time;
        for r in &per_item {
            combined_time += r.time;
        }
        combined_time += act.time;
        let bottleneck = &per_item[critical_device as usize];
        let steady = if bottleneck.total_ns() >= act.total_ns() {
            bottleneck.time
        } else {
            act.time
        };
        combined_time += steady.scaled(f64::from(batch - 1));

        // Every item runs every stage: per-device totals scale × batch.
        let mut per_device: Vec<ExecReport> = per_item
            .iter()
            .map(|r| scale_report(r, u64::from(batch)))
            .collect();

        self.finish(
            per_item,
            &mut per_device,
            combined_time,
            interconnect,
            critical_device,
            batch,
            sink,
            probe,
            &lanes,
        )
    }

    /// Runs one device lane per shard on scoped threads (clamped by the
    /// cluster's parallelism) and returns the outputs in device order.
    /// Instruments are buffered per lane and replayed later by `finish`.
    fn run_lanes(
        &self,
        shards: &[Vec<MatMulShape>],
        traced: bool,
        probed: bool,
    ) -> Result<Vec<LaneOutput>> {
        let workers = self.parallelism.resolve_here().min(shards.len().max(1));
        let config = &self.config.device;
        let outputs = map_sharded(shards, workers, |_d, shard| -> Result<LaneOutput> {
            if shard.is_empty() {
                return Ok(LaneOutput {
                    report: ExecReport::default(),
                    spans: Vec::new(),
                    events: Vec::new(),
                    probes: Vec::new(),
                });
            }
            // Each lane prices serially: the cluster's thread budget is
            // spent one lane per device, not nested inside the engine.
            let device = StreamPim::new(config.clone())?.with_parallelism(Parallelism::Serial);
            let schedule = shard_task(shard)?.lower(&device)?;
            let collector = Collector::new();
            let buffer = BufferProbe::new();
            let lane_sink: &dyn TraceSink = if traced {
                &collector
            } else {
                &pim_trace::NullSink
            };
            let lane_probe: &dyn Probe = if probed { &buffer } else { &rm_core::NullProbe };
            let report = device.execute_instrumented(&schedule, lane_sink, lane_probe);
            Ok(LaneOutput {
                report,
                spans: collector.spans(),
                events: collector.events(),
                probes: buffer.take(),
            })
        });
        outputs.into_iter().collect()
    }

    /// The fixed-device-order reduction shared by both strategies: charges
    /// static power, folds `per_device` + `interconnect` into the combined
    /// report, and replays buffered instruments. Every accumulation runs on
    /// this (the coordinating) thread in ascending device order, which is
    /// what makes the output byte-identical at any worker count.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        per_item: Vec<ExecReport>,
        per_device: &mut [ExecReport],
        combined_time: TimeBreakdown,
        interconnect: InterconnectReport,
        critical_device: u32,
        batch: u32,
        sink: &dyn TraceSink,
        probe: &dyn Probe,
        lanes: &[LaneOutput],
    ) -> Result<ClusterReport> {
        // Static power: every device's peripherals stay powered for the
        // whole cluster window (same formula as the single-device path).
        let window_ns = combined_time.total_ns();
        let static_pj = window_ns * PIM_STATIC_W * 1000.0;
        for r in per_device.iter_mut() {
            r.energy.other_pj += static_pj;
        }

        let mut combined = ExecReport::default();
        for r in per_device.iter() {
            combined.absorb(r);
        }
        combined.time = combined_time;
        combined.energy += interconnect.energy;
        combined.counters += interconnect.counters;

        if sink.enabled() {
            for (d, lane) in lanes.iter().enumerate() {
                for span in &lane.spans {
                    sink.record_span(span.clone().arg("device", d));
                }
                for event in &lane.events {
                    sink.record_instant(event.clone().arg("device", d));
                }
            }
        }
        if probe.enabled() {
            // Engine attribution (one batch item), prefixed per device.
            let mut engine_total = ExecReport::default();
            for (d, lane) in lanes.iter().enumerate() {
                for (path, sample) in &lane.probes {
                    probe.record(&format!("cluster/device[{d}]/{path}"), *sample);
                }
                engine_total.absorb(&per_item[d]);
            }
            if batch > 1 {
                record_replication(probe, &scale_report(&engine_total, u64::from(batch) - 1));
            }
            for (d, link) in interconnect.links.iter().enumerate() {
                if link.load.total() == 0 {
                    continue;
                }
                probe.record(
                    &format!("cluster/interconnect/link[{d}]"),
                    ProbeSample {
                        ops: OpCounters {
                            reads: link.reads,
                            writes: link.writes,
                            ..OpCounters::default()
                        },
                        energy: EnergyBreakdown {
                            read_pj: link.load.bytes_out as f64
                                * self.config.interconnect.pj_per_byte,
                            write_pj: link.load.bytes_in as f64
                                * self.config.interconnect.pj_per_byte,
                            ..EnergyBreakdown::default()
                        },
                        busy_ns: link.busy_ns,
                    },
                );
            }
            for d in 0..per_device.len() {
                probe.record(
                    &format!("cluster/device[{d}]/peripherals"),
                    ProbeSample::energy(EnergyBreakdown {
                        other_pj: static_pj,
                        ..EnergyBreakdown::default()
                    }),
                );
            }
        }

        Ok(ClusterReport {
            combined,
            per_device: per_device.to_vec(),
            interconnect,
            critical_device,
        })
    }
}

/// The matmul list a partitioner needs, or an error for workloads without
/// one.
fn matmul_shapes(workload: &WorkloadSpec) -> Result<Vec<MatMulShape>> {
    match workload {
        WorkloadSpec::MatMul { m, k, n } => Ok(vec![MatMulShape {
            m: *m,
            k: *k,
            n: *n,
        }]),
        WorkloadSpec::Dnn { model } => Ok(model.model().matmuls),
        WorkloadSpec::Polybench { .. } => Err(PimError::Config(format!(
            "workload '{}' has no matmul partitioning; run polybench kernels on a single device",
            workload.name()
        ))),
    }
}

/// Builds the shape-only task for one device's matmul list.
fn shard_task(shapes: &[MatMulShape]) -> Result<ShapeTask> {
    let mut task = ShapeTask::new();
    for s in shapes {
        let a = task.add_shape(s.m, s.k)?;
        let b = task.add_shape(s.k, s.n)?;
        let dst = task.add_shape(s.m, s.n)?;
        task.add_operation(MatrixOp::MatMul { a, b, dst })?;
    }
    Ok(task)
}

/// Replicates a report `k` times (identical batch items).
fn scale_report(r: &ExecReport, k: u64) -> ExecReport {
    let kf = k as f64;
    let mut out = r.clone();
    out.time = r.time.scaled(kf);
    out.energy = r.energy * kf;
    out.counters = r.counters.scaled(k);
    out.vpc.pim = r.vpc.pim * k;
    out.vpc.moves = r.vpc.moves * k;
    out
}

/// Index of the report with the largest total time (first of ties).
fn argmax_time(reports: &[ExecReport]) -> u32 {
    let mut best = 0;
    for (i, r) in reports.iter().enumerate() {
        if r.total_ns() > reports[best].total_ns() {
            best = i;
        }
    }
    best as u32
}

/// Records the batch-replication residual so an attribution tree fed by
/// the probe still sums to the combined report.
fn record_replication(probe: &dyn Probe, residual: &ExecReport) {
    if probe.enabled() {
        probe.record(
            "cluster/batch_replication",
            ProbeSample {
                ops: residual.counters,
                energy: residual.energy,
                busy_ns: residual.time.total_ns(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_baselines::Platform;
    use pim_device::StreamPimConfig;

    fn gemm() -> WorkloadSpec {
        WorkloadSpec::MatMul {
            m: 128,
            k: 64,
            n: 32,
        }
    }

    #[test]
    fn single_device_cluster_matches_platform_bytes() {
        let cluster = Cluster::paper_default(1).unwrap();
        let report = cluster
            .run(&gemm(), PartitionStrategy::Data, 1)
            .unwrap()
            .combined;
        let platform = Platform::stream_pim(StreamPimConfig::paper_default()).unwrap();
        let workload = pim_baselines::Workload::from_spec(&gemm());
        let reference = platform.run(&workload).unwrap();
        assert_eq!(report, reference, "n=1 must be byte-identical");
    }

    #[test]
    fn data_parallel_conserves_energy_and_counters() {
        let cluster = Cluster::paper_default(4).unwrap();
        let r = cluster.run(&gemm(), PartitionStrategy::Data, 3).unwrap();
        let mut fold = ExecReport::default();
        for d in &r.per_device {
            fold.absorb(d);
        }
        fold.energy += r.interconnect.energy;
        fold.counters += r.interconnect.counters;
        assert_eq!(fold.energy, r.combined.energy, "energy conserves exactly");
        assert_eq!(fold.counters, r.combined.counters);
        assert_eq!(fold.vpc, r.combined.vpc);
        // Makespan composition is exact too.
        let expected_time = r.per_device[r.critical_device as usize].time + r.interconnect.time;
        assert_eq!(r.combined.time, expected_time);
    }

    #[test]
    fn data_parallel_beats_single_device_on_batched_gemm() {
        // Tall gemm: row-sharding wins when the broadcast operand (k x n)
        // is small next to the sharded rows. Small/square shapes scale
        // worse — every device still prices the full B distribution.
        let tall = WorkloadSpec::MatMul {
            m: 8192,
            k: 128,
            n: 128,
        };
        let one = Cluster::paper_default(1).unwrap();
        let four = Cluster::paper_default(4).unwrap();
        let batch = 8;
        let t1 = one
            .run(&tall, PartitionStrategy::Data, batch)
            .unwrap()
            .total_ns();
        let t4 = four
            .run(&tall, PartitionStrategy::Data, batch)
            .unwrap()
            .total_ns();
        assert!(
            t1 / t4 >= 3.0,
            "expected ≥3x at 4 devices, got {:.2}x",
            t1 / t4
        );
    }

    #[test]
    fn pipeline_conserves_energy_and_beats_fill_only() {
        let cluster = Cluster::paper_default(4).unwrap();
        let mlp = WorkloadSpec::dnn(pim_workloads::spec::DnnKind::Mlp);
        let b1 = cluster.run(&mlp, PartitionStrategy::Pipeline, 1).unwrap();
        let b8 = cluster.run(&mlp, PartitionStrategy::Pipeline, 8).unwrap();
        // Steady-state items cost at most one stage each: 8 items take far
        // less than 8 fills.
        assert!(b8.total_ns() < 8.0 * b1.total_ns());
        assert!(b8.total_ns() > b1.total_ns());
        let mut fold = ExecReport::default();
        for d in &b8.per_device {
            fold.absorb(d);
        }
        fold.energy += b8.interconnect.energy;
        fold.counters += b8.interconnect.counters;
        assert_eq!(fold.energy, b8.combined.energy);
        assert_eq!(fold.counters, b8.combined.counters);
    }

    #[test]
    fn polybench_refuses_multi_device_partitioning() {
        let cluster = Cluster::paper_default(2).unwrap();
        let spec = WorkloadSpec::polybench(pim_workloads::polybench::Kernel::Gemm, 0.02);
        let err = cluster.run(&spec, PartitionStrategy::Data, 1).unwrap_err();
        assert!(matches!(err, PimError::Config(_)));
        // ... but runs fine on a single-device cluster.
        let one = Cluster::paper_default(1).unwrap();
        assert!(one.run(&spec, PartitionStrategy::Data, 1).is_ok());
    }

    #[test]
    fn worker_count_does_not_change_bytes() {
        let base = Cluster::paper_default(4)
            .unwrap()
            .with_parallelism(Parallelism::Serial);
        let reference = base.run(&gemm(), PartitionStrategy::Data, 2).unwrap();
        for workers in [2usize, 7, 16] {
            let c = Cluster::paper_default(4)
                .unwrap()
                .with_parallelism(Parallelism::Threads(workers));
            let got = c.run(&gemm(), PartitionStrategy::Data, 2).unwrap();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn spec_validation() {
        assert!(ClusterSpec::data(4).with_batch(8).validate().is_ok());
        assert!(ClusterSpec::data(0).validate().is_err());
        assert!(ClusterSpec::data(crate::MAX_DEVICES + 1)
            .validate()
            .is_err());
        assert!(ClusterSpec::pipeline(2).with_batch(0).validate().is_err());
    }
}
