//! Cluster shape: how many devices, and how they hang off the controller.

use crate::interconnect::InterconnectParams;
use pim_device::{PimError, StreamPimConfig};
use serde::{Deserialize, Serialize};

/// Placement of N devices on the controller's memory channels.
///
/// Channels are independent point-to-point links; devices on one channel
/// stack as ranks sharing its bus, each rank one hop deeper than the last
/// (the LPDDR-style hierarchy the interconnect model prices). Device `d`
/// sits on channel `d % channels` at rank `d / channels`, so consecutive
/// devices spread across channels first — rank 0 fills before any link
/// carries two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Total simulated devices (≥ 1).
    pub devices: u32,
    /// Independent channel links to the controller (≥ 1).
    pub channels: u32,
}

impl ClusterTopology {
    /// The default placement for `n` devices: up to four channels (the
    /// controller width modelled throughout), ranks as needed.
    pub fn for_devices(n: u32) -> Self {
        let n = n.max(1);
        ClusterTopology {
            devices: n,
            channels: n.min(4),
        }
    }

    /// The channel device `d` is attached to.
    pub fn channel_of(&self, device: u32) -> u32 {
        device % self.channels
    }

    /// The rank depth of device `d` on its channel (0 = nearest).
    pub fn rank_of(&self, device: u32) -> u32 {
        device / self.channels
    }

    /// Number of ranks on the deepest channel.
    pub fn ranks(&self) -> u32 {
        self.devices.div_ceil(self.channels)
    }

    /// Checks the shape is usable.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for zero devices/channels, more
    /// channels than devices, or more than [`crate::MAX_DEVICES`] devices.
    pub fn validate(&self) -> Result<(), PimError> {
        if self.devices == 0 || self.channels == 0 {
            return Err(PimError::Config(
                "cluster topology needs at least one device and one channel".into(),
            ));
        }
        if self.channels > self.devices {
            return Err(PimError::Config(format!(
                "cluster topology has {} channels for {} devices",
                self.channels, self.devices
            )));
        }
        if self.devices > crate::MAX_DEVICES {
            return Err(PimError::Config(format!(
                "cluster topology has {} devices (max {})",
                self.devices,
                crate::MAX_DEVICES
            )));
        }
        Ok(())
    }
}

/// Everything a [`crate::Cluster`] needs: the per-device configuration,
/// the placement, and the link pricing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Configuration every device in the cluster runs (devices are
    /// homogeneous, as in the paper's single-device evaluation).
    pub device: StreamPimConfig,
    /// Device placement.
    pub topology: ClusterTopology,
    /// Inter-device link pricing.
    pub interconnect: InterconnectParams,
}

impl ClusterConfig {
    /// The paper-default device replicated `n` times on the default
    /// topology with the default interconnect.
    pub fn paper_default(n: u32) -> Self {
        ClusterConfig {
            device: StreamPimConfig::paper_default(),
            topology: ClusterTopology::for_devices(n),
            interconnect: InterconnectParams::paper_default(),
        }
    }

    /// Validates topology and interconnect (the device configuration is
    /// validated when the first device is built).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), PimError> {
        self.topology.validate()?;
        self.interconnect.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_spreads_channels_first() {
        let t = ClusterTopology::for_devices(6);
        assert_eq!((t.devices, t.channels), (6, 4));
        assert_eq!(t.ranks(), 2);
        // Devices 0..=3 sit at rank 0 on channels 0..=3; 4 and 5 stack.
        assert_eq!((t.channel_of(0), t.rank_of(0)), (0, 0));
        assert_eq!((t.channel_of(3), t.rank_of(3)), (3, 0));
        assert_eq!((t.channel_of(4), t.rank_of(4)), (0, 1));
        assert_eq!((t.channel_of(5), t.rank_of(5)), (1, 1));
    }

    #[test]
    fn single_device_topology_is_one_channel() {
        let t = ClusterTopology::for_devices(1);
        assert_eq!((t.devices, t.channels, t.ranks()), (1, 1, 1));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        for bad in [
            ClusterTopology {
                devices: 0,
                channels: 1,
            },
            ClusterTopology {
                devices: 2,
                channels: 0,
            },
            ClusterTopology {
                devices: 2,
                channels: 3,
            },
            ClusterTopology {
                devices: crate::MAX_DEVICES + 1,
                channels: 4,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = ClusterConfig::paper_default(4);
        let json = serde_json::to_string(&config).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        assert!(config.validate().is_ok());
    }
}
