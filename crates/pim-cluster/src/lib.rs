//! Multi-device scale-out: clusters of StreamPIM devices in a rank/channel
//! topology with a priced inter-device interconnect.
//!
//! A [`Cluster`] holds N identical simulated [`StreamPim`] devices arranged
//! as memory channels hosting ranks ([`ClusterTopology`]): channels are
//! independent links to the host controller, devices on the same channel
//! share its bus. Workloads are split across devices by the partitioners in
//! [`partition`]:
//!
//! * **data-parallel** — every matmul's output rows are sharded
//!   contiguously across devices; operands broadcast over the links, row
//!   partials gather back to the controller (the all-reduce of disjoint row
//!   blocks), and the cluster finishes when the critical device does.
//! * **pipeline-parallel** — a DNN's layer list is cut into contiguous
//!   stages balanced by flops, one stage per device; activations between
//!   stages are priced on the links and batches amortize the pipeline fill
//!   against the bottleneck stage.
//!
//! Every link transfer is priced by [`InterconnectParams`] (bandwidth,
//! latency, rank-hop latency, energy per byte) and folded into the combined
//! report's `OpCounters`/`EnergyBreakdown`; an attached probe sees the
//! exact charged quantities under `cluster/interconnect/*` paths, and each
//! device's engine attribution is replayed under `cluster/device[d]/...`.
//!
//! **Determinism contract.** Device lanes execute on scoped OS threads via
//! [`rm_core::shard::map_sharded`] — one lane per simulated device, clamped
//! by the cluster's [`Parallelism`] — and all reports, probe records and
//! trace spans are reduced in fixed device order on the coordinating
//! thread. Results are byte-identical at any worker count, and a
//! single-device cluster (`n = 1`, batch 1) routes through exactly the
//! single-device code path, so its report is byte-identical to
//! [`Platform::run`](pim_baselines::Platform) on the same configuration.

pub mod cluster;
pub mod interconnect;
pub mod partition;
pub mod topology;

pub use cluster::{Cluster, ClusterReport, ClusterSpec, PartitionStrategy};
pub use interconnect::{InterconnectParams, InterconnectReport, LinkLoad};
pub use topology::{ClusterConfig, ClusterTopology};

/// Hard ceiling on simulated devices per cluster (a sanity bound for job
/// admission, far above any modelled deployment in this tree).
pub const MAX_DEVICES: u32 = 64;
