//! Workload partitioners: how a matmul list is split across devices.
//!
//! Both strategies are pure functions of the shapes and the device count —
//! no randomness, no host state — so two clusters given the same workload
//! always cut it identically, which the determinism contract depends on.

use pim_workloads::dnn::MatMulShape;
use std::ops::Range;

/// Splits `m` output rows into `devices` contiguous ranges whose sizes
/// differ by at most one (device `d` gets `m / devices` rows plus one of
/// the first `m % devices` remainders). Trailing devices may receive empty
/// ranges when `m < devices`.
pub fn shard_rows(m: usize, devices: usize) -> Vec<Range<usize>> {
    let devices = devices.max(1);
    let base = m / devices;
    let extra = m % devices;
    let mut start = 0;
    (0..devices)
        .map(|d| {
            let len = base + usize::from(d < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// Data-parallel cut: every matmul's output rows are sharded across all
/// devices with [`shard_rows`], so device `d` computes the same layer list
/// with `m` replaced by its row share (zero-row layers are dropped from
/// that device's list). Each device needs the full `B` operand (broadcast)
/// and returns only its row block of `C` (gather).
pub fn data_shards(shapes: &[MatMulShape], devices: usize) -> Vec<Vec<MatMulShape>> {
    let devices = devices.max(1);
    let mut shards = vec![Vec::with_capacity(shapes.len()); devices];
    for shape in shapes {
        for (d, rows) in shard_rows(shape.m, devices).into_iter().enumerate() {
            if !rows.is_empty() {
                shards[d].push(MatMulShape {
                    m: rows.len(),
                    k: shape.k,
                    n: shape.n,
                });
            }
        }
    }
    shards
}

/// Pipeline-parallel cut: the layer list is split into at most `devices`
/// contiguous stages, balanced by flops. Greedy scan: a stage closes once
/// its flops reach the ideal share of what remains, while always leaving
/// at least one layer per remaining stage — so with `len >= devices` every
/// stage is non-empty, and with fewer layers than devices the tail stages
/// are empty.
pub fn pipeline_stages(shapes: &[MatMulShape], devices: usize) -> Vec<Vec<MatMulShape>> {
    let devices = devices.max(1);
    let mut stages: Vec<Vec<MatMulShape>> = vec![Vec::new(); devices];
    if shapes.is_empty() {
        return stages;
    }
    let total: f64 = shapes.iter().map(MatMulShape::flops).sum();
    let mut layer = 0;
    for (s, stage) in stages.iter_mut().enumerate() {
        let stages_left = devices - s;
        if layer >= shapes.len() {
            break;
        }
        // Ideal share of the remaining flops for this stage.
        let remaining: f64 = shapes[layer..].iter().map(MatMulShape::flops).sum();
        let target = remaining / stages_left as f64;
        let mut flops = 0.0;
        while layer < shapes.len() {
            let layers_left = shapes.len() - layer;
            // Keep one layer for each stage still to fill.
            if layers_left < stages_left && !stage.is_empty() {
                break;
            }
            let f = shapes[layer].flops();
            // Close the stage when adding this layer overshoots the target
            // by more than leaving it out undershoots — unless the stage is
            // still empty (every stage with layers available takes ≥ 1).
            if !stage.is_empty() && flops + f - target > target - flops {
                break;
            }
            stage.push(shapes[layer]);
            flops += f;
            layer += 1;
        }
    }
    debug_assert_eq!(
        stages.iter().map(Vec::len).sum::<usize>(),
        shapes.len(),
        "pipeline stages must cover every layer exactly once (total {total} flops)"
    );
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(m: usize, k: usize, n: usize) -> MatMulShape {
        MatMulShape { m, k, n }
    }

    #[test]
    fn shard_rows_contiguous_and_balanced() {
        let shards = shard_rows(10, 4);
        assert_eq!(shards, vec![0..3, 3..6, 6..8, 8..10]);
        // Exhaustive cover check over a range of shapes.
        for m in 0..40 {
            for d in 1..9 {
                let shards = shard_rows(m, d);
                assert_eq!(shards.len(), d);
                let mut next = 0;
                for r in &shards {
                    assert_eq!(r.start, next, "contiguous");
                    next = r.end;
                }
                assert_eq!(next, m, "covers all rows");
                let sizes: Vec<usize> = shards.iter().map(ExactSizeIterator::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "m={m} d={d}: {sizes:?}");
            }
        }
    }

    #[test]
    fn data_shards_preserve_k_and_n() {
        let shapes = [shape(100, 32, 16), shape(3, 32, 16)];
        let shards = data_shards(&shapes, 4);
        assert_eq!(shards.len(), 4);
        // First matmul: 25 rows each; second: one row on devices 0..3.
        for (d, shard) in shards.iter().enumerate() {
            assert_eq!(shard[0], shape(25, 32, 16));
            if d < 3 {
                assert_eq!(shard[1], shape(1, 32, 16));
            } else {
                assert_eq!(shard.len(), 1, "device 3 has no rows of the 3-row matmul");
            }
        }
        // Row totals reconstruct the originals.
        let m0: usize = shards.iter().filter_map(|s| s.first()).map(|s| s.m).sum();
        assert_eq!(m0, 100);
    }

    #[test]
    fn data_shards_single_device_is_identity() {
        let shapes = [shape(7, 5, 3), shape(2, 9, 4)];
        assert_eq!(data_shards(&shapes, 1), vec![shapes.to_vec()]);
    }

    #[test]
    fn pipeline_stages_cover_layers_in_order() {
        let shapes: Vec<MatMulShape> = (1..=10).map(|i| shape(8 * i, 16, 32)).collect();
        for d in 1..6 {
            let stages = pipeline_stages(&shapes, d);
            assert_eq!(stages.len(), d);
            let flat: Vec<MatMulShape> = stages.iter().flatten().copied().collect();
            assert_eq!(flat, shapes, "devices={d}: order preserved, all covered");
            assert!(
                stages.iter().all(|s| !s.is_empty()),
                "devices={d}: {} layers fill every stage",
                shapes.len()
            );
        }
    }

    #[test]
    fn pipeline_stages_balance_flops() {
        // Uniform layers: stage flops should be within one layer of ideal.
        let shapes = vec![shape(64, 64, 64); 12];
        let stages = pipeline_stages(&shapes, 4);
        for stage in &stages {
            assert_eq!(stage.len(), 3);
        }
    }

    #[test]
    fn pipeline_with_fewer_layers_than_devices() {
        let shapes = [shape(4, 4, 4), shape(8, 8, 8)];
        let stages = pipeline_stages(&shapes, 4);
        assert_eq!(stages.iter().filter(|s| !s.is_empty()).count(), 2);
        let flat: Vec<MatMulShape> = stages.iter().flatten().copied().collect();
        assert_eq!(flat, shapes);
    }
}
