//! The inter-device interconnect model: links priced by bandwidth, latency
//! and energy per byte, serialized per channel, concurrent across channels.

use crate::topology::ClusterTopology;
use pim_device::PimError;
use rm_core::{EnergyBreakdown, OpCounters, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// Link-level pricing of the controller↔device interconnect.
///
/// The defaults model an LPDDR-class off-package channel: a handful of
/// bytes per nanosecond of sustained bandwidth per channel, tens of
/// nanoseconds of command latency per message, a small extra hop for each
/// rank of depth, and a few picojoules per byte for the interface drivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectParams {
    /// Sustained bandwidth of one channel link, bytes per nanosecond.
    pub bytes_per_ns: f64,
    /// Fixed latency per message on a channel link, nanoseconds.
    pub link_latency_ns: f64,
    /// Additional latency per rank of depth on the channel, nanoseconds.
    pub rank_hop_ns: f64,
    /// Interface energy per byte moved, picojoules.
    pub pj_per_byte: f64,
}

impl InterconnectParams {
    /// The default link pricing (LPDDR5X-class channel: 16 B/ns sustained,
    /// 20 ns command latency, 4 ns per rank hop, 4 pJ/B interface energy).
    pub fn paper_default() -> Self {
        InterconnectParams {
            bytes_per_ns: 16.0,
            link_latency_ns: 20.0,
            rank_hop_ns: 4.0,
            pj_per_byte: 4.0,
        }
    }

    /// Checks the parameters are physical.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for non-positive bandwidth or negative
    /// latencies/energy.
    pub fn validate(&self) -> Result<(), PimError> {
        if self.bytes_per_ns.is_nan() || self.bytes_per_ns <= 0.0 {
            return Err(PimError::Config(format!(
                "interconnect bandwidth must be positive, got {}",
                self.bytes_per_ns
            )));
        }
        if self.link_latency_ns < 0.0 || self.rank_hop_ns < 0.0 || self.pj_per_byte < 0.0 {
            return Err(PimError::Config(
                "interconnect latencies and energy must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Command latency for one message to `rank`.
    fn message_latency_ns(&self, rank: u32) -> f64 {
        self.link_latency_ns + self.rank_hop_ns * rank as f64
    }
}

/// Bytes one device exchanged with the controller in one collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkLoad {
    /// Bytes written into the device (operand broadcast, activations in).
    pub bytes_in: u64,
    /// Bytes read out of the device (partial gather, activations out).
    pub bytes_out: u64,
}

impl LinkLoad {
    /// Total bytes crossing the device's link.
    pub fn total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

/// One priced set of link transfers: the elapsed wall time (channels
/// concurrent, ranks on a channel serialized), the energy and the
/// row-transaction counters folded into the combined report, plus the
/// per-device link occupancy for attribution and gauges.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterconnectReport {
    /// Wall-clock charged to the cluster for these transfers. Writes into
    /// devices land in `write_ns`, reads out of devices in `read_ns`,
    /// split by the byte ratio of the two directions.
    pub time: TimeBreakdown,
    /// Link interface energy: `write_pj` for bytes in, `read_pj` for
    /// bytes out.
    pub energy: EnergyBreakdown,
    /// Row transactions (one 64-word row per read/write), matching the
    /// accounting of the device engines.
    pub counters: OpCounters,
    /// Per-device link loads and occupancy, index = device.
    pub links: Vec<LinkStat>,
}

/// One device's share of a priced transfer set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkStat {
    /// Bytes moved in each direction.
    pub load: LinkLoad,
    /// Time this device's link was busy, nanoseconds (occupancy — channels
    /// run concurrently, so these do not sum to the elapsed time).
    pub busy_ns: f64,
    /// Row-read transactions (bytes out).
    pub reads: u64,
    /// Row-write transactions (bytes in).
    pub writes: u64,
    /// Link energy charged for this device's bytes, picojoules.
    pub energy_pj: f64,
}

impl InterconnectReport {
    /// Elapsed wall time of the transfers, nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.time.total_ns()
    }

    /// Link energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Folds another transfer set in (summing elapsed time: the sets are
    /// sequential collectives, e.g. broadcast then gather).
    pub fn absorb(&mut self, other: &InterconnectReport) {
        self.time += other.time;
        self.energy += other.energy;
        self.counters += other.counters;
        if self.links.len() < other.links.len() {
            self.links.resize(other.links.len(), LinkStat::default());
        }
        for (mine, theirs) in self.links.iter_mut().zip(&other.links) {
            mine.load.bytes_in += theirs.load.bytes_in;
            mine.load.bytes_out += theirs.load.bytes_out;
            mine.busy_ns += theirs.busy_ns;
            mine.reads += theirs.reads;
            mine.writes += theirs.writes;
            mine.energy_pj += theirs.energy_pj;
        }
    }

    /// Scales every charged quantity by an integer replication factor
    /// (batch items repeat the same transfers).
    pub fn scaled(&self, k: u64) -> InterconnectReport {
        let kf = k as f64;
        InterconnectReport {
            time: self.time.scaled(kf),
            energy: self.energy * kf,
            counters: self.counters.scaled(k),
            links: self
                .links
                .iter()
                .map(|l| LinkStat {
                    load: LinkLoad {
                        bytes_in: l.load.bytes_in * k,
                        bytes_out: l.load.bytes_out * k,
                    },
                    busy_ns: l.busy_ns * kf,
                    reads: l.reads * k,
                    writes: l.writes * k,
                    energy_pj: l.energy_pj * kf,
                })
                .collect(),
        }
    }
}

/// Bytes per row transaction on the links: one 64-word row, matching the
/// device engines' transfer granularity.
pub(crate) fn row_bytes(word_bits: u32) -> u64 {
    64 * u64::from(word_bits.div_ceil(8).max(1))
}

/// Prices one collective: every device moves its [`LinkLoad`] to/from the
/// controller. Devices on distinct channels transfer concurrently; loads
/// on one channel serialize rank by rank (ascending device index, so the
/// fold order is fixed). The elapsed time is the slowest channel's total.
///
/// All accumulation runs in ascending device index on the caller's thread,
/// so every field of the result is a deterministic function of the inputs.
pub fn price_collective(
    topology: &ClusterTopology,
    params: &InterconnectParams,
    word_bits: u32,
    loads: &[LinkLoad],
) -> InterconnectReport {
    assert_eq!(
        loads.len(),
        topology.devices as usize,
        "one load per device"
    );
    let row = row_bytes(word_bits);
    let mut channel_ns = vec![0.0f64; topology.channels as usize];
    let mut links = Vec::with_capacity(loads.len());
    let mut energy = EnergyBreakdown::default();
    let mut counters = OpCounters::default();
    let (mut bytes_in_total, mut bytes_out_total) = (0u64, 0u64);
    for (d, load) in loads.iter().enumerate() {
        let total = load.total();
        if total == 0 {
            links.push(LinkStat::default());
            continue;
        }
        let rank = topology.rank_of(d as u32);
        let busy = params.message_latency_ns(rank) + total as f64 / params.bytes_per_ns;
        channel_ns[topology.channel_of(d as u32) as usize] += busy;
        let reads = load.bytes_out.div_ceil(row);
        let writes = load.bytes_in.div_ceil(row);
        let read_pj = load.bytes_out as f64 * params.pj_per_byte;
        let write_pj = load.bytes_in as f64 * params.pj_per_byte;
        energy.read_pj += read_pj;
        energy.write_pj += write_pj;
        counters.reads += reads;
        counters.writes += writes;
        bytes_in_total += load.bytes_in;
        bytes_out_total += load.bytes_out;
        links.push(LinkStat {
            load: *load,
            busy_ns: busy,
            reads,
            writes,
            energy_pj: read_pj + write_pj,
        });
    }
    // Elapsed = the busiest channel; attribute it to reads/writes by the
    // byte ratio of the two directions (all-in → write_ns, all-out →
    // read_ns), mirroring `add_baseline_movement`'s split.
    let elapsed = channel_ns.iter().fold(0.0f64, |a, &b| a.max(b));
    let total_bytes = bytes_in_total + bytes_out_total;
    let mut time = TimeBreakdown::default();
    if total_bytes > 0 {
        time.write_ns = elapsed * bytes_in_total as f64 / total_bytes as f64;
        time.read_ns = elapsed * bytes_out_total as f64 / total_bytes as f64;
    }
    InterconnectReport {
        time,
        energy,
        counters,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> InterconnectParams {
        InterconnectParams {
            bytes_per_ns: 10.0,
            link_latency_ns: 5.0,
            rank_hop_ns: 2.0,
            pj_per_byte: 3.0,
        }
    }

    #[test]
    fn channels_run_concurrently_ranks_serialize() {
        // 4 devices on 2 channels: devices 0/2 share channel 0, 1/3 share
        // channel 1 (rank 1 pays one hop).
        let t = ClusterTopology {
            devices: 4,
            channels: 2,
        };
        let loads = vec![
            LinkLoad {
                bytes_in: 100,
                bytes_out: 0,
            };
            4
        ];
        let r = price_collective(&t, &params(), 8, &loads);
        // Per device: latency (5 or 5+2) + 100/10 = 15 or 17 ns busy.
        // Each channel serializes one rank-0 and one rank-1 device.
        assert_eq!(r.links[0].busy_ns, 15.0);
        assert_eq!(r.links[2].busy_ns, 17.0);
        assert_eq!(r.total_ns(), 32.0, "slowest channel, not the sum of 4");
        // All bytes are writes into devices.
        assert_eq!(r.time.write_ns, r.total_ns());
        assert_eq!(r.time.read_ns, 0.0);
        assert_eq!(r.counters.writes, 4 * 100u64.div_ceil(64));
        assert_eq!(r.counters.reads, 0);
        assert_eq!(r.total_pj(), 4.0 * 100.0 * 3.0);
    }

    #[test]
    fn idle_devices_cost_nothing() {
        let t = ClusterTopology {
            devices: 2,
            channels: 2,
        };
        let loads = vec![
            LinkLoad {
                bytes_in: 64,
                bytes_out: 64,
            },
            LinkLoad::default(),
        ];
        let r = price_collective(&t, &params(), 8, &loads);
        assert_eq!(r.links[1], LinkStat::default());
        assert_eq!(r.total_ns(), 5.0 + 128.0 / 10.0);
        // Equal bytes each way: elapsed splits half read, half write.
        assert_eq!(r.time.read_ns, r.time.write_ns);
    }

    #[test]
    fn zero_loads_price_to_zero() {
        let t = ClusterTopology::for_devices(3);
        let r = price_collective(&t, &params(), 8, &[LinkLoad::default(); 3]);
        assert_eq!(
            r,
            InterconnectReport {
                links: vec![LinkStat::default(); 3],
                ..InterconnectReport::default()
            }
        );
    }

    #[test]
    fn absorb_and_scale_compose() {
        let t = ClusterTopology::for_devices(2);
        let loads = vec![
            LinkLoad {
                bytes_in: 128,
                bytes_out: 0,
            },
            LinkLoad {
                bytes_in: 0,
                bytes_out: 256,
            },
        ];
        let one = price_collective(&t, &params(), 8, &loads);
        let mut twice = one.clone();
        twice.absorb(&one);
        assert_eq!(twice, one.scaled(2));
        assert_eq!(twice.total_pj(), 2.0 * one.total_pj());
        assert_eq!(twice.counters.reads, 2 * one.counters.reads);
    }

    #[test]
    fn params_validate() {
        assert!(InterconnectParams::paper_default().validate().is_ok());
        let mut bad = params();
        bad.bytes_per_ns = 0.0;
        assert!(bad.validate().is_err());
        let mut neg = params();
        neg.pj_per_byte = -1.0;
        assert!(neg.validate().is_err());
    }
}
