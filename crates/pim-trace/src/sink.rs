//! Trace sinks: where instrumented code records spans and events.

use crate::span::{Event, Span};
use std::sync::Mutex;

/// The recording interface every instrumentation site writes to.
///
/// Implementations must be thread-safe: the batch runtime records from
/// worker threads concurrently. Instrumentation sites are expected to gate
/// any span *construction* work behind [`TraceSink::enabled`], so a
/// disabled sink costs one predictable branch per site:
///
/// ```
/// # use pim_trace::{NullSink, Span, Track, TraceSink};
/// # let sink = NullSink;
/// if sink.enabled() {
///     sink.record_span(Span::sim("MUL", "compute", Track::Subarray(0), 0.0, 1.0));
/// }
/// ```
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether this sink wants records at all. Sites skip argument
    /// construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one completed span.
    fn record_span(&self, span: Span);

    /// Records one instantaneous event.
    fn record_instant(&self, event: Event);
}

/// The disabled sink: `enabled()` is `false` and both record methods are
/// empty, so instrumentation compiles down to a branch and a no-op call.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _span: Span) {}

    fn record_instant(&self, _event: Event) {}
}

/// In-memory collector: accumulates records for analysis and export.
#[derive(Debug, Default)]
pub struct Collector {
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<Event>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// A copy of the collected spans, ordered by (track id, start time) so
    /// the export is deterministic even when workers recorded concurrently.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().expect("span lock").clone();
        spans.sort_by(|a, b| {
            (a.domain.pid(), a.track.tid())
                .cmp(&(b.domain.pid(), b.track.tid()))
                .then(a.start_ns.total_cmp(&b.start_ns))
        });
        spans
    }

    /// A copy of the collected instant events, deterministically ordered.
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("event lock").clone();
        events.sort_by(|a, b| {
            (a.domain.pid(), a.track.tid())
                .cmp(&(b.domain.pid(), b.track.tid()))
                .then(a.ts_ns.total_cmp(&b.ts_ns))
        });
        events
    }

    /// Number of collected spans.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("span lock").len()
    }

    /// Number of collected instant events.
    pub fn event_count(&self) -> usize {
        self.events.lock().expect("event lock").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.span_count() == 0 && self.event_count() == 0
    }
}

impl TraceSink for Collector {
    fn record_span(&self, span: Span) {
        self.spans.lock().expect("span lock").push(span);
    }

    fn record_instant(&self, event: Event) {
        self.events.lock().expect("event lock").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Track;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record_span(Span::sim("x", "compute", Track::Decoder, 0.0, 1.0));
        sink.record_instant(Event::host("y", "job", Track::Cache, 0.0));
    }

    #[test]
    fn collector_accumulates_and_orders() {
        let c = Collector::new();
        assert!(c.is_empty());
        c.record_span(Span::sim("b", "compute", Track::Subarray(1), 5.0, 1.0));
        c.record_span(Span::sim("a", "compute", Track::Subarray(1), 1.0, 1.0));
        c.record_span(Span::host("j", "job", Track::Worker(0), 0.0, 1.0));
        c.record_instant(Event::host("hit", "cache", Track::Cache, 2.0));
        assert_eq!(c.span_count(), 3);
        assert_eq!(c.event_count(), 1);
        let spans = c.spans();
        // Host pid sorts after sim pid; within a track, by start time.
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[2].name, "j");
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..100 {
                        c.record_span(Span::host(
                            format!("job{i}"),
                            "job",
                            Track::Worker(t),
                            i as f64,
                            1.0,
                        ));
                    }
                });
            }
        });
        assert_eq!(c.span_count(), 400);
    }
}
