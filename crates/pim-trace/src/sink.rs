//! Trace sinks: where instrumented code records spans and events.

use crate::span::{Event, Span};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The recording interface every instrumentation site writes to.
///
/// Implementations must be thread-safe: the batch runtime records from
/// worker threads concurrently. Instrumentation sites are expected to gate
/// any span *construction* work behind [`TraceSink::enabled`], so a
/// disabled sink costs one predictable branch per site:
///
/// ```
/// # use pim_trace::{NullSink, Span, Track, TraceSink};
/// # let sink = NullSink;
/// if sink.enabled() {
///     sink.record_span(Span::sim("MUL", "compute", Track::Subarray(0), 0.0, 1.0));
/// }
/// ```
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Whether this sink wants records at all. Sites skip argument
    /// construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one completed span.
    fn record_span(&self, span: Span);

    /// Records one instantaneous event.
    fn record_instant(&self, event: Event);

    /// Records refused because the sink ran out of room. The default —
    /// unbounded or discarding sinks — is 0; [`Collector`] overrides
    /// this so serving edges can surface trace loss as a live gauge
    /// instead of an offline Analysis warning.
    fn dropped_records(&self) -> u64 {
        0
    }

    /// Retention cap in records, if the sink has one. `None` for
    /// unbounded or discarding sinks; [`Collector`] overrides this.
    fn capacity(&self) -> Option<usize> {
        None
    }
}

/// The disabled sink: `enabled()` is `false` and both record methods are
/// empty, so instrumentation compiles down to a branch and a no-op call.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _span: Span) {}

    fn record_instant(&self, _event: Event) {}
}

/// In-memory collector: accumulates records for analysis and export.
///
/// By default the collector is unbounded — every record is retained. For
/// long traced runs, [`Collector::with_capacity`] caps the total retained
/// records (spans + events combined); once full, further records are
/// *counted* but not stored, so memory stays bounded while
/// [`Collector::dropped_records`] reports exactly how much of the run the
/// trace is missing. Feed that count to [`crate::analyze::Analysis`] via
/// `with_dropped` so downstream reports flag the truncation.
#[derive(Debug, Default)]
pub struct Collector {
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<Event>>,
    /// Maximum retained records (spans + events); `None` = unbounded.
    capacity: Option<usize>,
    /// Records retained so far (only tracked when bounded).
    retained: AtomicUsize,
    /// Records refused because the collector was full.
    dropped: AtomicU64,
}

impl Collector {
    /// An empty, unbounded collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// An empty collector retaining at most `capacity` records (spans and
    /// instant events combined). Records past the cap are dropped and
    /// counted, not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        Collector {
            capacity: Some(capacity),
            ..Collector::default()
        }
    }

    /// The retention cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of records refused because the collector was at capacity.
    /// Zero for unbounded collectors.
    pub fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Atomically claims one retention slot; `false` means the record
    /// must be dropped (and has been counted as such).
    fn try_reserve(&self) -> bool {
        let Some(cap) = self.capacity else {
            return true;
        };
        let reserved = self
            .retained
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_ok();
        if !reserved {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        reserved
    }

    /// A copy of the collected spans, ordered by (track id, start time) so
    /// the export is deterministic even when workers recorded concurrently.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().expect("span lock").clone();
        spans.sort_by(|a, b| {
            (a.domain.pid(), a.track.tid())
                .cmp(&(b.domain.pid(), b.track.tid()))
                .then(a.start_ns.total_cmp(&b.start_ns))
        });
        spans
    }

    /// A copy of the collected instant events, deterministically ordered.
    pub fn events(&self) -> Vec<Event> {
        let mut events = self.events.lock().expect("event lock").clone();
        events.sort_by(|a, b| {
            (a.domain.pid(), a.track.tid())
                .cmp(&(b.domain.pid(), b.track.tid()))
                .then(a.ts_ns.total_cmp(&b.ts_ns))
        });
        events
    }

    /// Number of collected spans.
    pub fn span_count(&self) -> usize {
        self.spans.lock().expect("span lock").len()
    }

    /// Number of collected instant events.
    pub fn event_count(&self) -> usize {
        self.events.lock().expect("event lock").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.span_count() == 0 && self.event_count() == 0
    }
}

impl TraceSink for Collector {
    fn record_span(&self, span: Span) {
        if self.try_reserve() {
            self.spans.lock().expect("span lock").push(span);
        }
    }

    fn record_instant(&self, event: Event) {
        if self.try_reserve() {
            self.events.lock().expect("event lock").push(event);
        }
    }

    fn dropped_records(&self) -> u64 {
        Collector::dropped_records(self)
    }

    fn capacity(&self) -> Option<usize> {
        Collector::capacity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Track;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record_span(Span::sim("x", "compute", Track::Decoder, 0.0, 1.0));
        sink.record_instant(Event::host("y", "job", Track::Cache, 0.0));
    }

    #[test]
    fn collector_accumulates_and_orders() {
        let c = Collector::new();
        assert!(c.is_empty());
        c.record_span(Span::sim("b", "compute", Track::Subarray(1), 5.0, 1.0));
        c.record_span(Span::sim("a", "compute", Track::Subarray(1), 1.0, 1.0));
        c.record_span(Span::host("j", "job", Track::Worker(0), 0.0, 1.0));
        c.record_instant(Event::host("hit", "cache", Track::Cache, 2.0));
        assert_eq!(c.span_count(), 3);
        assert_eq!(c.event_count(), 1);
        let spans = c.spans();
        // Host pid sorts after sim pid; within a track, by start time.
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[2].name, "j");
    }

    #[test]
    fn bounded_collector_drops_and_counts_past_capacity() {
        let c = Collector::with_capacity(3);
        assert_eq!(c.capacity(), Some(3));
        for i in 0..5 {
            c.record_span(Span::sim(
                format!("s{i}"),
                "compute",
                Track::Subarray(0),
                i as f64,
                1.0,
            ));
        }
        c.record_instant(Event::host("late", "cache", Track::Cache, 9.0));
        // First three records retained; the rest counted, not stored.
        assert_eq!(c.span_count(), 3);
        assert_eq!(c.event_count(), 0);
        assert_eq!(c.dropped_records(), 3);
        // The retained prefix is intact and ordered.
        assert_eq!(c.spans()[0].name, "s0");
        assert_eq!(c.spans()[2].name, "s2");
        // Unbounded collectors never drop.
        let unbounded = Collector::new();
        assert_eq!(unbounded.capacity(), None);
        unbounded.record_span(Span::sim("x", "compute", Track::Decoder, 0.0, 1.0));
        assert_eq!(unbounded.dropped_records(), 0);
    }

    #[test]
    fn bounded_collector_counts_drops_under_contention() {
        let c = std::sync::Arc::new(Collector::with_capacity(50));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..100 {
                        c.record_span(Span::host(
                            format!("job{i}"),
                            "job",
                            Track::Worker(t),
                            i as f64,
                            1.0,
                        ));
                    }
                });
            }
        });
        assert_eq!(c.span_count(), 50);
        assert_eq!(c.dropped_records(), 350);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..100 {
                        c.record_span(Span::host(
                            format!("job{i}"),
                            "job",
                            Track::Worker(t),
                            i as f64,
                            1.0,
                        ));
                    }
                });
            }
        });
        assert_eq!(c.span_count(), 400);
    }
}
