//! Utilization analytics over collected spans.
//!
//! Answers the questions the paper's timeline figures answer: how busy is
//! each resource ([`ResourceUtil`]), what bounds the makespan
//! ([`Analysis::critical_path_ns`]), how much computation hides transfers
//! ([`Analysis::overlap_fraction`] — the §IV-C `unblock` effect), and where
//! wall-clock goes overall ([`Breakdown`] — the Fig. 3-style table).
//!
//! All quantities derive from span intervals only; category strings
//! (`"compute"` vs `"transfer"`) classify the overlap sets. Spans from
//! different clock domains must not be mixed in one analysis — filter
//! first if a collector holds both.

use crate::span::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Busy statistics of one resource timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtil {
    /// Track display name (`subarray 17`, `transfer lane 3`, ...).
    pub track: String,
    /// Resource class (`subarray`, `lane`, `decoder`, `phase`, `worker`,
    /// `cache`).
    pub class: &'static str,
    /// Spans recorded on the track.
    pub spans: usize,
    /// Busy time: the measure of the union of the track's span intervals
    /// (self-overlaps are not double-counted), ns.
    pub busy_ns: f64,
    /// `busy_ns / makespan` of the whole analysis window.
    pub utilization: f64,
}

/// Fig. 3-style decomposition of the analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Time where ≥1 compute span is active and no transfer span is, ns.
    pub compute_only_ns: f64,
    /// Time where ≥1 transfer span is active and no compute span is, ns.
    pub transfer_only_ns: f64,
    /// Time where compute and transfer are simultaneously active, ns.
    pub overlapped_ns: f64,
    /// Remainder of the window: neither category active, ns.
    pub idle_ns: f64,
}

/// Utilization analytics over one set of spans (one clock domain).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Window length: latest span end minus earliest span start, ns.
    pub makespan_ns: f64,
    /// Per-resource utilization, ordered by (class, track name).
    pub resources: Vec<ResourceUtil>,
    /// Resource-bound lower bound on the makespan: the largest single
    /// track's busy time. The gap `makespan - critical_path` is
    /// composition slack (dependencies, phasing), not resource shortage.
    pub critical_path_ns: f64,
    /// Time compute and transfer proceed simultaneously, ns.
    pub overlap_ns: f64,
    /// `overlap_ns` over the total time either category is active (0 when
    /// nothing is active). Strictly higher under `OptLevel::Unblock` than
    /// `OptLevel::Base` for the same schedule — the §IV-C claim.
    pub overlap_fraction: f64,
    /// The Fig. 3-style window decomposition.
    pub breakdown: Breakdown,
    /// Records the collector refused because it was at capacity (see
    /// [`crate::Collector::with_capacity`]); attach via
    /// [`Analysis::with_dropped`]. When nonzero, every quantity above is
    /// a lower bound over a truncated trace, and the report says so.
    pub dropped_records: u64,
}

impl Analysis {
    /// Analyzes `spans` (all spans should share one clock domain).
    pub fn of(spans: &[Span]) -> Analysis {
        if spans.is_empty() {
            return Analysis {
                makespan_ns: 0.0,
                resources: Vec::new(),
                critical_path_ns: 0.0,
                overlap_ns: 0.0,
                overlap_fraction: 0.0,
                breakdown: Breakdown::default(),
                dropped_records: 0,
            };
        }
        let origin = spans
            .iter()
            .map(|s| s.start_ns)
            .fold(f64::INFINITY, f64::min);
        let end = spans.iter().map(|s| s.end_ns()).fold(0.0f64, f64::max);
        let makespan = (end - origin).max(0.0);

        // Per-track interval unions.
        let mut per_track: BTreeMap<(&'static str, String), Vec<(f64, f64)>> = BTreeMap::new();
        for s in spans {
            per_track
                .entry((s.track.class(), s.track.to_string()))
                .or_default()
                .push((s.start_ns, s.end_ns()));
        }
        let mut resources: Vec<ResourceUtil> = per_track
            .into_iter()
            .map(|((class, track), mut intervals)| {
                let spans = intervals.len();
                let busy_ns = union_measure(&mut intervals);
                ResourceUtil {
                    track,
                    class,
                    spans,
                    busy_ns,
                    utilization: if makespan > 0.0 {
                        busy_ns / makespan
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        resources.sort_by(|a, b| (a.class, &a.track).cmp(&(b.class, &b.track)));
        let critical_path_ns = resources.iter().map(|r| r.busy_ns).fold(0.0f64, f64::max);

        // Category unions for the overlap/breakdown sweep.
        let mut compute: Vec<(f64, f64)> = Vec::new();
        let mut transfer: Vec<(f64, f64)> = Vec::new();
        for s in spans {
            match s.cat {
                "compute" => compute.push((s.start_ns, s.end_ns())),
                "transfer" => transfer.push((s.start_ns, s.end_ns())),
                _ => {}
            }
        }
        let compute = union_intervals(&mut compute);
        let transfer = union_intervals(&mut transfer);
        let compute_total = measure(&compute);
        let transfer_total = measure(&transfer);
        let overlap_ns = intersection_measure(&compute, &transfer);
        let active_ns = compute_total + transfer_total - overlap_ns;
        let breakdown = Breakdown {
            compute_only_ns: compute_total - overlap_ns,
            transfer_only_ns: transfer_total - overlap_ns,
            overlapped_ns: overlap_ns,
            idle_ns: (makespan - active_ns).max(0.0),
        };

        Analysis {
            makespan_ns: makespan,
            resources,
            critical_path_ns,
            overlap_ns,
            overlap_fraction: if active_ns > 0.0 {
                overlap_ns / active_ns
            } else {
                0.0
            },
            breakdown,
            dropped_records: 0,
        }
    }

    /// Tags this analysis with the collector's dropped-record count, so
    /// reports over a capacity-truncated trace flag themselves:
    ///
    /// ```
    /// # use pim_trace::{analyze::Analysis, Collector, TraceSink};
    /// let sink = Collector::with_capacity(100_000);
    /// // ... traced run records into `sink` ...
    /// let analysis = Analysis::of(&sink.spans()).with_dropped(sink.dropped_records());
    /// ```
    #[must_use]
    pub fn with_dropped(mut self, dropped_records: u64) -> Analysis {
        self.dropped_records = dropped_records;
        self
    }

    /// Resources of one class, in track order.
    pub fn class(&self, class: &str) -> Vec<&ResourceUtil> {
        self.resources.iter().filter(|r| r.class == class).collect()
    }

    /// Mean utilization over the resources of one class (0 if absent).
    pub fn mean_utilization(&self, class: &str) -> f64 {
        let rows = self.class(class);
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.utilization).sum::<f64>() / rows.len() as f64
    }
}

impl fmt::Display for Analysis {
    /// The text utilization report: breakdown percentages, per-class
    /// summaries, and the busiest individual tracks.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped_records > 0 {
            writeln!(
                f,
                "WARNING: {} records dropped (collector at capacity); \
                 all figures are lower bounds over a truncated trace",
                self.dropped_records
            )?;
        }
        writeln!(f, "makespan      {:>14.1} ns", self.makespan_ns)?;
        writeln!(
            f,
            "critical path {:>14.1} ns ({:.1}% of makespan)",
            self.critical_path_ns,
            pct(self.critical_path_ns, self.makespan_ns)
        )?;
        writeln!(
            f,
            "overlap       {:>14.1} ns (fraction {:.3})",
            self.overlap_ns, self.overlap_fraction
        )?;
        let b = &self.breakdown;
        writeln!(
            f,
            "breakdown     compute-only {:.1}% | transfer-only {:.1}% | overlapped {:.1}% | idle {:.1}%",
            pct(b.compute_only_ns, self.makespan_ns),
            pct(b.transfer_only_ns, self.makespan_ns),
            pct(b.overlapped_ns, self.makespan_ns),
            pct(b.idle_ns, self.makespan_ns)
        )?;
        for class in ["subarray", "lane", "decoder", "phase", "worker"] {
            let rows = self.class(class);
            if rows.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{:<10} x{:<4} mean utilization {:>5.1}%",
                class,
                rows.len(),
                self.mean_utilization(class) * 100.0
            )?;
        }
        let mut busiest: Vec<&ResourceUtil> = self.resources.iter().collect();
        busiest.sort_by(|a, b| b.busy_ns.total_cmp(&a.busy_ns));
        for r in busiest.iter().take(5) {
            writeln!(
                f,
                "  {:<18} busy {:>12.1} ns ({:>5.1}%) over {} spans",
                r.track,
                r.busy_ns,
                r.utilization * 100.0,
                r.spans
            )?;
        }
        Ok(())
    }
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        part / whole * 100.0
    } else {
        0.0
    }
}

/// Sorts and merges intervals in place, returning the merged set.
fn union_intervals(intervals: &mut [(f64, f64)]) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for &(start, end) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

/// Total measure of a *merged* interval set.
fn measure(merged: &[(f64, f64)]) -> f64 {
    merged.iter().map(|(s, e)| e - s).sum()
}

/// Measure of the union of (possibly overlapping) intervals.
fn union_measure(intervals: &mut [(f64, f64)]) -> f64 {
    measure(&union_intervals(intervals))
}

/// Measure of the intersection of two *merged* interval sets.
fn intersection_measure(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, Track};

    #[test]
    fn empty_analysis_is_zero() {
        let a = Analysis::of(&[]);
        assert_eq!(a.makespan_ns, 0.0);
        assert_eq!(a.overlap_fraction, 0.0);
        assert!(a.resources.is_empty());
    }

    #[test]
    fn serial_spans_have_zero_overlap() {
        let spans = vec![
            Span::sim("c", "compute", Track::Subarray(0), 0.0, 10.0),
            Span::sim("t", "transfer", Track::TransferLane(0), 10.0, 10.0),
        ];
        let a = Analysis::of(&spans);
        assert_eq!(a.makespan_ns, 20.0);
        assert_eq!(a.overlap_ns, 0.0);
        assert_eq!(a.breakdown.compute_only_ns, 10.0);
        assert_eq!(a.breakdown.transfer_only_ns, 10.0);
        assert_eq!(a.breakdown.idle_ns, 0.0);
    }

    #[test]
    fn overlapped_spans_are_measured() {
        let spans = vec![
            Span::sim("c", "compute", Track::Subarray(0), 0.0, 10.0),
            Span::sim("t", "transfer", Track::TransferLane(0), 5.0, 10.0),
        ];
        let a = Analysis::of(&spans);
        assert_eq!(a.makespan_ns, 15.0);
        assert_eq!(a.overlap_ns, 5.0);
        // Active 15, overlap 5 -> fraction 1/3.
        assert!((a.overlap_fraction - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(a.breakdown.overlapped_ns, 5.0);
        assert_eq!(a.breakdown.idle_ns, 0.0);
    }

    #[test]
    fn per_track_union_does_not_double_count() {
        // Two overlapping spans on the same track: busy = union, not sum.
        let spans = vec![
            Span::sim("a", "compute", Track::Subarray(1), 0.0, 10.0),
            Span::sim("b", "compute", Track::Subarray(1), 5.0, 10.0),
            Span::sim("idle-tail", "transfer", Track::TransferLane(0), 15.0, 5.0),
        ];
        let a = Analysis::of(&spans);
        let sub = &a.class("subarray")[0];
        assert_eq!(sub.busy_ns, 15.0);
        assert_eq!(sub.spans, 2);
        assert_eq!(a.critical_path_ns, 15.0);
        assert!((sub.utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn idle_time_is_the_remainder() {
        let spans = vec![
            Span::sim("c", "compute", Track::Subarray(0), 0.0, 5.0),
            Span::sim("t", "transfer", Track::TransferLane(0), 10.0, 5.0),
        ];
        let a = Analysis::of(&spans);
        assert_eq!(a.makespan_ns, 15.0);
        assert_eq!(a.breakdown.idle_ns, 5.0);
    }

    #[test]
    fn display_report_mentions_key_lines() {
        let spans = vec![
            Span::sim("c", "compute", Track::Subarray(0), 0.0, 10.0),
            Span::sim("t", "transfer", Track::TransferLane(0), 5.0, 10.0),
        ];
        let text = Analysis::of(&spans).to_string();
        assert!(text.contains("makespan"));
        assert!(text.contains("critical path"));
        assert!(text.contains("overlapped"));
        assert!(text.contains("subarray"));
    }

    #[test]
    fn dropped_records_are_surfaced_in_the_report() {
        use crate::sink::{Collector, TraceSink};
        let sink = Collector::with_capacity(1);
        sink.record_span(Span::sim("kept", "compute", Track::Subarray(0), 0.0, 10.0));
        sink.record_span(Span::sim(
            "lost",
            "transfer",
            Track::TransferLane(0),
            5.0,
            10.0,
        ));
        let a = Analysis::of(&sink.spans()).with_dropped(sink.dropped_records());
        assert_eq!(a.dropped_records, 1);
        // Only the retained span contributes to the figures.
        assert_eq!(a.makespan_ns, 10.0);
        let text = a.to_string();
        assert!(text.contains("1 records dropped"));
        assert!(text.contains("lower bounds"));
        // A complete trace carries no warning.
        assert!(!Analysis::of(&[]).to_string().contains("dropped"));
    }

    #[test]
    fn nonzero_origin_is_normalized() {
        // Host spans start at an arbitrary wall-clock offset.
        let spans = vec![
            Span::host("j0", "job", Track::Worker(0), 1000.0, 10.0),
            Span::host("j1", "job", Track::Worker(1), 1005.0, 10.0),
        ];
        let a = Analysis::of(&spans);
        assert_eq!(a.makespan_ns, 15.0);
        let w0 = &a.class("worker")[0];
        assert!((w0.utilization - 10.0 / 15.0).abs() < 1e-12);
    }
}
