//! Trace record types: spans, instant events, tracks, clock domains.
//!
//! ## Track naming scheme
//!
//! Every record lands on one **track** — a monotonic per-resource timeline
//! that maps 1:1 onto a Perfetto thread row. Tracks mirror the device
//! model's resources: one per PIM subarray (the shift-vs-read/write rule
//! means a subarray does one thing at a time at VPC granularity), one per
//! transfer lane (one lane per PIM bank), one for the bank command decoder,
//! one per analytic engine phase, plus host-side worker/cache tracks.
//!
//! ## Clock domains
//!
//! Simulated device time and host wall-clock are *different clocks* and
//! must never share an axis. Each [`Span`]/[`Event`] therefore carries a
//! [`ClockDomain`]; the Chrome exporter maps the domain to a Perfetto
//! process (`pid`), so both timelines land in one trace file as separate
//! process groups with a shared zero.

use std::fmt;

/// Canonical argument key for the request-scoped correlation id minted
/// by a serving edge. Every layer that annotates spans or events with a
/// request id uses this key, so one grep over a trace export — or one
/// [`Span::request_id`] call over collected records — links an HTTP
/// submission to its admission decision, queue wait, runtime job, and
/// device spans.
pub const ATTR_REQUEST_ID: &str = "request_id";

/// Which clock a record's timestamps are measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Simulated device time: nanoseconds since schedule start, produced by
    /// the pricing engines. Deterministic per (config, schedule).
    Sim,
    /// Host wall-clock: nanoseconds since runtime construction, observed
    /// with `Instant`. Varies run to run.
    Host,
}

impl ClockDomain {
    /// Perfetto process id for this domain's process group.
    pub fn pid(self) -> u64 {
        match self {
            ClockDomain::Sim => 1,
            ClockDomain::Host => 2,
        }
    }

    /// Human-readable process-group name (Perfetto `process_name`).
    pub fn process_name(self) -> &'static str {
        match self {
            ClockDomain::Sim => "StreamPIM device (simulated ns)",
            ClockDomain::Host => "pim-runtime host (wall-clock ns)",
        }
    }
}

/// Analytic-engine phase timelines (the closed-form engine has no
/// per-resource schedule, only per-round phase composition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Operand broadcasts of a round (TRAN fan-out).
    Broadcast,
    /// The round's compute makespan across subarrays.
    Compute,
    /// Result collections of a round (TRAN fan-in).
    Collect,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Broadcast => "phase:broadcast",
            Phase::Compute => "phase:compute",
            Phase::Collect => "phase:collect",
        }
    }
}

/// A per-resource timeline (maps to a Perfetto thread row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// One PIM subarray's occupancy (compute commands execute here).
    Subarray(u32),
    /// One inter-subarray transfer lane (one per PIM bank).
    TransferLane(u32),
    /// The bank command decoder (one decode slot per VPC).
    Decoder,
    /// An analytic-engine phase timeline (see [`Phase`]).
    Phase(Phase),
    /// One host worker thread of the batch runtime.
    Worker(u32),
    /// The runtime's schedule cache (probe hit/miss instants).
    Cache,
    /// One HTTP service thread of the network front-end (per-request
    /// spans from `pim-serve`).
    Service(u32),
}

impl Track {
    /// Stable Perfetto thread id. Ranges are disjoint per track family so
    /// ids never collide: workers 1.., cache 900, subarrays 10000..,
    /// lanes 20000.., decoder 30000, phases 40000.., services 50000...
    pub fn tid(self) -> u64 {
        match self {
            Track::Worker(w) => 1 + w as u64,
            Track::Cache => 900,
            Track::Subarray(s) => 10_000 + s as u64,
            Track::TransferLane(l) => 20_000 + l as u64,
            Track::Decoder => 30_000,
            Track::Phase(Phase::Broadcast) => 40_000,
            Track::Phase(Phase::Compute) => 40_001,
            Track::Phase(Phase::Collect) => 40_002,
            Track::Service(s) => 50_000 + s as u64,
        }
    }

    /// The resource class this track belongs to (used by trace validation:
    /// a healthy end-to-end trace has ≥1 span per class).
    pub fn class(self) -> &'static str {
        match self {
            Track::Subarray(_) => "subarray",
            Track::TransferLane(_) => "lane",
            Track::Decoder => "decoder",
            Track::Phase(_) => "phase",
            Track::Worker(_) => "worker",
            Track::Cache => "cache",
            Track::Service(_) => "service",
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Track::Subarray(s) => write!(f, "subarray {s}"),
            Track::TransferLane(l) => write!(f, "transfer lane {l}"),
            Track::Decoder => f.write_str("decoder"),
            Track::Phase(p) => f.write_str(p.name()),
            Track::Worker(w) => write!(f, "worker {w}"),
            Track::Cache => f.write_str("schedule cache"),
            Track::Service(s) => write!(f, "service {s}"),
        }
    }
}

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String (workload names, platform names — may carry any UTF-8).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One interval on one resource timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Display name (VPC mnemonic, phase, job name).
    pub name: String,
    /// Category: `"compute"`, `"transfer"`, `"decode"`, `"job"`,
    /// `"lowering"` — the analyzer classifies overlap by category.
    pub cat: &'static str,
    /// The clock the timestamps are measured on.
    pub domain: ClockDomain,
    /// The resource timeline this span occupies.
    pub track: Track,
    /// Start, nanoseconds on `domain`'s clock.
    pub start_ns: f64,
    /// Duration, nanoseconds.
    pub dur_ns: f64,
    /// Typed key/value annotations (op-counter deltas, VPC kind, ...).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// A simulated-domain span with no arguments.
    pub fn sim(
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        Span {
            name: name.into(),
            cat,
            domain: ClockDomain::Sim,
            track,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    /// A host-domain span with no arguments.
    pub fn host(
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        Span {
            name: name.into(),
            cat,
            domain: ClockDomain::Host,
            track,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// The [`ATTR_REQUEST_ID`] annotation, if this span carries one.
    pub fn request_id(&self) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if *k == ATTR_REQUEST_ID => Some(s.as_str()),
            _ => None,
        })
    }

    /// End time, nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.dur_ns
    }
}

/// An instantaneous marker on a resource timeline (cache probe, steal).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Display name.
    pub name: String,
    /// Category (same taxonomy as [`Span::cat`]).
    pub cat: &'static str,
    /// The clock the timestamp is measured on.
    pub domain: ClockDomain,
    /// The resource timeline the marker lands on.
    pub track: Track,
    /// Timestamp, nanoseconds on `domain`'s clock.
    pub ts_ns: f64,
    /// Typed key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// A host-domain instant event with no arguments.
    pub fn host(name: impl Into<String>, cat: &'static str, track: Track, ts_ns: f64) -> Self {
        Event {
            name: name.into(),
            cat,
            domain: ClockDomain::Host,
            track,
            ts_ns,
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// The [`ATTR_REQUEST_ID`] annotation, if this event carries one.
    pub fn request_id(&self) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if *k == ATTR_REQUEST_ID => Some(s.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_ids_are_disjoint() {
        let tracks = [
            Track::Worker(0),
            Track::Worker(7),
            Track::Cache,
            Track::Subarray(0),
            Track::Subarray(511),
            Track::TransferLane(0),
            Track::TransferLane(15),
            Track::Decoder,
            Track::Phase(Phase::Broadcast),
            Track::Phase(Phase::Compute),
            Track::Phase(Phase::Collect),
        ];
        let mut ids: Vec<u64> = tracks.iter().map(|t| t.tid()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tracks.len(), "tids collide");
    }

    #[test]
    fn domains_have_distinct_pids() {
        assert_ne!(ClockDomain::Sim.pid(), ClockDomain::Host.pid());
        assert_ne!(
            ClockDomain::Sim.process_name(),
            ClockDomain::Host.process_name()
        );
    }

    #[test]
    fn span_builder() {
        let s = Span::sim("MUL", "compute", Track::Subarray(3), 10.0, 5.0)
            .arg("elements", 100u64)
            .arg("kind", "MUL");
        assert_eq!(s.end_ns(), 15.0);
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.track.class(), "subarray");
        assert_eq!(s.track.to_string(), "subarray 3");
    }

    #[test]
    fn request_id_annotation_round_trips() {
        let bare = Span::host("j", "job", Track::Worker(0), 0.0, 1.0);
        assert_eq!(bare.request_id(), None);
        let tagged = Span::host("j", "job", Track::Worker(0), 0.0, 1.0)
            .arg("index", 3u64)
            .arg(ATTR_REQUEST_ID, "req-00000001");
        assert_eq!(tagged.request_id(), Some("req-00000001"));
        let event = Event::host("submit", "http", Track::Service(0), 0.0)
            .arg(ATTR_REQUEST_ID, "req-00000002");
        assert_eq!(event.request_id(), Some("req-00000002"));
    }

    #[test]
    fn classes_cover_families() {
        assert_eq!(Track::TransferLane(2).class(), "lane");
        assert_eq!(Track::Decoder.class(), "decoder");
        assert_eq!(Track::Phase(Phase::Compute).class(), "phase");
        assert_eq!(Track::Worker(1).class(), "worker");
        assert_eq!(Track::Cache.class(), "cache");
        assert_eq!(Track::Service(0).class(), "service");
        assert_eq!(Track::Service(3).tid(), 50_003);
        assert_eq!(Track::Service(3).to_string(), "service 3");
    }
}
