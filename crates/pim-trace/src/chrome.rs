//! Chrome trace-event export (the JSON object format Perfetto loads).
//!
//! Spans become complete events (`ph: "X"`) and instants become instant
//! events (`ph: "i"`). Timestamps and durations are microseconds (the
//! format's unit); fractional values preserve nanosecond resolution.
//! Clock domains map to processes ([`ClockDomain::pid`]) and tracks to
//! threads ([`Track::tid`]); `process_name`/`thread_name` metadata events
//! label both, so Perfetto renders "subarray 17", "transfer lane 3",
//! "worker 0" rows under two process groups.
//!
//! Load a written file at <https://ui.perfetto.dev> ("Open trace file") or
//! `chrome://tracing`.

use crate::span::{ClockDomain, Event, Span, Track};
use serde::Value;
use std::collections::BTreeSet;

/// Renders spans + instants as a Chrome trace-event JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ns"}`).
pub fn to_chrome_json(spans: &[Span], events: &[Event]) -> String {
    let mut trace_events: Vec<Value> = Vec::with_capacity(spans.len() + events.len() + 16);

    // Metadata: name every process and thread that appears.
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut track_meta: Vec<(u64, Track)> = Vec::new();
    for (domain, track) in spans
        .iter()
        .map(|s| (s.domain, s.track))
        .chain(events.iter().map(|e| (e.domain, e.track)))
    {
        pids.insert(domain.pid());
        if tracks.insert((domain.pid(), track.tid())) {
            track_meta.push((domain.pid(), track));
        }
    }
    for pid in &pids {
        let name = [ClockDomain::Sim, ClockDomain::Host]
            .into_iter()
            .find(|d| d.pid() == *pid)
            .map(ClockDomain::process_name)
            .unwrap_or("unknown");
        trace_events.push(metadata_event("process_name", *pid, None, name));
    }
    for (pid, track) in &track_meta {
        trace_events.push(metadata_event(
            "thread_name",
            *pid,
            Some(track.tid()),
            &track.to_string(),
        ));
    }

    for span in spans {
        let mut fields = vec![
            ("name".to_string(), Value::Str(span.name.clone())),
            ("cat".to_string(), Value::Str(span.cat.to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Float(span.start_ns / 1e3)),
            ("dur".to_string(), Value::Float(span.dur_ns / 1e3)),
            ("pid".to_string(), Value::UInt(span.domain.pid())),
            ("tid".to_string(), Value::UInt(span.track.tid())),
        ];
        if !span.args.is_empty() {
            fields.push(("args".to_string(), args_value(&span.args)));
        }
        trace_events.push(Value::Map(fields));
    }

    for event in events {
        let mut fields = vec![
            ("name".to_string(), Value::Str(event.name.clone())),
            ("cat".to_string(), Value::Str(event.cat.to_string())),
            ("ph".to_string(), Value::Str("i".to_string())),
            ("ts".to_string(), Value::Float(event.ts_ns / 1e3)),
            ("pid".to_string(), Value::UInt(event.domain.pid())),
            ("tid".to_string(), Value::UInt(event.track.tid())),
            // Thread-scoped instant: renders as a tick on its track.
            ("s".to_string(), Value::Str("t".to_string())),
        ];
        if !event.args.is_empty() {
            fields.push(("args".to_string(), args_value(&event.args)));
        }
        trace_events.push(Value::Map(fields));
    }

    let root = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    serde_json::to_string(&root).expect("trace serialization is infallible")
}

fn metadata_event(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(kind.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::UInt(tid)));
    }
    fields.push((
        "args".to_string(),
        Value::Map(vec![("name".to_string(), Value::Str(name.to_string()))]),
    ));
    Value::Map(fields)
}

fn args_value(args: &[(&'static str, crate::span::ArgValue)]) -> Value {
    use crate::span::ArgValue;
    Value::Map(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(u) => Value::UInt(*u),
                    ArgValue::F64(f) => Value::Float(*f),
                    ArgValue::Str(s) => Value::Str(s.clone()),
                    ArgValue::Bool(b) => Value::Bool(*b),
                };
                (k.to_string(), value)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, Track};

    fn sample_spans() -> Vec<Span> {
        vec![
            Span::sim("MUL v[100]", "compute", Track::Subarray(7), 0.0, 120.5)
                .arg("elements", 100u64)
                .arg("kind", "MUL"),
            Span::sim("TRAN", "transfer", Track::TransferLane(2), 50.0, 30.0),
            Span::sim("decode", "decode", Track::Decoder, 0.0, 5.0),
            Span::sim(
                "round 0",
                "compute",
                Track::Phase(Phase::Compute),
                0.0,
                120.5,
            ),
            Span::host("gemm@0.02", "job", Track::Worker(0), 1000.0, 2000.0).arg("cache_hit", true),
        ]
    }

    #[test]
    fn export_parses_back_and_has_required_fields() {
        let events = vec![Event::host("probe", "cache", Track::Cache, 990.0).arg("hit", false)];
        let json = to_chrome_json(&sample_spans(), &events);
        let root: Value = serde_json::from_str(&json).unwrap();
        let Value::Seq(items) = root.field("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        let mut complete = 0;
        let mut instants = 0;
        for item in items {
            let ph = match item.field("ph").unwrap() {
                Value::Str(s) => s.clone(),
                other => panic!("ph must be a string, got {other:?}"),
            };
            assert!(item.field("pid").is_ok());
            match ph.as_str() {
                "X" => {
                    complete += 1;
                    assert!(item.field("ts").is_ok());
                    assert!(item.field("dur").is_ok());
                    assert!(item.field("tid").is_ok());
                }
                "i" => {
                    instants += 1;
                    assert!(item.field("ts").is_ok());
                }
                "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(complete, 5);
        assert_eq!(instants, 1);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let spans = vec![Span::sim("x", "compute", Track::Subarray(0), 2000.0, 500.0)];
        let json = to_chrome_json(&spans, &[]);
        // 2000 ns = 2 us, 500 ns = 0.5 us.
        assert!(json.contains("\"ts\":2.0"), "{json}");
        assert!(json.contains("\"dur\":0.5"), "{json}");
    }

    #[test]
    fn processes_and_threads_are_named() {
        let json = to_chrome_json(&sample_spans(), &[]);
        assert!(json.contains("process_name"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("subarray 7"));
        assert!(json.contains("transfer lane 2"));
        assert!(json.contains("worker 0"));
        assert!(json.contains("StreamPIM device (simulated ns)"));
        assert!(json.contains("pim-runtime host (wall-clock ns)"));
    }

    #[test]
    fn workload_names_with_special_characters_survive() {
        let spans = vec![Span::host(
            "gemm \"große\" α→β\n😀",
            "job",
            Track::Worker(0),
            0.0,
            1.0,
        )];
        let json = to_chrome_json(&spans, &[]);
        let root: Value = serde_json::from_str(&json).unwrap();
        let Value::Seq(items) = root.field("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        let name = items
            .iter()
            .filter(|i| matches!(i.field("ph"), Ok(Value::Str(p)) if p == "X"))
            .map(|i| i.field("name").unwrap().clone())
            .next()
            .unwrap();
        assert_eq!(name, Value::Str("gemm \"große\" α→β\n😀".to_string()));
    }
}
