//! Cross-layer structured tracing for the StreamPIM stack.
//!
//! The rest of the workspace reports *aggregates* — `ExecReport`
//! totals, operation counters, runtime job metrics. This crate adds the
//! *timeline* view the paper's key claims are actually about: the overlap of
//! computation and transfer (§IV-C `unblock`), subarray blocking under the
//! shift-vs-read/write rule, and memory-vs-compute breakdowns (Fig. 3).
//!
//! Three layers:
//!
//! * [`span`] — the record types: a [`Span`] is one interval on one
//!   resource [`Track`] in one [`ClockDomain`] (simulated device time vs
//!   host wall-clock); an [`Event`] is an instantaneous marker.
//! * [`sink`] — the [`TraceSink`] trait instrumented code records into,
//!   with three implementations: [`Collector`] (in-memory), the Chrome
//!   trace-event writer in [`chrome`] (fed from a collector), and
//!   [`NullSink`] whose `enabled()` gate lets every instrumentation site
//!   compile down to a predictable branch when tracing is off.
//! * [`analyze`] — utilization analytics over collected spans: per-resource
//!   busy fractions, critical path, compute∩transfer overlap, and a
//!   Fig. 3-style time-breakdown table.
//!
//! Determinism contract: simulated-domain spans are a pure function of the
//! schedule and configuration; host-domain spans carry wall-clock
//! observations and vary run to run. The two domains are kept in separate
//! Perfetto process groups (see [`ClockDomain::pid`]) so one trace file can
//! hold both without conflating clocks.
//!
//! ```
//! use pim_trace::{analyze::Analysis, chrome, Collector, Span, Track, TraceSink};
//!
//! let sink = Collector::new();
//! sink.record_span(Span::sim("MUL", "compute", Track::Subarray(3), 0.0, 50.0));
//! sink.record_span(Span::sim("TRAN", "transfer", Track::TransferLane(0), 10.0, 30.0));
//! let analysis = Analysis::of(&sink.spans());
//! assert!(analysis.overlap_fraction > 0.0);
//! let json = chrome::to_chrome_json(&sink.spans(), &sink.events());
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod analyze;
pub mod chrome;
pub mod sink;
pub mod span;

pub use sink::{Collector, NullSink, TraceSink};
pub use span::{ArgValue, ClockDomain, Event, Phase, Span, Track, ATTR_REQUEST_ID};
