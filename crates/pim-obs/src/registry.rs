//! A sharded, lock-cheap metrics registry.
//!
//! Callers register a *family* (name + help + kind) and then resolve
//! *series* within it (a concrete label set). Resolution takes one shard
//! lock; the returned handle is an `Arc` around plain atomics, so the hot
//! path — `inc`, `add`, `observe` — is entirely lock-free. Sixteen shards
//! keyed by a hash of the full series identity keep resolution cheap even
//! when many HTTP workers mint label sets concurrently.
//!
//! `gather()` produces a deterministic snapshot: families sorted by name,
//! series sorted by label values — so the Prometheus encoder emits a
//! stable text ordering and golden tests can compare exposition output
//! directly.

use crate::hist::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// The three metric kinds the registry supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Fixed-boundary power-of-two histogram (see [`crate::hist`]).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prom_type(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

// Every `Series` lives behind one `Arc`; boxing the (inline-atomic)
// histogram would only add a pointer chase to the `observe` hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SeriesValue {
    Counter(AtomicU64),
    Gauge(AtomicI64),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

/// Handle to a counter series: monotonic, lock-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<Series>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        match &self.0.value {
            SeriesValue::Counter(v) => {
                v.fetch_add(n, Ordering::Relaxed);
            }
            _ => unreachable!("counter handle always wraps a counter series"),
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        match &self.0.value {
            SeriesValue::Counter(v) => v.load(Ordering::Relaxed),
            _ => unreachable!("counter handle always wraps a counter series"),
        }
    }
}

/// Handle to a gauge series: settable, lock-free.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<Series>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        match &self.0.value {
            SeriesValue::Gauge(g) => g.store(v, Ordering::Relaxed),
            _ => unreachable!("gauge handle always wraps a gauge series"),
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        match &self.0.value {
            SeriesValue::Gauge(g) => {
                g.fetch_add(delta, Ordering::Relaxed);
            }
            _ => unreachable!("gauge handle always wraps a gauge series"),
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        match &self.0.value {
            SeriesValue::Gauge(g) => g.load(Ordering::Relaxed),
            _ => unreachable!("gauge handle always wraps a gauge series"),
        }
    }
}

/// Handle to a histogram series: records `u64` observations lock-free.
#[derive(Debug, Clone)]
pub struct Histo(Arc<Series>);

impl Histo {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        match &self.0.value {
            SeriesValue::Histogram(h) => h.record(value),
            _ => unreachable!("histogram handle always wraps a histogram series"),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        match &self.0.value {
            SeriesValue::Histogram(h) => h.count(),
            _ => unreachable!("histogram handle always wraps a histogram series"),
        }
    }

    /// The bucket-midpoint percentile estimate for quantile `q`.
    pub fn percentile(&self, q: f64) -> u64 {
        match &self.0.value {
            SeriesValue::Histogram(h) => h.percentile(q),
            _ => unreachable!("histogram handle always wraps a histogram series"),
        }
    }
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: &'static str,
}

/// A point-in-time copy of one series' value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram buckets (65 power-of-two buckets), exact sum, and count.
    Histogram {
        /// Per-bucket counts, indexed by significant-bit bucket.
        buckets: Vec<u64>,
        /// Exact sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A point-in-time copy of one series: its label set and value.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time copy of one family: metadata plus all of its series.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric family name.
    pub name: String,
    /// Kind shared by every series in the family.
    pub kind: MetricKind,
    /// Help text.
    pub help: String,
    /// Series sorted by label values.
    pub series: Vec<SeriesSnapshot>,
}

/// The registry: family metadata plus sharded series storage.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
    shards: [Mutex<HashMap<String, Arc<Series>>>; SHARDS],
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

fn shard_of(key: &str) -> usize {
    // FNV-1a; stable across runs so shard assignment is deterministic.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash as usize) % SHARDS
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register_family(&self, name: &'static str, help: &'static str, kind: MetricKind) {
        let mut families = self.families.lock().expect("family table lock");
        let existing = families.entry(name).or_insert(Family { kind, help });
        assert_eq!(
            existing.kind, kind,
            "metric family {name} re-registered with a different kind"
        );
    }

    fn resolve(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesValue,
    ) -> Arc<Series> {
        let key = series_key(name, labels);
        let mut shard = self.shards[shard_of(&key)].lock().expect("series shard");
        Arc::clone(shard.entry(key).or_insert_with(|| {
            Arc::new(Series {
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                value: make(),
            })
        }))
    }

    /// Resolves (registering on first use) a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        self.register_family(name, help, MetricKind::Counter);
        Counter(self.resolve(name, labels, || SeriesValue::Counter(AtomicU64::new(0))))
    }

    /// Resolves (registering on first use) a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        self.register_family(name, help, MetricKind::Gauge);
        Gauge(self.resolve(name, labels, || SeriesValue::Gauge(AtomicI64::new(0))))
    }

    /// Resolves (registering on first use) a histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histo {
        self.register_family(name, help, MetricKind::Histogram);
        Histo(self.resolve(name, labels, || SeriesValue::Histogram(Histogram::new())))
    }

    /// A deterministic snapshot of every family and series: families
    /// sorted by name, series sorted by label pairs.
    pub fn gather(&self) -> Vec<FamilySnapshot> {
        let families: Vec<(&'static str, Family)> = {
            let table = self.families.lock().expect("family table lock");
            table.iter().map(|(n, f)| (*n, f.clone())).collect()
        };
        // One pass over the shards groups series under their family name.
        let mut by_family: BTreeMap<String, Vec<SeriesSnapshot>> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("series shard");
            for (key, series) in shard.iter() {
                let name = key.split('\u{1}').next().unwrap_or(key).to_string();
                let value = match &series.value {
                    SeriesValue::Counter(v) => SnapshotValue::Counter(v.load(Ordering::Relaxed)),
                    SeriesValue::Gauge(g) => SnapshotValue::Gauge(g.load(Ordering::Relaxed)),
                    SeriesValue::Histogram(h) => SnapshotValue::Histogram {
                        buckets: h.counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                by_family.entry(name).or_default().push(SeriesSnapshot {
                    labels: series.labels.clone(),
                    value,
                });
            }
        }
        families
            .into_iter()
            .map(|(name, family)| {
                let mut series = by_family.remove(name).unwrap_or_default();
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                FamilySnapshot {
                    name: name.to_string(),
                    kind: family.kind,
                    help: family.help.to_string(),
                    series,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_lock_free_and_shared() {
        let registry = Registry::new();
        let a = registry.counter("jobs_total", "Jobs", &[("tenant", "gold")]);
        let b = registry.counter("jobs_total", "Jobs", &[("tenant", "gold")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same label set resolves to the same series");

        let g = registry.gauge("depth", "Queue depth", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);

        let h = registry.histogram("latency_ns", "Latency", &[]);
        h.observe(600);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), 767);
    }

    #[test]
    fn gather_is_sorted_and_complete() {
        let registry = Registry::new();
        registry
            .counter("b_total", "B", &[("tenant", "zeta")])
            .inc();
        registry
            .counter("b_total", "B", &[("tenant", "alpha")])
            .add(4);
        registry.gauge("a_gauge", "A", &[]).set(-3);

        let snapshot = registry.gather();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].name, "a_gauge");
        assert_eq!(snapshot[0].series[0].value, SnapshotValue::Gauge(-3));
        assert_eq!(snapshot[1].name, "b_total");
        let tenants: Vec<&str> = snapshot[1]
            .series
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(tenants, ["alpha", "zeta"], "series sorted by label value");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_programming_errors() {
        let registry = Registry::new();
        registry.counter("x_total", "X", &[]);
        registry.gauge("x_total", "X", &[]);
    }

    #[test]
    fn concurrent_resolution_and_updates() {
        let registry = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let registry = Arc::clone(&registry);
                s.spawn(move || {
                    let tenant = format!("t{}", t % 4);
                    for _ in 0..1_000 {
                        registry
                            .counter("hits_total", "Hits", &[("tenant", &tenant)])
                            .inc();
                    }
                });
            }
        });
        let snapshot = registry.gather();
        let total: u64 = snapshot[0]
            .series
            .iter()
            .map(|s| match s.value {
                SnapshotValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 8_000);
        assert_eq!(snapshot[0].series.len(), 4);
    }
}
