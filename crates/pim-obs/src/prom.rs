//! Prometheus text exposition (format 0.0.4): an encoder for registry
//! snapshots and a strict line-level validator used by the golden tests
//! and the CI smoke binaries.
//!
//! Histograms are encoded the Prometheus way — cumulative `_bucket`
//! series with `le` upper bounds, plus `_sum` and `_count` — using the
//! power-of-two bucket boundaries from [`crate::hist`], so a scrape sees
//! exactly the same bucket semantics the in-process percentiles use.

use crate::hist;
use crate::registry::{FamilySnapshot, SnapshotValue};
use std::collections::HashSet;

/// Escapes a HELP text: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Encodes a registry snapshot as Prometheus text exposition.
pub fn encode(families: &[FamilySnapshot]) -> String {
    let mut out = String::new();
    for family in families {
        out.push_str(&format!(
            "# HELP {} {}\n",
            family.name,
            escape_help(&family.help)
        ));
        out.push_str(&format!(
            "# TYPE {} {}\n",
            family.name,
            family.kind.prom_type()
        ));
        for series in &family.series {
            match &series.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        family.name,
                        render_labels(&series.labels, None)
                    ));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        family.name,
                        render_labels(&series.labels, None)
                    ));
                }
                SnapshotValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (b, bucket_count) in buckets.iter().enumerate() {
                        cumulative += bucket_count;
                        let (_, hi) = hist::bucket_bounds(b);
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            family.name,
                            render_labels(&series.labels, Some(("le", &hi.to_string())))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {count}\n",
                        family.name,
                        render_labels(&series.labels, Some(("le", "+Inf")))
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {sum}\n",
                        family.name,
                        render_labels(&series.labels, None)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {count}\n",
                        family.name,
                        render_labels(&series.labels, None)
                    ));
                }
            }
        }
    }
    out
}

/// Summary of a validated exposition body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Number of `# TYPE` families seen.
    pub families: usize,
    /// Number of distinct sample series (name + label set) seen.
    pub series: usize,
    /// Number of sample lines seen.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits a sample line into (name, raw label text, value text).
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| format!("unclosed label set: {line}"))?;
        if close < open {
            return Err(format!("malformed label set: {line}"));
        }
        let value = line[close + 1..].trim();
        if value.is_empty() {
            return Err(format!("sample line without value: {line}"));
        }
        Ok((&line[..open], &line[open + 1..close], value))
    } else {
        let mut parts = line.splitn(2, ' ');
        let name = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("").trim();
        if value.is_empty() {
            return Err(format!("sample line without value: {line}"));
        }
        Ok((name, "", value))
    }
}

/// Parses a raw label body (`k1="v1",k2="v2"`) into pairs, honoring
/// escape sequences inside quoted values.
fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = raw.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("invalid label name: {name}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value not quoted: {rest}"));
        }
        // Scan for the closing quote, skipping escapes.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated label value: {rest}"));
            }
            match bytes[i] {
                b'"' => break,
                b'\\' => {
                    if i + 1 >= bytes.len() {
                        return Err(format!("dangling escape: {rest}"));
                    }
                    match bytes[i + 1] {
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'n' => value.push('\n'),
                        other => return Err(format!("bad escape \\{}: {rest}", other as char)),
                    }
                    i += 2;
                }
                _ => {
                    // Multi-byte UTF-8 is passed through byte-wise; label
                    // values in this workspace are ASCII.
                    value.push(bytes[i] as char);
                    i += 1;
                }
            }
        }
        pairs.push((name.to_string(), value));
        rest = after[i + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest}"));
        }
    }
    Ok(pairs)
}

/// Validates a Prometheus text exposition body line by line:
///
/// * every `# TYPE` is preceded by a `# HELP` for the same name, with a
///   known type keyword, and no family appears twice;
/// * every sample line parses (valid metric name, well-formed label set,
///   numeric value) and belongs to the family most recently declared
///   (allowing `_bucket`/`_sum`/`_count` suffixes for histograms);
/// * no (name + label set) series appears twice.
///
/// Returns summary statistics, or the first violation.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut pending_help: Option<String> = None;
    let mut current_family: Option<(String, String)> = None; // (name, type)
    let mut declared: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut stats = ExpositionStats {
        families: 0,
        series: 0,
        samples: 0,
    };

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("HELP with invalid metric name: {line}"));
            }
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").to_string();
            if !valid_metric_name(&name) {
                return Err(format!("TYPE with invalid metric name: {line}"));
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown TYPE keyword: {line}"));
            }
            if pending_help.as_deref() != Some(name.as_str()) {
                return Err(format!("TYPE for {name} not paired with HELP"));
            }
            if !declared.insert(name.clone()) {
                return Err(format!("family {name} declared twice"));
            }
            pending_help = None;
            current_family = Some((name, kind));
            stats.families += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }

        // Sample line.
        let (name, raw_labels, value) = split_sample(line)?;
        if !valid_metric_name(name) {
            return Err(format!("invalid metric name in sample: {line}"));
        }
        let (family, kind) = current_family
            .as_ref()
            .ok_or_else(|| format!("sample before any TYPE: {line}"))?;
        let belongs = if kind == "histogram" {
            name == family.as_str()
                || name == format!("{family}_bucket")
                || name == format!("{family}_sum")
                || name == format!("{family}_count")
        } else {
            name == family.as_str()
        };
        if !belongs {
            return Err(format!("sample {name} outside its family block ({family})"));
        }
        let labels = parse_labels(raw_labels)?;
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("unparseable sample value: {line}"));
        }
        let mut series_id = String::from(name);
        for (k, v) in &labels {
            series_id.push('\u{1}');
            series_id.push_str(k);
            series_id.push('\u{2}');
            series_id.push_str(v);
        }
        if !seen_series.insert(series_id) {
            return Err(format!("duplicate series: {line}"));
        }
        stats.series += 1;
        stats.samples += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn encoded_output_validates() {
        let registry = Registry::new();
        registry
            .counter("pim_jobs_total", "Jobs", &[("tenant", "gold")])
            .add(3);
        registry
            .counter("pim_jobs_total", "Jobs", &[("tenant", "silver")])
            .add(1);
        registry.gauge("pim_queue_depth", "Depth", &[]).set(2);
        let h = registry.histogram("pim_latency_ns", "Latency", &[("route", "submit")]);
        h.observe(600);
        h.observe(1_000_000);

        let text = encode(&registry.gather());
        let stats = validate_exposition(&text).expect("encoder output is valid");
        assert_eq!(stats.families, 3);
        // 2 counters + 1 gauge + (65 buckets + Inf + sum + count).
        assert_eq!(stats.samples, 3 + 68);
        assert!(text.contains("pim_jobs_total{tenant=\"gold\"} 3\n"));
        assert!(text.contains("pim_latency_ns_bucket{route=\"submit\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("pim_latency_ns_sum{route=\"submit\"} 1000600\n"));
        assert!(text.contains("pim_latency_ns_count{route=\"submit\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = Registry::new();
        let h = registry.histogram("lat", "L", &[]);
        h.observe(600); // bucket 10, upper bound 1023
        h.observe(700); // same bucket
        h.observe(1_000_000); // bucket 20, upper bound 1048575
        let text = encode(&registry.gather());
        assert!(text.contains("lat_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"1048575\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn label_escaping_round_trips() {
        let registry = Registry::new();
        registry
            .counter("esc_total", "Esc", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = encode(&registry.gather());
        let stats = validate_exposition(&text).expect("escaped output validates");
        assert_eq!(stats.samples, 1);
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        assert!(validate_exposition("# TYPE x counter\nx 1\n")
            .unwrap_err()
            .contains("not paired with HELP"));
        assert!(
            validate_exposition("# HELP x X\n# TYPE x counter\nx 1\nx 2\n")
                .unwrap_err()
                .contains("duplicate series")
        );
        assert!(validate_exposition("x 1\n")
            .unwrap_err()
            .contains("before any TYPE"));
        assert!(validate_exposition("# HELP x X\n# TYPE x counter\ny 1\n")
            .unwrap_err()
            .contains("outside its family"));
        assert!(
            validate_exposition("# HELP x X\n# TYPE x counter\nx notanumber\n")
                .unwrap_err()
                .contains("unparseable")
        );
        assert!(validate_exposition(
            "# HELP x X\n# TYPE x counter\n# HELP x X\n# TYPE x counter\n"
        )
        .unwrap_err()
        .contains("declared twice"));
    }
}
