//! Per-tenant SLO tracking: latency objectives and error-budget burn.
//!
//! The service declares one objective — "a fraction `objective` of
//! requests complete successfully within `latency_objective_ns`" — and
//! the tracker folds every finished request into per-tenant good/total
//! counts. *Attainment* is the good fraction; *error-budget burn* is the
//! bad fraction divided by the allowed bad fraction, so burn < 1.0 means
//! the tenant is inside its budget and burn ≥ 1.0 means the objective is
//! being missed.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The service-wide objective.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SloConfig {
    /// A request is "good" if it succeeds within this many host
    /// nanoseconds end to end.
    pub latency_objective_ns: u64,
    /// Target good fraction, e.g. 0.99.
    pub objective: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            // 2 s end-to-end at three nines: generous enough that a CI
            // box meets it, tight enough that hangs and overload show up.
            latency_objective_ns: 2_000_000_000,
            objective: 0.999,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct TenantCounts {
    good: u64,
    total: u64,
}

/// One tenant's SLO position at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Tenant name.
    pub tenant: String,
    /// Requests that met the objective.
    pub good: u64,
    /// All finished requests.
    pub total: u64,
    /// `good / total` (1.0 when no requests have finished).
    pub attainment: f64,
    /// Bad fraction over allowed bad fraction; ≥ 1.0 means the
    /// objective is currently missed.
    pub error_budget_burn: f64,
}

/// The full SLO report exposed at `/v1/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The configured latency objective.
    pub latency_objective_ns: u64,
    /// The configured good-fraction objective.
    pub objective: f64,
    /// Per-tenant positions, sorted by tenant name.
    pub tenants: Vec<TenantSlo>,
}

/// Folds request outcomes into per-tenant SLO state.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    tenants: Mutex<BTreeMap<String, TenantCounts>>,
}

impl SloTracker {
    /// A tracker with the given objective.
    pub fn new(config: SloConfig) -> Self {
        SloTracker {
            config,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured objective.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one finished request: whether it succeeded, and its
    /// end-to-end host latency.
    pub fn observe(&self, tenant: &str, ok: bool, latency_ns: u64) {
        let mut tenants = self.tenants.lock().expect("slo table lock");
        let counts = tenants.entry(tenant.to_string()).or_default();
        counts.total += 1;
        if ok && latency_ns <= self.config.latency_objective_ns {
            counts.good += 1;
        }
    }

    /// The current report, tenants sorted by name.
    pub fn report(&self) -> SloReport {
        let allowed_bad = (1.0 - self.config.objective).max(1e-9);
        let tenants = self.tenants.lock().expect("slo table lock");
        SloReport {
            latency_objective_ns: self.config.latency_objective_ns,
            objective: self.config.objective,
            tenants: tenants
                .iter()
                .map(|(tenant, counts)| {
                    let attainment = if counts.total == 0 {
                        1.0
                    } else {
                        counts.good as f64 / counts.total as f64
                    };
                    TenantSlo {
                        tenant: tenant.clone(),
                        good: counts.good,
                        total: counts.total,
                        attainment,
                        error_budget_burn: (1.0 - attainment) / allowed_bad,
                    }
                })
                .collect(),
        }
    }
}

/// Evaluates a batch of latencies offline against an objective — used by
/// loadgen's pass/fail summary. Returns `(attainment, burn, pass)`.
pub fn evaluate(config: &SloConfig, outcomes: &[(bool, u64)]) -> (f64, f64, bool) {
    if outcomes.is_empty() {
        return (1.0, 0.0, true);
    }
    let good = outcomes
        .iter()
        .filter(|(ok, latency_ns)| *ok && *latency_ns <= config.latency_objective_ns)
        .count();
    let attainment = good as f64 / outcomes.len() as f64;
    let burn = (1.0 - attainment) / (1.0 - config.objective).max(1e-9);
    (attainment, burn, attainment >= config.objective)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_crosses_one_exactly_when_objective_missed() {
        let tracker = SloTracker::new(SloConfig {
            latency_objective_ns: 1_000,
            objective: 0.9,
        });
        // 9 good, 1 slow: attainment exactly at the objective, burn 1.0.
        for _ in 0..9 {
            tracker.observe("gold", true, 500);
        }
        tracker.observe("gold", true, 5_000);
        let report = tracker.report();
        assert_eq!(report.tenants.len(), 1);
        let gold = &report.tenants[0];
        assert_eq!(gold.good, 9);
        assert_eq!(gold.total, 10);
        assert!((gold.attainment - 0.9).abs() < 1e-12);
        assert!((gold.error_budget_burn - 1.0).abs() < 1e-9);

        // A failure pushes past the budget.
        tracker.observe("gold", false, 100);
        let burn = tracker.report().tenants[0].error_budget_burn;
        assert!(burn > 1.0, "burn {burn} should exceed 1.0");
    }

    #[test]
    fn tenants_are_independent_and_sorted() {
        let tracker = SloTracker::new(SloConfig::default());
        tracker.observe("zeta", true, 10);
        tracker.observe("alpha", false, 10);
        let report = tracker.report();
        let names: Vec<&str> = report.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert!((report.tenants[0].attainment - 0.0).abs() < 1e-12);
        assert!((report.tenants[1].attainment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offline_evaluation_matches_tracker_semantics() {
        let config = SloConfig {
            latency_objective_ns: 1_000,
            objective: 0.95,
        };
        let outcomes: Vec<(bool, u64)> = (0..100)
            .map(|i| (true, if i < 97 { 500 } else { 2_000 }))
            .collect();
        let (attainment, burn, pass) = evaluate(&config, &outcomes);
        assert!((attainment - 0.97).abs() < 1e-12);
        assert!(pass, "97% under objective meets a 95% target");
        assert!(burn < 1.0);
        let (_, _, pass_empty) = evaluate(&config, &[]);
        assert!(pass_empty, "no traffic trivially passes");
    }
}
