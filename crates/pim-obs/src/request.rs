//! Request-scoped correlation ids.
//!
//! Every HTTP request entering pim-serve mints one `RequestId` that is
//! threaded through the admission decision, the tenant queue, the
//! metering ledger, the runtime job, and pim-trace span attributes — so
//! one grep over traces, events, and the ledger reconstructs a request's
//! whole life. Ids are deterministic per source instance (a counter, not
//! a random UUID): replaying the same request sequence yields the same
//! ids, which keeps the integration tests exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mints sequential request ids of the form `req-<hex counter>`.
#[derive(Debug)]
pub struct RequestIdSource {
    next: AtomicU64,
}

impl Default for RequestIdSource {
    fn default() -> Self {
        RequestIdSource::new()
    }
}

impl RequestIdSource {
    /// A source starting at `req-00000001`.
    pub fn new() -> Self {
        RequestIdSource {
            next: AtomicU64::new(1),
        }
    }

    /// Mints the next id.
    pub fn mint(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        format!("req-{n:08x}")
    }

    /// Number of ids minted so far.
    pub fn minted(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_unique() {
        let source = RequestIdSource::new();
        assert_eq!(source.mint(), "req-00000001");
        assert_eq!(source.mint(), "req-00000002");
        assert_eq!(source.minted(), 2);
    }

    #[test]
    fn concurrent_minting_never_collides() {
        let source = std::sync::Arc::new(RequestIdSource::new());
        let mut all = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let source = std::sync::Arc::clone(&source);
                    s.spawn(move || (0..500).map(|_| source.mint()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("minter"))
                .collect::<Vec<_>>()
        });
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 4_000, "all minted ids distinct");
    }
}
