//! pim-obs: always-on host-side telemetry for the StreamPIM stack.
//!
//! The crate is std-only and deliberately a *leaf* — it depends on
//! nothing but the serde shims, so every layer (runtime, serving edge,
//! CLIs, examples) can record into it without dependency cycles. Four
//! pieces:
//!
//! * [`hist`] — the workspace's shared power-of-two histogram scheme
//!   (bucket-midpoint percentiles), factored out of `pim_runtime::metrics`
//!   so the runtime snapshot and the live registry agree exactly;
//! * [`registry`] — a sharded metrics [`Registry`] of counters, gauges,
//!   and histograms with lock-free hot paths, encoded for scraping by
//!   [`prom`] (`GET /metrics.prom`);
//! * [`events`] — a leveled, rate-limited, bounded [`EventLog`] ring
//!   (`GET /v1/events`) replacing ad-hoc `eprintln!` paths;
//! * [`slo`] + [`request`] — per-tenant latency objectives with
//!   error-budget burn, and the [`RequestIdSource`] that mints the
//!   correlation ids threaded from HTTP ingress through admission,
//!   queueing, metering, runtime jobs, and trace spans.
//!
//! **Determinism contract**: everything here observes host-side
//! execution; nothing feeds back into simulated results. The workspace
//! determinism suite asserts that observed and unobserved runs produce
//! byte-identical `ExecReport`s.

pub mod events;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod request;
pub mod slo;

pub use events::{EventLog, EventLogConfig, EventRecord, Level};
pub use hist::Histogram;
pub use registry::{
    Counter, FamilySnapshot, Gauge, Histo, MetricKind, Registry, SeriesSnapshot, SnapshotValue,
};
pub use request::RequestIdSource;
pub use slo::{SloConfig, SloReport, SloTracker, TenantSlo};
