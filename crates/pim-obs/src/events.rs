//! A structured, leveled, rate-limited event log with a bounded
//! in-memory ring.
//!
//! This replaces ad-hoc `eprintln!` paths in the serving stack: events
//! are structured records (level, scope, message, request id, key/value
//! fields) that are retained in a bounded ring for `GET /v1/events` and
//! can be rendered as JSON lines. A per-scope token window bounds the
//! rate of retained events so a hot error path cannot evict everything
//! else from the ring; suppressed events are counted, never silently
//! lost.
//!
//! Timestamps are host-side wall-clock offsets from log construction.
//! Nothing here feeds back into simulation results — the determinism
//! suite proves observed and unobserved runs produce byte-identical
//! reports.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Event severity, in increasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Unexpected but handled conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// Lower-case name for display.
    pub fn name(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonic sequence number (1-based, gap-free across retained and
    /// suppressed events, so readers can detect ring eviction).
    pub seq: u64,
    /// Host nanoseconds since the log was constructed.
    pub host_ns: u64,
    /// Severity.
    pub level: Level,
    /// Emitting component, e.g. `serve.admission` or `runtime.worker`.
    pub scope: String,
    /// Human-readable message.
    pub message: String,
    /// Correlating request id; empty when the event is not
    /// request-scoped.
    pub request_id: String,
    /// Structured key/value payload.
    pub fields: Vec<(String, String)>,
}

/// Per-scope sliding-window rate limiter state.
#[derive(Debug)]
struct ScopeWindow {
    window_start_ns: u64,
    emitted_in_window: u64,
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<EventRecord>,
    next_seq: u64,
    windows: HashMap<String, ScopeWindow>,
}

/// Configuration for an [`EventLog`].
#[derive(Debug, Clone, Copy)]
pub struct EventLogConfig {
    /// Ring capacity: oldest retained events are evicted beyond this.
    pub capacity: usize,
    /// Maximum events retained per scope per window.
    pub max_per_scope_per_window: u64,
    /// Rate-limit window length in host nanoseconds.
    pub window_ns: u64,
}

impl Default for EventLogConfig {
    fn default() -> Self {
        EventLogConfig {
            capacity: 1024,
            max_per_scope_per_window: 128,
            window_ns: 1_000_000_000,
        }
    }
}

/// The bounded, rate-limited event ring.
#[derive(Debug)]
pub struct EventLog {
    config: EventLogConfig,
    origin: Instant,
    inner: Mutex<Inner>,
    suppressed: AtomicU64,
    min_level: Level,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(EventLogConfig::default())
    }
}

impl EventLog {
    /// A new log with the given configuration, retaining `Info` and
    /// above.
    pub fn new(config: EventLogConfig) -> Self {
        EventLog {
            config,
            origin: Instant::now(),
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(config.capacity.min(4096)),
                next_seq: 1,
                windows: HashMap::new(),
            }),
            suppressed: AtomicU64::new(0),
            min_level: Level::Info,
        }
    }

    /// A new log that also retains `Debug` events.
    pub fn with_min_level(config: EventLogConfig, min_level: Level) -> Self {
        EventLog {
            min_level,
            ..EventLog::new(config)
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Number of events dropped by level filtering or rate limiting
    /// (ring eviction is *not* counted here; it is visible as a `seq`
    /// gap below the oldest retained event).
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Emits one event. Returns the sequence number if retained, `None`
    /// if filtered or rate-limited.
    pub fn emit(
        &self,
        level: Level,
        scope: &str,
        request_id: &str,
        message: &str,
        fields: &[(&str, &str)],
    ) -> Option<u64> {
        if level < self.min_level {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let host_ns = self.origin.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("event ring lock");
        // Per-scope window check. `Error` events bypass the limiter: an
        // operator must never lose the first sign of a failure.
        if level < Level::Error {
            let window = inner
                .windows
                .entry(scope.to_string())
                .or_insert(ScopeWindow {
                    window_start_ns: host_ns,
                    emitted_in_window: 0,
                });
            if host_ns.saturating_sub(window.window_start_ns) >= self.config.window_ns {
                window.window_start_ns = host_ns;
                window.emitted_in_window = 0;
            }
            if window.emitted_in_window >= self.config.max_per_scope_per_window {
                drop(inner);
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            window.emitted_in_window += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() >= self.config.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(EventRecord {
            seq,
            host_ns,
            level,
            scope: scope.to_string(),
            message: message.to_string(),
            request_id: request_id.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        Some(seq)
    }

    /// The most recent `limit` retained events, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<EventRecord> {
        let inner = self.inner.lock().expect("event ring lock");
        let skip = inner.ring.len().saturating_sub(limit);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event ring lock").ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the most recent `limit` events as JSON lines (one record
    /// per line, oldest first).
    pub fn to_json_lines(&self, limit: usize) -> String {
        self.recent(limit)
            .iter()
            .map(|record| serde_json::to_string(record).expect("event serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let log = EventLog::new(EventLogConfig {
            capacity: 4,
            max_per_scope_per_window: 1_000,
            window_ns: u64::MAX,
        });
        for i in 0..10 {
            log.emit(
                Level::Info,
                "test",
                "",
                &format!("event {i}"),
                &[("i", &i.to_string())],
            );
        }
        let recent = log.recent(100);
        assert_eq!(recent.len(), 4, "ring holds at most capacity");
        assert_eq!(recent[0].seq, 7, "oldest retained after eviction");
        assert_eq!(recent[3].seq, 10);
        assert_eq!(recent[3].message, "event 9");
    }

    #[test]
    fn level_filter_and_rate_limit_count_suppressed() {
        let log = EventLog::new(EventLogConfig {
            capacity: 100,
            max_per_scope_per_window: 3,
            window_ns: u64::MAX,
        });
        assert!(log.emit(Level::Debug, "s", "", "filtered", &[]).is_none());
        for _ in 0..5 {
            log.emit(Level::Info, "s", "", "burst", &[]);
        }
        assert_eq!(log.len(), 3, "window caps retained events per scope");
        assert_eq!(log.suppressed(), 3, "1 filtered + 2 rate-limited");
        // Errors bypass the limiter.
        assert!(log.emit(Level::Error, "s", "req-1", "boom", &[]).is_some());
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn records_serialize_as_json_lines() {
        let log = EventLog::default();
        log.emit(
            Level::Warn,
            "serve.admission",
            "req-00000001",
            "rejected",
            &[("tenant", "gold"), ("reason", "tenant queue full")],
        );
        let lines = log.to_json_lines(10);
        assert!(lines.contains("\"level\""));
        assert!(lines.contains("req-00000001"));
        assert!(lines.contains("tenant queue full"));
        let parsed: EventRecord = serde_json::from_str(&lines).expect("round trips");
        assert_eq!(parsed.scope, "serve.admission");
        assert_eq!(parsed.level, Level::Warn);
    }
}
