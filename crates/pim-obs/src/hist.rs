//! The workspace's shared latency/energy histogram scheme: fixed
//! power-of-two bucket boundaries with bucket-midpoint percentile
//! estimates.
//!
//! This module is the single home of the bucketing math that
//! `pim_runtime::metrics` introduced (and PR 4 corrected from
//! inclusive-upper-bound to midpoint reporting, which had over-reported
//! percentiles by up to 2x). The runtime's `MetricsSnapshot` and the
//! `pim-obs` registry's [`Histogram`] both delegate here, so every
//! percentile in the system shares exact bucket semantics:
//!
//! * bucket `b` counts observations needing exactly `b` significant bits,
//!   i.e. values in `[2^(b-1), 2^b)`; bucket 0 counts zeros;
//! * the estimate reported for a bucket is its **midpoint** — unbiased for
//!   values uniform within the bucket, exact to within half a bucket;
//! * recording is O(1) with fixed bounds, so histograms merge by
//!   element-wise addition and percentile computation is snapshot-time
//!   only.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: enough for any `u64` observation.
pub const BUCKETS: usize = 65;

/// The bucket index for one observation (its significant-bit count).
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` range covered by bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else if b >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (b - 1), (1u64 << b) - 1)
    }
}

/// The estimate reported for bucket `b`: the midpoint of its range.
pub fn bucket_midpoint(b: usize) -> u64 {
    let (lo, hi) = bucket_bounds(b);
    lo + (hi - lo) / 2
}

/// The midpoint of the bucket holding the rank-`q` observation: the
/// smallest bucket `b` such that at least `ceil(total * q)` of the
/// recorded observations land in buckets ≤ `b`. Returns 0 for an empty
/// histogram.
pub fn percentile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (b, &count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_midpoint(b);
        }
    }
    bucket_midpoint(counts.len() - 1)
}

/// A lock-free fixed-boundary histogram: 65 power-of-two buckets plus an
/// exact sum and count. Recording is two relaxed atomic adds; snapshots
/// are consistent enough for monitoring (each bucket is individually
/// exact and monotone).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded observations (wrapping on u64 overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A copy of the bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The bucket-midpoint percentile estimate for quantile `q`.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile(&self.counts(), q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), b, "lower bound lands in its bucket");
            assert_eq!(bucket_of(hi), b, "upper bound lands in its bucket");
        }
    }

    #[test]
    fn midpoint_matches_the_runtime_convention() {
        // The same anchors pim-runtime's metrics tests freeze: a 600 ns
        // sample lands in bucket 10 = [512, 1023], midpoint 767; a 1 ms
        // sample lands in bucket 20, midpoint 786_431.
        assert_eq!(bucket_midpoint(bucket_of(600)), 767);
        assert_eq!(bucket_midpoint(bucket_of(1_000_000)), 786_431);
        assert_eq!(bucket_midpoint(0), 0);
    }

    #[test]
    fn percentiles_from_recorded_observations() {
        let h = Histogram::new();
        for _ in 0..98 {
            h.record(1_000);
        }
        for _ in 0..2 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 98 * 1_000 + 2 * 1_000_000);
        assert_eq!(h.percentile(0.50), 767);
        assert_eq!(h.percentile(0.95), 767);
        assert_eq!(h.percentile(0.99), 786_431);
        // Empty histogram: zero.
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.counts().iter().sum::<u64>(), 40_000);
    }
}
