//! The batch runtime: platform pool + executor + cache + metrics.

use crate::cache::ScheduleCache;
use crate::executor;
use crate::job::Job;
use crate::metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot};
use pim_baselines::{Platform, Workload};
use pim_device::{ExecReport, Parallelism, PriceTable, StreamPim};
use pim_trace::{Event, NullSink, Span, TraceSink, Track};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Runtime tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads per batch (clamped to the batch size; 0 means 1).
    pub workers: usize,
    /// Whether lowered schedules are cached across jobs and batches.
    pub cache_enabled: bool,
    /// Intra-run parallelism granted to each job's simulated device.
    /// `Auto` resolves to the batch's fair share of the machine — see
    /// [`intra_worker_budget`] — so batch workers × intra-run threads never
    /// oversubscribe the host. Simulated results are byte-identical at
    /// every level (the device engine's reduction is deterministic).
    pub intra_parallelism: Parallelism,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            cache_enabled: true,
            intra_parallelism: Parallelism::Serial,
        }
    }
}

/// Worker threads one job may use internally when the runtime grants it
/// `intra` parallelism while running `batch_workers` jobs concurrently on a
/// machine with `total_threads` hardware threads.
///
/// `Auto` yields the batch's fair share, `total_threads / batch_workers`
/// (floor 1), so a saturated batch never oversubscribes:
/// `batch_workers * budget <= max(total_threads, batch_workers)`. Explicit
/// `Threads(n)` requests are honoured as-is — the caller asked for exactly
/// `n` — and `Serial` is always 1.
pub fn intra_worker_budget(
    intra: Parallelism,
    batch_workers: usize,
    total_threads: usize,
) -> usize {
    match intra {
        Parallelism::Auto => (total_threads / batch_workers.max(1)).max(1),
        other => other.resolve(total_threads),
    }
}

/// Per-job observers threaded through [`Runtime::run_batch_instrumented`]:
/// every job in the batch records its host job span, cache instants and
/// full simulated timeline into `sink`, and its component attribution into
/// `probe` — in addition to the runtime's own batch-level sink. With null
/// instruments this is exactly [`Runtime::run_batch`]; the repriced fast
/// path stays engaged either way (see
/// [`pim_baselines::Platform::run_schedule_repriced_instrumented`]), so
/// always-on observers add no simulation work.
#[derive(Clone, Copy)]
pub struct JobInstruments<'a> {
    /// Receives host job/lowering spans, cache instants, and the job's
    /// simulated timeline.
    pub sink: &'a dyn TraceSink,
    /// Receives per-component attribution samples.
    pub probe: &'a dyn rm_core::Probe,
}

impl JobInstruments<'_> {
    /// Disabled instruments (the [`Runtime::run_batch`] behavior).
    pub fn disabled() -> JobInstruments<'static> {
        JobInstruments {
            sink: &NullSink,
            probe: &rm_core::NullProbe,
        }
    }
}

impl std::fmt::Debug for JobInstruments<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobInstruments")
            .field("sink_enabled", &self.sink.enabled())
            .field("probe_enabled", &self.probe.enabled())
            .finish()
    }
}

/// How one job interacted with the schedule cache and the re-pricing memo.
///
/// This is *host-side history*, not part of [`JobOutcome`]: whether a job
/// hit the cache depends on what ran before it, so it must never leak into
/// the outcome (which is a pure function of the job). The flight recorder
/// stores it alongside the record instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheDisposition {
    /// Whether the schedule cache was probed at all (host platforms and
    /// cache-disabled runtimes never probe).
    pub probed: bool,
    /// Full-key cache hit.
    pub hit: bool,
    /// Full-key miss whose dimension-blind shape key was already seeded:
    /// pricing was incremental.
    pub near_hit: bool,
    /// Schedule rows priced fresh on the repriced path this run.
    pub repriced_rows: u64,
    /// The job's dimension-blind shape key (0 when the cache was not
    /// probed). Keys the flight recorder's per-(tenant, shape) latency
    /// reservoirs.
    pub shape_key: u64,
}

/// The deterministic result of one job: everything here is a pure function
/// of the job itself. Host-side observations (latency, worker id, queue
/// depth) deliberately live in [`MetricsRegistry`] instead — see the
/// determinism contract in the crate docs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Index of the job in the submitted batch.
    pub index: usize,
    /// Job display name.
    pub name: String,
    /// The priced result, or the error message for failed jobs.
    pub report: Result<ExecReport, String>,
}

/// All outcomes of one batch, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One outcome per submitted job, index-aligned with the input slice.
    pub outcomes: Vec<JobOutcome>,
}

impl BatchResult {
    /// Number of jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.report.is_ok()).count()
    }

    /// Number of jobs that failed.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }
}

/// A multi-tenant batch-simulation service: submit [`Job`] batches, get
/// index-aligned deterministic [`JobOutcome`]s, observe host behavior
/// through the metrics registry.
///
/// The runtime owns three shared, thread-safe structures that persist
/// across batches: a pool of platform instances (jobs with equal
/// platform+config share one), the schedule cache, and the metrics
/// registry.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    cache: ScheduleCache,
    metrics: MetricsRegistry,
    platforms: Mutex<HashMap<u64, Arc<Platform>>>,
    /// Per-shape price tables for incremental re-pricing, keyed by
    /// [`ScheduleCache::shape_key`] (which folds in the lowering config, so
    /// a table is only ever fed by one engine configuration). A full-key
    /// cache miss whose shape key is present here is a *near miss*: only
    /// rows whose `(kind, len)` is new get priced fresh.
    reprice: Mutex<HashMap<u64, PriceTable>>,
    sink: Arc<dyn TraceSink>,
    /// Zero point of the host clock domain: all host-span timestamps are
    /// nanoseconds since runtime construction.
    origin: Instant,
    /// Intake gate: [`Runtime::shutdown`] flips `draining` and waits for
    /// `in_flight` batches to reach zero.
    intake: Mutex<Intake>,
    idle: Condvar,
}

/// Shared intake state guarded by [`Runtime::intake`].
#[derive(Debug, Default)]
struct Intake {
    /// Once true, new batches are refused.
    draining: bool,
    /// Batches currently inside [`Runtime::run_batch`].
    in_flight: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(RuntimeConfig::default())
    }
}

impl Runtime {
    /// A runtime with the given configuration and tracing disabled.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime::with_sink(config, Arc::new(NullSink))
    }

    /// A runtime that records host-side spans (job execution, lowering,
    /// cache probes, steals) and the simulated timeline of every StreamPIM
    /// job into `sink`. With [`NullSink`] this is exactly [`Runtime::new`].
    pub fn with_sink(config: RuntimeConfig, sink: Arc<dyn TraceSink>) -> Self {
        Runtime {
            config,
            cache: ScheduleCache::new(),
            metrics: MetricsRegistry::new(),
            platforms: Mutex::new(HashMap::new()),
            reprice: Mutex::new(HashMap::new()),
            sink,
            origin: Instant::now(),
            intake: Mutex::new(Intake::default()),
            idle: Condvar::new(),
        }
    }

    /// Nanoseconds since runtime construction (the host clock domain).
    fn host_ns(&self, at: Instant) -> f64 {
        at.duration_since(self.origin).as_nanos() as f64
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The schedule cache (for inspection; the runtime feeds it itself).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// A metrics snapshot covering every batch run so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The metrics as pretty-printed JSON (schema: [`MetricsSnapshot`]).
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    /// Stops intake and drains: after this returns, every batch that was
    /// in flight has finished, later [`Runtime::run_batch`] calls are
    /// refused (their outcomes all carry an error and are not recorded in
    /// the metrics), and the returned snapshot is final.
    ///
    /// Idempotent: concurrent or repeated calls all drain and return the
    /// same final snapshot.
    pub fn shutdown(&self) -> MetricsSnapshot {
        let mut intake = self.intake.lock().expect("intake lock");
        intake.draining = true;
        while intake.in_flight > 0 {
            intake = self.idle.wait(intake).expect("intake lock");
        }
        drop(intake);
        self.metrics.snapshot()
    }

    /// Whether [`Runtime::shutdown`] has stopped intake.
    pub fn is_draining(&self) -> bool {
        self.intake.lock().expect("intake lock").draining
    }

    /// Runs a batch of jobs on the work-stealing pool and returns outcomes
    /// in submission order. Individual job failures are reported in their
    /// outcome; they never abort the batch.
    ///
    /// After [`Runtime::shutdown`], batches are refused: every outcome
    /// carries a "runtime is draining" error and nothing is recorded in
    /// the metrics registry (the jobs were never admitted).
    pub fn run_batch(&self, jobs: &[Job]) -> BatchResult {
        self.run_batch_instrumented(jobs, &JobInstruments::disabled())
            .0
    }

    /// [`Runtime::run_batch`] with per-job observers attached: spans,
    /// cache instants and the simulated timeline also land in
    /// `instruments.sink`, attribution in `instruments.probe`, and each
    /// job's [`CacheDisposition`] is returned index-aligned with the
    /// outcomes. The outcomes themselves are byte-identical to
    /// [`Runtime::run_batch`] — instruments observe, never steer.
    pub fn run_batch_instrumented(
        &self,
        jobs: &[Job],
        instruments: &JobInstruments<'_>,
    ) -> (BatchResult, Vec<CacheDisposition>) {
        {
            let mut intake = self.intake.lock().expect("intake lock");
            if intake.draining {
                return (
                    BatchResult {
                        outcomes: jobs
                            .iter()
                            .enumerate()
                            .map(|(index, job)| JobOutcome {
                                index,
                                name: job.name.clone(),
                                report: Err("runtime is draining: batch refused".to_string()),
                            })
                            .collect(),
                    },
                    vec![CacheDisposition::default(); jobs.len()],
                );
            }
            intake.in_flight += 1;
        }
        let result = self.run_batch_inner(jobs, instruments);
        let mut intake = self.intake.lock().expect("intake lock");
        intake.in_flight -= 1;
        if intake.in_flight == 0 {
            self.idle.notify_all();
        }
        result
    }

    /// The pre-drain body of [`Runtime::run_batch`].
    fn run_batch_inner(
        &self,
        jobs: &[Job],
        instruments: &JobInstruments<'_>,
    ) -> (BatchResult, Vec<CacheDisposition>) {
        let n = jobs.len();
        let slots: Vec<Mutex<Option<(JobOutcome, CacheDisposition)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let pending = AtomicUsize::new(n);
        let batch_start = Instant::now();

        let stats = executor::run_indexed(self.config.workers, n, |worker, index, stolen| {
            let queue_depth = pending.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
            let started = Instant::now();
            let job = &jobs[index];
            let (report, cache) = self.run_one(job, worker, instruments);
            let cache_hit = cache.hit;
            let cache_probed = cache.probed;
            let latency_ns = started.elapsed().as_nanos() as u64;
            if self.sink.enabled() || instruments.sink.enabled() {
                let track = Track::Worker(worker as u32);
                let dispatch_ns = self.host_ns(started);
                if stolen && self.sink.enabled() {
                    self.sink.record_instant(
                        Event::host("steal", "steal", track, dispatch_ns)
                            .arg("index", index)
                            .arg("job", job.name.clone()),
                    );
                }
                let mut span = Span::host(
                    job.name.clone(),
                    "job",
                    track,
                    dispatch_ns,
                    latency_ns as f64,
                );
                if !job.request_id.is_empty() {
                    span = span.arg(pim_trace::ATTR_REQUEST_ID, job.request_id.clone());
                }
                let span = span
                    .arg("index", index)
                    .arg("platform", job.platform.name())
                    .arg("cache_hit", cache_hit)
                    .arg("queue_depth", queue_depth)
                    .arg("stolen", stolen)
                    .arg("ok", report.is_ok())
                    .arg(
                        "sim_time_ns",
                        report.as_ref().map(|r| r.total_ns()).unwrap_or(0.0),
                    )
                    .arg(
                        "queued_ns",
                        started.duration_since(batch_start).as_nanos() as u64,
                    );
                if instruments.sink.enabled() {
                    instruments.sink.record_span(span.clone());
                }
                if self.sink.enabled() {
                    self.sink.record_span(span);
                }
            }
            self.metrics.record_job(
                JobMetrics {
                    index,
                    name: job.name.clone(),
                    tenant: job.tenant.clone(),
                    request_id: job.request_id.clone(),
                    platform: job.platform.name().to_string(),
                    latency_ns,
                    queue_depth,
                    worker,
                    cache_hit,
                    cache_miss: cache_probed && !cache_hit,
                    stolen,
                    ok: false,          // set by record_job
                    sim_time_ns: 0.0,   // set by record_job
                    sim_energy_pj: 0.0, // set by record_job
                },
                report.as_ref().ok(),
            );
            *slots[index].lock().expect("slot lock") = Some((
                JobOutcome {
                    index,
                    name: job.name.clone(),
                    report: report.map_err(|e| e.to_string()),
                },
                cache,
            ));
        });

        self.metrics.record_steals(stats.steals);
        self.metrics
            .record_cache(self.cache.hits(), self.cache.misses(), self.cache.len());

        let (outcomes, dispositions) = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every index executed")
            })
            .unzip();
        (BatchResult { outcomes }, dispositions)
    }

    /// Prices one job, reusing pooled platforms and cached schedules.
    /// `worker` attributes host-side lowering spans to the executing
    /// worker's track. The returned [`CacheDisposition`] reports how the
    /// schedule cache and re-pricing memo were engaged (host platforms and
    /// cache-disabled runtimes never probe).
    fn run_one(
        &self,
        job: &Job,
        worker: usize,
        instruments: &JobInstruments<'_>,
    ) -> (Result<ExecReport, pim_device::PimError>, CacheDisposition) {
        let unprobed = CacheDisposition::default();
        // Multi-device cluster jobs take the cluster path: each device
        // lowers its own shard, so the shared schedule cache and re-pricing
        // memo don't apply. A one-device batch-1 spec falls through to the
        // ordinary single-device path below — the cluster contract makes
        // the two byte-identical, and falling through keeps the cache and
        // re-pricing memo engaged for it.
        if let Some(spec) = &job.cluster {
            if spec.devices != 1 || spec.batch != 1 {
                return (self.run_cluster(job, *spec, instruments), unprobed);
            }
        }
        let platform = match self.pooled_platform(job) {
            Ok(p) => p,
            Err(e) => return (Err(e), unprobed),
        };

        let cfg = match platform.lowering_config() {
            Some(cfg) if self.config.cache_enabled => cfg,
            // Host platforms and cache-disabled runtimes: materialize the
            // workload and run it whole.
            _ => {
                let workload = Workload::from_spec(&job.workload);
                return (
                    platform.run_instrumented(&workload, None, instruments.sink, instruments.probe),
                    unprobed,
                );
            }
        };

        let key = ScheduleCache::key(&cfg, &job.workload);
        let shape_key = ScheduleCache::shape_key(&cfg, &job.workload);
        let mut cache = CacheDisposition {
            probed: true,
            shape_key,
            ..CacheDisposition::default()
        };
        let probe_start = Instant::now();
        // Lowering reads only shapes (see `ShapeTask`), so the cached path
        // never materializes the workload's matrices at all.
        let (schedule, hit) = match self.cache.get_or_lower(key, || {
            job.workload
                .shape_task()
                .lower(&StreamPim::new(cfg.clone())?)
        }) {
            Ok(found) => found,
            Err(e) => return (Err(e), cache),
        };
        cache.hit = hit;
        if self.sink.enabled() || instruments.sink.enabled() {
            let probe_event = Event::host(
                if hit { "cache hit" } else { "cache miss" },
                "cache",
                Track::Cache,
                self.host_ns(probe_start),
            )
            .arg("job", job.name.clone())
            .arg("hit", hit);
            if instruments.sink.enabled() {
                instruments.sink.record_instant(probe_event.clone());
            }
            if self.sink.enabled() {
                self.sink.record_instant(probe_event);
            }
            if !hit {
                // A miss means the closure lowered the task; the probe's
                // wall-clock is the lowering cost (lock overhead is
                // negligible next to it).
                let lower_span = Span::host(
                    format!("lower {}", job.name),
                    "lowering",
                    Track::Worker(worker as u32),
                    self.host_ns(probe_start),
                    probe_start.elapsed().as_nanos() as f64,
                )
                .arg("job", job.name.clone());
                if instruments.sink.enabled() {
                    instruments.sink.record_span(lower_span.clone());
                }
                if self.sink.enabled() {
                    self.sink.record_span(lower_span);
                }
            }
        }

        // Incremental re-pricing: take the shape's price table out of the
        // map, run through it, merge it back. A full-key miss with a
        // previously seen shape key is a near miss — only rows with a new
        // `(kind, len)` are priced fresh; the report stays byte-identical
        // to a cold run (see `Engine::run_repriced`).
        let (mut table, shape_seen) = match self
            .reprice
            .lock()
            .expect("reprice lock")
            .remove(&shape_key)
        {
            Some(table) => (table, true),
            None => (PriceTable::new(), false),
        };
        if let Some((report, fresh)) = platform.run_schedule_repriced_instrumented(
            &schedule,
            &mut table,
            instruments.sink,
            instruments.probe,
        ) {
            use std::collections::hash_map::Entry;
            match self.reprice.lock().expect("reprice lock").entry(shape_key) {
                // Another worker re-seeded the shape while we ran: merge
                // (rows are pure per key, so collisions are identical).
                Entry::Occupied(mut resident) => resident.get_mut().absorb(table),
                Entry::Vacant(slot) => {
                    slot.insert(table);
                }
            }
            cache.repriced_rows = fresh;
            if !hit && shape_seen {
                cache.near_hit = true;
                self.metrics.record_near_hit(fresh);
                if self.sink.enabled() {
                    self.sink.record_instant(
                        Event::host(
                            "cache near hit",
                            "cache",
                            Track::Cache,
                            self.host_ns(Instant::now()),
                        )
                        .arg("job", job.name.clone())
                        .arg("repriced_rows", fresh),
                    );
                }
            }
            return (Ok(report), cache);
        }

        // Closed-form PIM baselines: schedule-driven but not repriced.
        let workload = Workload::from_spec(&job.workload);
        (
            platform.run_instrumented(
                &workload,
                Some(&schedule),
                instruments.sink,
                instruments.probe,
            ),
            cache,
        )
    }

    /// Prices one cluster job: builds a [`Cluster`] over the job's
    /// effective device configuration on the default topology and
    /// interconnect, with lane threads clamped by the batch's fair-share
    /// budget (the `devices` count is a simulation parameter; the thread
    /// budget changes wall-clock only, never results).
    fn run_cluster(
        &self,
        job: &Job,
        spec: pim_cluster::ClusterSpec,
        instruments: &JobInstruments<'_>,
    ) -> Result<ExecReport, pim_device::PimError> {
        spec.validate()?;
        let device = job.effective_config().ok_or_else(|| {
            pim_device::PimError::Config(format!(
                "cluster execution needs a StreamPIM-family platform, got {}",
                job.platform.name()
            ))
        })?;
        let config = pim_cluster::ClusterConfig {
            device,
            topology: pim_cluster::ClusterTopology::for_devices(spec.devices),
            interconnect: pim_cluster::InterconnectParams::paper_default(),
        };
        let cluster = pim_cluster::Cluster::new(config)?.with_parallelism(self.intra_budget());
        let report = cluster.run_instrumented(
            &job.workload,
            spec.strategy,
            spec.batch,
            instruments.sink,
            instruments.probe,
        )?;
        Ok(report.combined)
    }

    /// The concrete intra-run parallelism granted to each job's device:
    /// [`RuntimeConfig::intra_parallelism`] resolved through
    /// [`intra_worker_budget`] against this machine, so batch workers ×
    /// intra-run threads never oversubscribe the host.
    pub fn intra_budget(&self) -> Parallelism {
        match self.config.intra_parallelism {
            Parallelism::Serial => Parallelism::Serial,
            requested => {
                let total = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                Parallelism::Threads(intra_worker_budget(requested, self.config.workers, total))
            }
        }
    }

    /// Fetches (or builds) the shared platform instance for `job`.
    fn pooled_platform(&self, job: &Job) -> Result<Arc<Platform>, pim_device::PimError> {
        let key = job.platform_key();
        if let Some(found) = self.platforms.lock().expect("platform pool lock").get(&key) {
            return Ok(Arc::clone(found));
        }
        let built = Arc::new(job.build_platform()?.with_parallelism(self.intra_budget()));
        let mut pool = self.platforms.lock().expect("platform pool lock");
        Ok(Arc::clone(pool.entry(key).or_insert(built)))
    }

    /// Number of distinct platform instances currently pooled.
    pub fn pooled_platforms(&self) -> usize {
        self.platforms.lock().expect("platform pool lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_baselines::PlatformKind;
    use pim_device::OptLevel;
    use pim_workloads::{Kernel, WorkloadSpec};

    fn small_jobs() -> Vec<Job> {
        vec![
            Job::new(
                WorkloadSpec::polybench(Kernel::Atax, 0.02),
                PlatformKind::StPim,
            ),
            Job::new(
                WorkloadSpec::polybench(Kernel::Atax, 0.02),
                PlatformKind::StPim,
            ),
            Job::new(
                WorkloadSpec::polybench(Kernel::Bicg, 0.02),
                PlatformKind::Coruscant,
            ),
            Job::new(
                WorkloadSpec::polybench(Kernel::Mvt, 0.02),
                PlatformKind::CpuRm,
            ),
        ]
    }

    #[test]
    fn batch_outcomes_are_index_aligned() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs = small_jobs();
        let batch = runtime.run_batch(&jobs);
        assert_eq!(batch.outcomes.len(), jobs.len());
        assert_eq!(batch.completed(), jobs.len());
        assert_eq!(batch.failed(), 0);
        for (i, outcome) in batch.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert_eq!(outcome.name, jobs[i].name);
            assert!(outcome.report.as_ref().unwrap().total_ns() > 0.0);
        }
    }

    #[test]
    fn identical_jobs_share_a_cached_schedule() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        runtime.run_batch(&small_jobs());
        // Jobs 0 and 1 share (config, workload); job 2 lowers its own; job
        // 3 is a host platform and never lowers.
        assert_eq!(runtime.cache().misses(), 2);
        assert_eq!(runtime.cache().hits(), 1);
        assert_eq!(runtime.cache().len(), 2);
    }

    #[test]
    fn cache_can_be_disabled() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: false,
            ..RuntimeConfig::default()
        });
        let batch = runtime.run_batch(&small_jobs());
        assert_eq!(batch.completed(), 4);
        assert_eq!(runtime.cache().hits() + runtime.cache().misses(), 0);
    }

    #[test]
    fn platform_pool_deduplicates_instances() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        runtime.run_batch(&small_jobs());
        // StPim (x2 jobs) + Coruscant + CpuRm = 3 distinct platforms.
        assert_eq!(runtime.pooled_platforms(), 3);
    }

    #[test]
    fn failed_jobs_do_not_abort_the_batch() {
        // segment_domains = 0 fails device validation, so the bad job's
        // platform cannot be built; the good job must still complete.
        let bad = Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        )
        .with_config(pim_device::StreamPimConfig::paper_default().with_segment_domains(0));
        let good = Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        );
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let batch = runtime.run_batch(&[bad, good]);
        assert_eq!(batch.outcomes.len(), 2);
        assert!(batch.outcomes[0].report.is_err(), "invalid config fails");
        assert!(batch.outcomes[1].report.is_ok(), "other jobs unaffected");
        assert_eq!((batch.completed(), batch.failed()), (1, 1));
        let snap = runtime.metrics();
        assert_eq!((snap.jobs_completed, snap.jobs_failed), (1, 1));
    }

    #[test]
    fn opt_override_changes_the_report() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.05);
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs = vec![
            Job::new(spec, PlatformKind::StPim),
            Job::new(spec, PlatformKind::StPim).with_opt(OptLevel::Base),
        ];
        let batch = runtime.run_batch(&jobs);
        let unblock = batch.outcomes[0].report.as_ref().unwrap().total_ns();
        let base = batch.outcomes[1].report.as_ref().unwrap().total_ns();
        assert!(
            unblock < base,
            "optimizations help: unblock {unblock} vs base {base}"
        );
        // Different configs must not share cache entries.
        assert_eq!(runtime.cache().misses(), 2);
    }

    #[test]
    fn traced_batch_records_host_spans_and_identical_outcomes() {
        // One worker: concurrent probes of an identical job pair may both
        // miss (benign re-lowering), which would make the exact counts
        // below nondeterministic.
        let sink = Arc::new(pim_trace::Collector::new());
        let traced = Runtime::with_sink(
            RuntimeConfig {
                workers: 1,
                cache_enabled: true,
                ..RuntimeConfig::default()
            },
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        let plain = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs = small_jobs();
        let traced_batch = traced.run_batch(&jobs);
        let plain_batch = plain.run_batch(&jobs);
        // Deterministic outcomes are unaffected by tracing.
        assert_eq!(traced_batch, plain_batch);

        let spans = sink.spans();
        let events = sink.events();
        // One job span per job, on a worker track, in the host domain.
        let job_spans: Vec<_> = spans.iter().filter(|s| s.cat == "job").collect();
        assert_eq!(job_spans.len(), jobs.len());
        assert!(job_spans
            .iter()
            .all(|s| s.track.class() == "worker" && s.domain == pim_trace::ClockDomain::Host));
        // Jobs 0/1 share a schedule: one hit + two misses on the cache
        // track (job 3 is a host platform and never probes).
        let probes: Vec<_> = events.iter().filter(|e| e.cat == "cache").collect();
        assert_eq!(probes.len(), 3);
        assert_eq!(probes.iter().filter(|e| e.name == "cache hit").count(), 1);
        // Each miss produced a lowering span.
        assert_eq!(spans.iter().filter(|s| s.cat == "lowering").count(), 2);
    }

    #[test]
    fn request_ids_flow_to_spans_and_metrics_but_not_outcomes() {
        let sink = Arc::new(pim_trace::Collector::new());
        let runtime = Runtime::with_sink(
            RuntimeConfig {
                workers: 1,
                cache_enabled: true,
                ..RuntimeConfig::default()
            },
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        );
        let job = Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        )
        .with_request_id("req-00000007");
        let tagged = runtime.run_batch(std::slice::from_ref(&job));

        // The id lands on the job span and the metrics row...
        let spans = sink.spans();
        let job_span = spans.iter().find(|s| s.cat == "job").expect("job span");
        assert_eq!(job_span.request_id(), Some("req-00000007"));
        assert_eq!(runtime.metrics().jobs[0].request_id, "req-00000007");

        // ...but never in the outcome: an untagged identical job on a
        // fresh runtime produces the same result.
        let plain = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let untagged = Job {
            request_id: String::new(),
            ..job
        };
        assert_eq!(tagged, plain.run_batch(&[untagged]));
    }

    #[test]
    fn intra_worker_budget_divides_the_machine() {
        use pim_device::Parallelism::{Auto, Serial, Threads};
        // Auto: fair share of the machine, floor 1, no oversubscription.
        assert_eq!(intra_worker_budget(Auto, 4, 16), 4);
        assert_eq!(intra_worker_budget(Auto, 3, 16), 5);
        assert_eq!(intra_worker_budget(Auto, 4, 1), 1);
        assert_eq!(intra_worker_budget(Auto, 0, 8), 8, "0 workers clamp to 1");
        for total in [1usize, 2, 3, 7, 8, 16, 64] {
            for workers in [1usize, 2, 4, 7, 9] {
                let budget = intra_worker_budget(Auto, workers, total);
                assert!(budget >= 1);
                assert!(
                    workers * budget <= total.max(workers),
                    "{workers} workers x {budget} threads oversubscribes {total}"
                );
            }
        }
        // Explicit requests pass through; Serial is always 1.
        assert_eq!(intra_worker_budget(Threads(3), 4, 16), 3);
        assert_eq!(intra_worker_budget(Serial, 4, 16), 1);
    }

    #[test]
    fn auto_batches_grant_each_job_its_fair_share() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 4,
            cache_enabled: true,
            intra_parallelism: Parallelism::Auto,
        });
        let total = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let expected = intra_worker_budget(Parallelism::Auto, 4, total);
        assert_eq!(runtime.intra_budget(), Parallelism::Threads(expected));
        assert!(
            4 * expected <= total.max(4),
            "a 4-job batch stays in budget"
        );

        // The granted level reaches the pooled StreamPIM devices (and only
        // them), and outcomes are identical to an all-serial runtime.
        let jobs = small_jobs();
        let batch = runtime.run_batch(&jobs);
        let pool = runtime.platforms.lock().expect("platform pool lock");
        for platform in pool.values() {
            // Host platforms report None: they have no simulated device.
            if let Some(level) = platform.parallelism() {
                assert_eq!(level, Parallelism::Threads(expected));
            }
        }
        drop(pool);
        let serial = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        assert_eq!(batch, serial.run_batch(&jobs), "results are level-blind");
    }

    #[test]
    fn shutdown_drains_and_refuses_later_batches() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs = small_jobs();
        runtime.run_batch(&jobs);
        assert!(!runtime.is_draining());

        let final_snapshot = runtime.shutdown();
        assert!(runtime.is_draining());
        assert_eq!(final_snapshot.jobs_submitted, 4);
        assert_eq!(final_snapshot.jobs_completed, 4);

        // Refused batches report an explicit error and leave no trace in
        // the metrics: they were never admitted.
        let refused = runtime.run_batch(&jobs);
        assert_eq!(refused.outcomes.len(), 4);
        assert!(refused.outcomes.iter().all(|o| o
            .report
            .as_ref()
            .err()
            .map(|e| e.contains("draining"))
            == Some(true)));
        assert_eq!(runtime.metrics(), final_snapshot, "no post-drain records");

        // Shutdown is idempotent.
        assert_eq!(runtime.shutdown(), final_snapshot);
    }

    #[test]
    fn shutdown_waits_for_in_flight_batches() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs = small_jobs();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| runtime.run_batch(&jobs));
            // Whether or not the batch has started, shutdown must observe
            // its completion before returning the final snapshot.
            let snap = runtime.shutdown();
            let batch = handle.join().expect("batch thread");
            match batch.completed() {
                // Admitted before the drain: all four jobs are in the
                // final snapshot.
                4 => assert_eq!(snap.jobs_submitted, 4),
                // Refused: the intake gate won the race, nothing recorded.
                0 => assert_eq!(snap.jobs_submitted, 0),
                other => panic!("batch must be fully admitted or refused, got {other}"),
            }
        });
    }

    #[test]
    fn job_rows_carry_tenant_steal_and_miss_flags() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs: Vec<Job> = small_jobs()
            .into_iter()
            .enumerate()
            .map(|(i, job)| job.for_tenant(if i < 2 { "alice" } else { "bob" }))
            .collect();
        runtime.run_batch(&jobs);
        let snap = runtime.metrics();
        // Jobs 0/1 (alice): one miss then one hit. Job 2 (bob, Coruscant)
        // misses; job 3 (bob, CpuRm) is a host platform and never probes.
        assert_eq!(snap.tenants.len(), 2);
        let alice = &snap.tenants[0];
        assert_eq!((alice.cache_hits, alice.cache_misses), (1, 1));
        let bob = &snap.tenants[1];
        assert_eq!((bob.cache_hits, bob.cache_misses), (0, 1));
        let host_row = &snap.jobs[3];
        assert!(!host_row.cache_hit && !host_row.cache_miss);
        assert_eq!(host_row.tenant, "bob");
    }

    #[test]
    fn near_miss_repricing_is_byte_identical_to_cold_pricing() {
        // A shape-swept workload: same operation DAG, different dimensions.
        // On the warm runtime the first job is cold (seeds the shape's
        // price table), every later one is a near miss re-priced through
        // the memo.
        let specs: Vec<WorkloadSpec> = (0..6)
            .map(|i| WorkloadSpec::MatMul {
                m: 16 + 4 * i,
                k: 24 + 2 * i,
                n: 8 + i,
            })
            .collect();
        let jobs: Vec<Job> = specs
            .iter()
            .map(|s| Job::new(*s, PlatformKind::StPim))
            .collect();
        let warm = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let warm_batch = warm.run_batch(&jobs);
        assert_eq!(warm_batch.completed(), jobs.len());

        for (i, job) in jobs.iter().enumerate() {
            // Cold pricing: a fresh runtime has no shape table to reuse.
            let cold = Runtime::new(RuntimeConfig {
                workers: 1,
                cache_enabled: true,
                ..RuntimeConfig::default()
            });
            let cold_batch = cold.run_batch(std::slice::from_ref(job));
            assert_eq!(
                cold_batch.outcomes[0].report, warm_batch.outcomes[i].report,
                "near-miss re-priced report must be byte-identical to cold"
            );
            assert_eq!(
                cold.metrics().cache_near_hits,
                0,
                "single job never near-hits"
            );
            // And both match the legacy uncached platform path exactly.
            let direct = pim_baselines::Platform::new(PlatformKind::StPim)
                .unwrap()
                .run(&Workload::from_spec(&specs[i]))
                .unwrap();
            assert_eq!(warm_batch.outcomes[i].report.as_ref().unwrap(), &direct);
        }

        let snap = warm.metrics();
        assert_eq!(snap.cache_near_hits, (jobs.len() - 1) as u64);
        assert!(
            snap.cache_repriced_rows > 0,
            "swept shapes introduce fresh (kind, len) rows"
        );
        // All six jobs were distinct full keys: every probe missed.
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, jobs.len() as u64);
    }

    #[test]
    fn near_hits_reprice_fewer_rows_than_cold_runs() {
        // gemv-shaped matmuls share the dot length across rows, so a near
        // miss that only changes `m`/`n` re-prices almost nothing; one that
        // changes `k` re-prices exactly the new dot rows.
        let base = WorkloadSpec::MatMul { m: 32, k: 64, n: 4 };
        let taller = WorkloadSpec::MatMul { m: 48, k: 64, n: 4 };
        let wider_k = WorkloadSpec::MatMul { m: 32, k: 80, n: 4 };
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let jobs: Vec<Job> = [base, taller, wider_k]
            .iter()
            .map(|s| Job::new(*s, PlatformKind::StPim))
            .collect();
        let batch = runtime.run_batch(&jobs);
        assert_eq!(batch.completed(), 3);
        let snap = runtime.metrics();
        assert_eq!(snap.cache_near_hits, 2);
        // `taller` re-uses every (kind, len) row of `base`; `wider_k`
        // introduces the k=80 dot row (plus its collect length if new).
        // Either way the re-priced rows are a small fraction of the
        // hundreds of requests a cold pricing walks.
        assert!(
            snap.cache_repriced_rows <= 4,
            "near misses re-price only shape-dependent rows, got {}",
            snap.cache_repriced_rows
        );
    }

    #[test]
    fn metrics_reflect_the_batch() {
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        runtime.run_batch(&small_jobs());
        let snap = runtime.metrics();
        assert_eq!(snap.jobs_submitted, 4);
        assert_eq!(snap.jobs_completed, 4);
        assert_eq!(snap.jobs.len(), 4);
        assert_eq!(snap.cache_hits, 1);
        assert!(snap.aggregate.total_ns() > 0.0);
        assert!(snap.jobs.iter().all(|j| j.ok));
        let json = runtime.metrics_json();
        assert!(json.contains("\"jobs_submitted\": 4"));
    }

    #[test]
    fn cluster_jobs_run_in_a_batch() {
        use pim_cluster::ClusterSpec;
        let runtime = Runtime::new(RuntimeConfig {
            workers: 2,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let spec = WorkloadSpec::MatMul {
            m: 128,
            k: 48,
            n: 32,
        };
        let jobs = vec![
            Job::new(spec, PlatformKind::StPim),
            Job::new(spec, PlatformKind::StPim).with_cluster(ClusterSpec::data(4).with_batch(4)),
        ];
        let batch = runtime.run_batch(&jobs);
        assert_eq!(batch.completed(), 2);
        let single = batch.outcomes[0].report.as_ref().unwrap();
        let cluster = batch.outcomes[1].report.as_ref().unwrap();
        // 4 batch items on 4 devices: more energy than one item, less time
        // than pricing 4 items on one device.
        assert!(cluster.total_pj() > single.total_pj());
        assert!(cluster.total_ns() < 4.0 * single.total_ns());
    }

    #[test]
    fn one_device_cluster_spec_matches_plain_job() {
        use pim_cluster::ClusterSpec;
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            cache_enabled: true,
            ..RuntimeConfig::default()
        });
        let spec = WorkloadSpec::MatMul {
            m: 64,
            k: 32,
            n: 16,
        };
        let jobs = vec![
            Job::new(spec, PlatformKind::StPim),
            Job::new(spec, PlatformKind::StPim).with_cluster(ClusterSpec::data(1)),
        ];
        let batch = runtime.run_batch(&jobs);
        let plain = batch.outcomes[0].report.as_ref().unwrap();
        let clustered = batch.outcomes[1].report.as_ref().unwrap();
        assert_eq!(plain, clustered, "devices:1 batch:1 falls through");
        // The fall-through keeps the schedule cache engaged.
        assert_eq!(runtime.cache().hits(), 1);
    }

    #[test]
    fn cluster_on_host_platform_is_a_config_error() {
        use pim_cluster::ClusterSpec;
        let runtime = Runtime::new(RuntimeConfig::default());
        let job = Job::new(
            WorkloadSpec::MatMul {
                m: 64,
                k: 32,
                n: 16,
            },
            PlatformKind::CpuRm,
        )
        .with_cluster(ClusterSpec::data(2));
        let batch = runtime.run_batch(&[job]);
        let err = batch.outcomes[0].report.as_ref().unwrap_err();
        assert!(err.to_string().contains("StreamPIM-family"), "got: {err}");
    }
}
