//! Job requests: what to run, where, and under which configuration.

use pim_baselines::{Platform, PlatformKind};
use pim_cluster::ClusterSpec;
use pim_device::{OptLevel, PimError, StreamPimConfig};
use pim_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// One batch-runtime request: a workload priced on a platform.
///
/// Jobs are plain serializable values; nothing heavyweight (matrices,
/// schedules, devices) is built until the runtime dispatches them. The
/// optional `config`/`opt` overrides apply to the StreamPIM family
/// ([`PlatformKind::StPim`]/[`PlatformKind::StPimE`]); other platforms have
/// fixed paper configurations and ignore them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Display name (defaults to `<workload>/<platform>`).
    pub name: String,
    /// Owning tenant, for per-tenant metrics and metering. The empty
    /// string (the default) is the anonymous tenant; the runtime treats it
    /// like any other.
    pub tenant: String,
    /// Correlating request id, stamped by a serving edge (empty for
    /// direct batch submissions). Host-side telemetry only: it flows
    /// into metrics rows and trace-span attributes but never into the
    /// job's outcome, its schedule-cache key, or its platform identity.
    pub request_id: String,
    /// What to price.
    pub workload: WorkloadSpec,
    /// Where to price it.
    pub platform: PlatformKind,
    /// Full StreamPIM configuration override (StreamPIM family only).
    pub config: Option<StreamPimConfig>,
    /// Optimization-level override, applied on top of `config` or the
    /// platform default (StreamPIM family only).
    pub opt: Option<OptLevel>,
    /// Multi-device scale-out request (StreamPIM family only): price the
    /// workload on a cluster of `devices` devices instead of one. The
    /// device count is a *hint* — the runtime clamps the lane threads to
    /// the batch's fair-share budget, which changes wall-clock only, never
    /// results. `None` (the default) runs single-device.
    pub cluster: Option<ClusterSpec>,
}

impl Job {
    /// A job with the platform's default configuration.
    pub fn new(workload: WorkloadSpec, platform: PlatformKind) -> Self {
        Job {
            name: format!("{}/{}", workload.name(), platform.name()),
            tenant: String::new(),
            request_id: String::new(),
            workload,
            platform,
            config: None,
            opt: None,
            cluster: None,
        }
    }

    /// Replaces the display name (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Assigns the job to a tenant (builder style).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Stamps the correlating request id (builder style). Serving edges
    /// overwrite this on admission, exactly as they overwrite `tenant`.
    pub fn with_request_id(mut self, request_id: impl Into<String>) -> Self {
        self.request_id = request_id.into();
        self
    }

    /// Sets a full StreamPIM configuration override (builder style).
    pub fn with_config(mut self, config: StreamPimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets an optimization-level override (builder style).
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = Some(opt);
        self
    }

    /// Requests multi-device cluster execution (builder style).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The StreamPIM configuration this job runs under, with overrides
    /// applied — `None` for platforms that are not in the StreamPIM family.
    pub fn effective_config(&self) -> Option<StreamPimConfig> {
        let base = match (&self.config, self.platform) {
            (Some(cfg), _) => cfg.clone(),
            (None, PlatformKind::StPim) => StreamPimConfig::paper_default(),
            (None, PlatformKind::StPimE) => StreamPimConfig::electrical_bus(),
            (None, _) => return None,
        };
        Some(match self.opt {
            Some(opt) => base.with_opt(opt),
            None => base,
        })
    }

    /// Builds the platform instance this job targets.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::Config`] for invalid configuration overrides.
    pub fn build_platform(&self) -> Result<Platform, PimError> {
        match self.platform {
            PlatformKind::StPim | PlatformKind::StPimE => Platform::stream_pim(
                self.effective_config()
                    .expect("StreamPIM-family jobs always have a config"),
            ),
            other => Platform::new(other),
        }
    }

    /// Stable identity of the platform instance this job needs: jobs with
    /// equal keys can share one [`Platform`] from the runtime's pool.
    pub(crate) fn platform_key(&self) -> u64 {
        fnv(&format!(
            "{:?}|{:?}",
            self.platform,
            self.effective_config()
        ))
    }
}

/// FNV-1a over a string — the runtime's content-address primitive.
pub(crate) fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_workloads::Kernel;

    #[test]
    fn default_config_follows_platform() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let stpim = Job::new(spec, PlatformKind::StPim);
        assert_eq!(
            stpim.effective_config(),
            Some(StreamPimConfig::paper_default())
        );
        let stpim_e = Job::new(spec, PlatformKind::StPimE);
        assert_eq!(
            stpim_e.effective_config(),
            Some(StreamPimConfig::electrical_bus())
        );
        let cpu = Job::new(spec, PlatformKind::CpuRm);
        assert_eq!(cpu.effective_config(), None);
    }

    #[test]
    fn opt_override_applies_on_top_of_default() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let job = Job::new(spec, PlatformKind::StPim).with_opt(OptLevel::Base);
        assert_eq!(job.effective_config().unwrap().opt, OptLevel::Base);
    }

    #[test]
    fn platform_keys_separate_configs() {
        let spec = WorkloadSpec::polybench(Kernel::Gemm, 0.02);
        let a = Job::new(spec, PlatformKind::StPim);
        let b = Job::new(spec, PlatformKind::StPim).with_opt(OptLevel::Distribute);
        let c = Job::new(spec, PlatformKind::StPim);
        assert_ne!(a.platform_key(), b.platform_key());
        assert_eq!(a.platform_key(), c.platform_key());
        // Telemetry-only fields never split the platform pool.
        let d = Job::new(spec, PlatformKind::StPim)
            .with_request_id("req-00000001")
            .for_tenant("gold");
        assert_eq!(a.platform_key(), d.platform_key());
    }

    #[test]
    fn jobs_round_trip_through_json() {
        let job = Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.05),
            PlatformKind::Coruscant,
        )
        .named("atax-on-coruscant");
        let json = serde_json::to_string(&job).unwrap();
        let back: Job = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }

    #[test]
    fn default_name_is_descriptive() {
        let job = Job::new(WorkloadSpec::polybench(Kernel::Mvt, 1.0), PlatformKind::Gpu);
        assert_eq!(job.name, "mvt/GPU");
    }
}
