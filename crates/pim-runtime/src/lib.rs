//! Multi-tenant batch-simulation runtime for the StreamPIM model.
//!
//! Sweeps and design-space explorations price the *same* workloads on many
//! platform configurations. Run serially, every job pays the full cost of
//! lowering its task to a VPC schedule even when an identical `(config,
//! workload)` pair was just lowered by the previous job. This crate turns
//! that pattern into a service:
//!
//! * [`Job`] — a serializable request: a [`pim_workloads::WorkloadSpec`], a
//!   platform selector, and optional StreamPIM config / opt-level overrides.
//! * [`Runtime`] — accepts job batches and runs them on a work-stealing
//!   thread pool over a pool of shared platform instances.
//! * [`ScheduleCache`] — content-addressed: lowering is deterministic per
//!   `(lowering config, workload spec)`, so the schedule is computed once
//!   and shared by every job that names the same pair.
//! * [`MetricsRegistry`] — per-job latency, queue depth and cache-hit
//!   flags, plus aggregate operation/energy counters, exportable as JSON.
//!
//! Determinism contract: a job's [`pim_device::ExecReport`] depends only on
//! the job itself — not on batch order, worker count, or cache state. The
//! integration tests assert byte-identical JSON reports across shuffled
//! batches, worker counts, and cache on/off.
//!
//! ```
//! use pim_baselines::PlatformKind;
//! use pim_runtime::{Job, Runtime, RuntimeConfig};
//! use pim_workloads::{Kernel, WorkloadSpec};
//!
//! let runtime = Runtime::new(RuntimeConfig::default());
//! let jobs = vec![
//!     Job::new(WorkloadSpec::polybench(Kernel::Gemm, 0.02), PlatformKind::StPim),
//!     Job::new(WorkloadSpec::polybench(Kernel::Gemm, 0.02), PlatformKind::Coruscant),
//! ];
//! let batch = runtime.run_batch(&jobs);
//! assert_eq!(batch.outcomes.len(), 2);
//! assert!(batch.outcomes[0].report.as_ref().unwrap().total_ns() > 0.0);
//! ```

pub mod cache;
pub mod executor;
pub mod job;
pub mod metrics;
pub mod runtime;

pub use cache::ScheduleCache;
pub use job::Job;
// Serving edges and tools accept cluster specs inside `Job` JSON; re-export
// the spec types so they don't need a direct pim-cluster dependency.
pub use metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot, TenantMetrics};
pub use pim_cluster::{ClusterSpec, PartitionStrategy};
pub use runtime::{
    intra_worker_budget, BatchResult, CacheDisposition, JobInstruments, JobOutcome, Runtime,
    RuntimeConfig,
};
