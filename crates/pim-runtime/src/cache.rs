//! Content-addressed schedule cache.
//!
//! Task lowering is deterministic: the schedule is a pure function of the
//! lowering configuration and the workload spec. The cache therefore keys
//! entries by a structural FNV-1a digest of that pair (every field fed
//! through [`std::hash::Hash`], floats by their IEEE-754 bits) — no
//! invalidation protocol is needed, entries are immutable, and a hit is
//! guaranteed to be byte-identical to what a fresh lowering would produce
//! (the determinism tests enforce this end to end).

use pim_device::schedule::Schedule;
use pim_device::{PimError, StreamPimConfig};
use pim_workloads::WorkloadSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Thread-safe cache of lowered schedules, shared across jobs and workers.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: Mutex<HashMap<u64, Arc<Schedule>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        ScheduleCache::default()
    }

    /// The cache key for a `(lowering config, workload)` pair: a structural
    /// FNV-1a digest (see [`rm_core::FnvHasher`]) of both values, with no
    /// intermediate `format!` allocation. Floats hash by their IEEE-754
    /// bits, so distinct configs digest distinctly and equal configs digest
    /// equally. The digest is seeded with the `"cache-key-v2"` version tag,
    /// which partitions it from the retired v1 (debug-string) key space.
    pub fn key(config: &StreamPimConfig, workload: &WorkloadSpec) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rm_core::FnvHasher::with_tag("cache-key-v2");
        config.hash(&mut h);
        workload.hash(&mut h);
        h.finish()
    }

    /// The *shape* key for a `(lowering config, workload)` pair: like
    /// [`ScheduleCache::key`] but dimension-blind — the workload
    /// contributes only its [`WorkloadSpec::shape_class`], so two jobs with
    /// the same operation DAG at different sizes collide. A full-key miss
    /// whose shape key was seen before is a *near miss*: the runtime
    /// re-prices only the shape-dependent rows through the shape's
    /// [`pim_device::PriceTable`] instead of pricing every row cold.
    pub fn shape_key(config: &StreamPimConfig, workload: &WorkloadSpec) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rm_core::FnvHasher::with_tag("shape-key-v1");
        config.hash(&mut h);
        workload.shape_class().hash(&mut h);
        h.finish()
    }

    /// Returns the schedule for `key`, lowering it with `lower` on a miss.
    /// The second component reports whether this call was a hit.
    ///
    /// Lowering runs outside the lock so a slow lowering never serializes
    /// unrelated lookups; if two workers race on the same key, both lower
    /// (deterministically, to identical schedules) and the first insert
    /// wins.
    ///
    /// # Errors
    ///
    /// Propagates the error from `lower` on a miss.
    pub fn get_or_lower<F>(&self, key: u64, lower: F) -> Result<(Arc<Schedule>, bool), PimError>
    where
        F: FnOnce() -> Result<Schedule, PimError>,
    {
        if let Some(found) = self.entries.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(found), true));
        }
        let lowered = Arc::new(lower()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("cache lock");
        let entry = entries.entry(key).or_insert_with(|| Arc::clone(&lowered));
        debug_assert_eq!(
            entry.fingerprint(),
            lowered.fingerprint(),
            "deterministic lowering: racing lowerings must agree"
        );
        Ok((Arc::clone(entry), false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. lowerings performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct schedules resident.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no schedules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_device::StreamPim;
    use pim_workloads::Kernel;

    fn lower(spec: &WorkloadSpec, cfg: &StreamPimConfig) -> Result<Schedule, PimError> {
        let device = StreamPim::new(cfg.clone())?;
        spec.build_task().lower(&device)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let cfg = StreamPimConfig::paper_default();
        let spec = WorkloadSpec::polybench(Kernel::Atax, 0.02);
        let key = ScheduleCache::key(&cfg, &spec);

        let (first, hit1) = cache.get_or_lower(key, || lower(&spec, &cfg)).unwrap();
        assert!(!hit1, "cold lookup misses");
        let (second, hit2) = cache
            .get_or_lower(key, || panic!("must not re-lower"))
            .unwrap();
        assert!(hit2, "warm lookup hits");
        assert_eq!(first.fingerprint(), second.fingerprint());
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn keys_separate_configs_and_workloads() {
        let cfg = StreamPimConfig::paper_default();
        let cfg_e = StreamPimConfig::electrical_bus();
        let a = WorkloadSpec::polybench(Kernel::Atax, 0.02);
        let b = WorkloadSpec::polybench(Kernel::Bicg, 0.02);
        assert_ne!(
            ScheduleCache::key(&cfg, &a),
            ScheduleCache::key(&cfg, &b),
            "different workloads"
        );
        assert_ne!(
            ScheduleCache::key(&cfg, &a),
            ScheduleCache::key(&cfg_e, &a),
            "different configs"
        );
        assert_eq!(
            ScheduleCache::key(&cfg, &a),
            ScheduleCache::key(&StreamPimConfig::paper_default(), &a),
            "equal pairs share a key"
        );
    }

    #[test]
    fn keys_are_stable_and_sensitive_to_float_fields() {
        let cfg = StreamPimConfig::paper_default();
        let spec = WorkloadSpec::polybench(Kernel::Atax, 0.02);
        let k = ScheduleCache::key(&cfg, &spec);
        // Stable across calls and across independently built equal values.
        assert_eq!(k, ScheduleCache::key(&cfg, &spec));
        assert_eq!(
            k,
            ScheduleCache::key(
                &StreamPimConfig::paper_default(),
                &WorkloadSpec::polybench(Kernel::Atax, 0.02)
            )
        );
        // A float-only config perturbation must move the key (the structural
        // hash feeds IEEE-754 bits, not a rendered string).
        let mut nudged = StreamPimConfig::paper_default();
        nudged.device.timing.shift_ns += 1e-9;
        assert_ne!(k, ScheduleCache::key(&nudged, &spec), "float field");
        // A workload scale perturbation likewise.
        let denser = WorkloadSpec::polybench(Kernel::Atax, 0.021);
        assert_ne!(k, ScheduleCache::key(&cfg, &denser), "workload scale");
    }

    #[test]
    fn shape_keys_collide_across_sizes_but_not_shapes() {
        let cfg = StreamPimConfig::paper_default();
        // Same DAG at different sizes: full keys differ, shape keys agree.
        let small = WorkloadSpec::MatMul { m: 8, k: 8, n: 8 };
        let large = WorkloadSpec::MatMul {
            m: 64,
            k: 32,
            n: 16,
        };
        assert_ne!(
            ScheduleCache::key(&cfg, &small),
            ScheduleCache::key(&cfg, &large)
        );
        assert_eq!(
            ScheduleCache::shape_key(&cfg, &small),
            ScheduleCache::shape_key(&cfg, &large)
        );
        // Polybench kernels: scale-blind, kernel-sensitive.
        let atax = WorkloadSpec::polybench(Kernel::Atax, 0.02);
        let atax_big = WorkloadSpec::polybench(Kernel::Atax, 0.05);
        let bicg = WorkloadSpec::polybench(Kernel::Bicg, 0.02);
        assert_eq!(
            ScheduleCache::shape_key(&cfg, &atax),
            ScheduleCache::shape_key(&cfg, &atax_big)
        );
        assert_ne!(
            ScheduleCache::shape_key(&cfg, &atax),
            ScheduleCache::shape_key(&cfg, &bicg)
        );
        // Different configs must not share price tables.
        assert_ne!(
            ScheduleCache::shape_key(&cfg, &atax),
            ScheduleCache::shape_key(&StreamPimConfig::electrical_bus(), &atax)
        );
    }

    #[test]
    fn errors_propagate_and_do_not_poison() {
        let cache = ScheduleCache::new();
        let err = cache.get_or_lower(7, || Err(PimError::EmptyTask));
        assert!(err.is_err());
        assert!(cache.is_empty());
        let cfg = StreamPimConfig::paper_default();
        let spec = WorkloadSpec::polybench(Kernel::Mvt, 0.02);
        cache.get_or_lower(7, || lower(&spec, &cfg)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = ScheduleCache::new();
        let cfg = StreamPimConfig::paper_default();
        let spec = WorkloadSpec::polybench(Kernel::Atax, 0.02);
        let key = ScheduleCache::key(&cfg, &spec);
        cache.get_or_lower(key, || lower(&spec, &cfg)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }
}
