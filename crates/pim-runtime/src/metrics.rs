//! Job-level and aggregate runtime metrics, exportable as JSON.
//!
//! Two kinds of numbers live here and must not be confused:
//!
//! * **Simulated** quantities (`sim_time_ns`, `sim_energy_pj`, the
//!   aggregate [`ExecReport`]) come from the pricing model and are
//!   deterministic per job.
//! * **Host** quantities (`latency_ns`, `queue_depth`, steal counts) are
//!   wall-clock observations of the runtime itself and vary run to run.
//!   They are kept out of [`crate::JobOutcome`] precisely so job results
//!   stay byte-identical across schedules and worker counts.

use pim_device::ExecReport;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Metrics for one completed (or failed) job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Index of the job in its batch.
    pub index: usize,
    /// Job display name.
    pub name: String,
    /// Owning tenant (empty for anonymous jobs).
    pub tenant: String,
    /// Correlating request id for jobs submitted through a serving edge
    /// (empty for direct batch runs). Host-side only: it never affects
    /// the job's outcome, schedule, or platform identity.
    pub request_id: String,
    /// Platform display name.
    pub platform: String,
    /// Host wall-clock latency from dispatch to completion, nanoseconds.
    pub latency_ns: u64,
    /// Jobs still queued (batch-wide) when this job was dispatched.
    pub queue_depth: usize,
    /// Worker that executed the job.
    pub worker: usize,
    /// Whether the schedule came from the cache.
    pub cache_hit: bool,
    /// Whether the job probed the cache and missed (i.e. lowered its own
    /// schedule). Host-platform jobs never probe: both flags stay false.
    pub cache_miss: bool,
    /// Whether the job was executed from a stolen deque.
    pub stolen: bool,
    /// Whether the job completed without error.
    pub ok: bool,
    /// Simulated execution time, nanoseconds (0 for failed jobs).
    pub sim_time_ns: f64,
    /// Simulated energy, picojoules (0 for failed jobs).
    pub sim_energy_pj: f64,
}

/// Point-in-time export of the registry (the JSON schema documented in the
/// README's "Runtime layer" section).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Jobs submitted across all batches.
    pub jobs_submitted: u64,
    /// Jobs that completed successfully.
    pub jobs_completed: u64,
    /// Jobs that returned an error.
    pub jobs_failed: u64,
    /// Schedule-cache hits.
    pub cache_hits: u64,
    /// Schedule-cache misses (lowerings performed).
    pub cache_misses: u64,
    /// Distinct schedules resident in the cache.
    pub cache_entries: u64,
    /// Cache *near* hits: full-key misses whose dimension-blind shape key
    /// was seen before, priced incrementally through the shape's price
    /// table instead of cold (see `ScheduleCache::shape_key`).
    pub cache_near_hits: u64,
    /// Request-table rows priced fresh across all near-hit re-pricings
    /// (rows replayed from the memo are the savings).
    pub cache_repriced_rows: u64,
    /// Largest queue depth observed at any dispatch.
    pub max_queue_depth: usize,
    /// Items executed from a stolen deque across all batches.
    pub steals: u64,
    /// Sum of all per-job host latencies, nanoseconds.
    pub total_latency_ns: u64,
    /// Median host latency, nanoseconds (histogram bucket-midpoint
    /// estimate; 0 when no jobs ran).
    pub latency_p50_ns: u64,
    /// 95th-percentile host latency, nanoseconds.
    pub latency_p95_ns: u64,
    /// 99th-percentile host latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Power-of-two latency histogram: bucket `b` counts jobs whose
    /// latency needs exactly `b` significant bits (i.e. lands in
    /// `[2^(b-1), 2^b)` ns; bucket 0 counts zero-latency jobs). Fixed
    /// bucket bounds keep recording O(1) and merge-friendly; the
    /// percentiles above are computed from this histogram at snapshot
    /// time and are exact to within one power-of-two bucket.
    pub latency_histogram: Vec<u64>,
    /// Simulated totals summed over all successful jobs.
    pub aggregate: ExecReport,
    /// Per-tenant rollups, sorted by tenant name. Derived from the per-job
    /// rows at snapshot time so consumers (the `/metrics` endpoint, the
    /// metering reconciliation) never re-derive them.
    pub tenants: Vec<TenantMetrics>,
    /// Per-job rows, ordered by batch submission index.
    pub jobs: Vec<JobMetrics>,
}

/// Rollup of every job one tenant submitted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// Tenant name (empty for anonymous jobs).
    pub tenant: String,
    /// Jobs submitted by this tenant.
    pub jobs_submitted: u64,
    /// Jobs that completed successfully.
    pub jobs_completed: u64,
    /// Jobs that returned an error.
    pub jobs_failed: u64,
    /// Schedule-cache hits across this tenant's jobs.
    pub cache_hits: u64,
    /// Schedule-cache misses (lowerings performed) for this tenant.
    pub cache_misses: u64,
    /// Jobs executed from a stolen deque.
    pub steals: u64,
    /// Sum of host latencies, nanoseconds.
    pub total_latency_ns: u64,
    /// Simulated time summed over successful jobs, nanoseconds.
    pub sim_time_ns: f64,
    /// Simulated energy summed over successful jobs, picojoules.
    pub sim_energy_pj: f64,
}

/// Folds per-job rows (already sorted by index) into per-tenant rollups,
/// sorted by tenant name. Deterministic: both orders are total.
fn tenant_rollup(jobs: &[JobMetrics]) -> Vec<TenantMetrics> {
    let mut by_tenant: std::collections::BTreeMap<&str, TenantMetrics> =
        std::collections::BTreeMap::new();
    for job in jobs {
        let entry = by_tenant
            .entry(job.tenant.as_str())
            .or_insert_with(|| TenantMetrics {
                tenant: job.tenant.clone(),
                ..TenantMetrics::default()
            });
        entry.jobs_submitted += 1;
        if job.ok {
            entry.jobs_completed += 1;
        } else {
            entry.jobs_failed += 1;
        }
        entry.cache_hits += u64::from(job.cache_hit);
        entry.cache_misses += u64::from(job.cache_miss);
        entry.steals += u64::from(job.stolen);
        entry.total_latency_ns += job.latency_ns;
        entry.sim_time_ns += job.sim_time_ns;
        entry.sim_energy_pj += job.sim_energy_pj;
    }
    by_tenant.into_values().collect()
}

/// The histogram scheme lives in `pim_obs::hist` (it started here and
/// was factored out so the live metrics registry, the serving edge, and
/// this snapshot all share exact bucket semantics — including the
/// bucket-midpoint correction that replaced the upper-bound convention,
/// which over-reported percentiles by up to 2x). These thin aliases keep
/// this module's vocabulary.
use pim_obs::hist::{bucket_of as latency_bucket, percentile, BUCKETS as LATENCY_BUCKETS};

/// Thread-safe collector the runtime records into.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one finished job. `report` is `None` for failed jobs.
    pub fn record_job(&self, mut metrics: JobMetrics, report: Option<&ExecReport>) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.jobs_submitted += 1;
        match report {
            Some(r) => {
                inner.jobs_completed += 1;
                metrics.ok = true;
                metrics.sim_time_ns = r.total_ns();
                metrics.sim_energy_pj = r.total_pj();
                inner.aggregate.absorb(r);
            }
            None => {
                inner.jobs_failed += 1;
                metrics.ok = false;
            }
        }
        inner.max_queue_depth = inner.max_queue_depth.max(metrics.queue_depth);
        inner.total_latency_ns += metrics.latency_ns;
        if inner.latency_histogram.len() < LATENCY_BUCKETS {
            inner.latency_histogram.resize(LATENCY_BUCKETS, 0);
        }
        inner.latency_histogram[latency_bucket(metrics.latency_ns)] += 1;
        inner.jobs.push(metrics);
    }

    /// Folds one batch's executor steal count into the totals.
    pub fn record_steals(&self, steals: u64) {
        self.inner.lock().expect("metrics lock").steals += steals;
    }

    /// Records one cache near hit and the rows it had to price fresh.
    pub fn record_near_hit(&self, repriced_rows: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.cache_near_hits += 1;
        inner.cache_repriced_rows += repriced_rows;
    }

    /// Updates the cache statistics (overwrites; the cache owns the truth).
    pub fn record_cache(&self, hits: u64, misses: u64, entries: usize) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.cache_hits = hits;
        inner.cache_misses = misses;
        inner.cache_entries = entries as u64;
    }

    /// A copy of the current state, with per-job rows sorted by batch
    /// index (completion order is nondeterministic; the export is not).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.lock().expect("metrics lock").clone();
        snap.jobs.sort_by_key(|j| j.index);
        snap.tenants = tenant_rollup(&snap.jobs);
        snap.latency_p50_ns = percentile(&snap.latency_histogram, 0.50);
        snap.latency_p95_ns = percentile(&snap.latency_histogram, 0.95);
        snap.latency_p99_ns = percentile(&snap.latency_histogram, 0.99);
        snap
    }

    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("metrics serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(index: usize, latency_ns: u64, queue_depth: usize) -> JobMetrics {
        JobMetrics {
            index,
            name: format!("job-{index}"),
            tenant: String::new(),
            request_id: String::new(),
            platform: "StPIM".into(),
            latency_ns,
            queue_depth,
            worker: 0,
            cache_hit: false,
            cache_miss: false,
            stolen: false,
            ok: false,
            sim_time_ns: 0.0,
            sim_energy_pj: 0.0,
        }
    }

    #[test]
    fn tenant_rollups_partition_the_jobs() {
        let registry = MetricsRegistry::new();
        let mut report = ExecReport::new();
        report.time.process_ns = 10.0;
        report.energy.compute_pj = 4.0;
        let mut a0 = metrics(0, 100, 0);
        a0.tenant = "alice".into();
        a0.cache_hit = true;
        let mut a1 = metrics(1, 50, 0);
        a1.tenant = "alice".into();
        a1.cache_miss = true;
        a1.stolen = true;
        let mut b0 = metrics(2, 30, 0);
        b0.tenant = "bob".into();
        registry.record_job(a0, Some(&report));
        registry.record_job(a1, Some(&report));
        registry.record_job(b0, None);

        let snap = registry.snapshot();
        assert_eq!(snap.tenants.len(), 2);
        let alice = &snap.tenants[0];
        assert_eq!(alice.tenant, "alice");
        assert_eq!(
            (
                alice.jobs_submitted,
                alice.jobs_completed,
                alice.jobs_failed
            ),
            (2, 2, 0)
        );
        assert_eq!(
            (alice.cache_hits, alice.cache_misses, alice.steals),
            (1, 1, 1)
        );
        assert_eq!(alice.total_latency_ns, 150);
        assert_eq!(alice.sim_time_ns, 20.0);
        assert_eq!(alice.sim_energy_pj, 8.0);
        let bob = &snap.tenants[1];
        assert_eq!(bob.tenant, "bob");
        assert_eq!(
            (bob.jobs_submitted, bob.jobs_completed, bob.jobs_failed),
            (1, 0, 1)
        );
        // Rollups partition: tenant sums reproduce the global counts.
        assert_eq!(
            snap.tenants.iter().map(|t| t.jobs_submitted).sum::<u64>(),
            snap.jobs_submitted
        );
    }

    #[test]
    fn records_aggregate_and_sorts_jobs() {
        let registry = MetricsRegistry::new();
        let mut report = ExecReport::new();
        report.time.process_ns = 50.0;
        report.energy.compute_pj = 20.0;
        registry.record_job(metrics(1, 10, 1), Some(&report));
        registry.record_job(metrics(0, 30, 2), Some(&report));
        registry.record_job(metrics(2, 5, 0), None);
        registry.record_steals(3);
        registry.record_cache(4, 2, 2);

        let snap = registry.snapshot();
        assert_eq!(snap.jobs_submitted, 3);
        assert_eq!(snap.jobs_completed, 2);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.aggregate.total_ns(), 100.0);
        assert_eq!(snap.max_queue_depth, 2);
        assert_eq!(snap.total_latency_ns, 45);
        assert_eq!(snap.steals, 3);
        assert_eq!((snap.cache_hits, snap.cache_misses), (4, 2));
        let order: Vec<usize> = snap.jobs.iter().map(|j| j.index).collect();
        assert_eq!(order, vec![0, 1, 2], "export is batch-ordered");
        assert!(snap.jobs[0].ok && !snap.jobs[2].ok);
        assert_eq!(snap.jobs[0].sim_time_ns, 50.0);
    }

    #[test]
    fn latency_percentiles_from_histogram() {
        let registry = MetricsRegistry::new();
        // 98 fast jobs (~1 us) and 2 slow outliers (~1 ms): p50/p95 must
        // sit in the fast bucket, p99 must reach the outliers.
        for i in 0..98 {
            registry.record_job(metrics(i, 1_000, 0), Some(&ExecReport::new()));
        }
        for i in 98..100 {
            registry.record_job(metrics(i, 1_000_000, 0), Some(&ExecReport::new()));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.latency_histogram.iter().sum::<u64>(), 100);
        // 1_000 has 10 significant bits: bucket 10 spans [512, 1023],
        // midpoint 767.
        assert_eq!(snap.latency_p50_ns, 767);
        assert_eq!(snap.latency_p95_ns, 767);
        // 1_000_000 has 20 significant bits: bucket 20 spans
        // [2^19, 2^20 - 1], midpoint 786_431.
        assert_eq!(snap.latency_p99_ns, 786_431);
        // Percentiles are monotone and land within the right bucket.
        assert!(snap.latency_p50_ns <= snap.latency_p95_ns);
        assert!(snap.latency_p95_ns <= snap.latency_p99_ns);
        assert!((512..1024).contains(&snap.latency_p50_ns));
        assert!((1 << 19..1 << 20).contains(&snap.latency_p99_ns));
    }

    #[test]
    fn latency_percentiles_edge_cases() {
        // Empty registry: all zeros.
        let empty = MetricsRegistry::new().snapshot();
        assert_eq!(
            (
                empty.latency_p50_ns,
                empty.latency_p95_ns,
                empty.latency_p99_ns
            ),
            (0, 0, 0)
        );
        // A single zero-latency job lands in bucket 0.
        let registry = MetricsRegistry::new();
        registry.record_job(metrics(0, 0, 0), Some(&ExecReport::new()));
        let snap = registry.snapshot();
        assert_eq!(snap.latency_p99_ns, 0);
        assert_eq!(snap.latency_histogram[0], 1);
        // A single sample: every percentile is that bucket's midpoint,
        // never the inclusive upper bound (the old biased convention).
        let registry = MetricsRegistry::new();
        registry.record_job(metrics(0, 600, 0), Some(&ExecReport::new()));
        let snap = registry.snapshot();
        assert_eq!(snap.latency_p50_ns, 767, "midpoint of [512, 1023]");
        assert_eq!(snap.latency_p50_ns, snap.latency_p99_ns);
        // Extreme latency saturates into the last bucket without
        // overflowing; its midpoint sits in the top half of u64 range.
        let registry = MetricsRegistry::new();
        registry.record_job(metrics(0, u64::MAX, 0), Some(&ExecReport::new()));
        let p50 = registry.snapshot().latency_p50_ns;
        assert!((1u64 << 63..u64::MAX).contains(&p50));
    }

    #[test]
    fn json_round_trips() {
        let registry = MetricsRegistry::new();
        registry.record_job(metrics(0, 7, 1), Some(&ExecReport::new()));
        let json = registry.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, registry.snapshot());
        assert!(json.contains("\"jobs_completed\": 1"));
    }
}
