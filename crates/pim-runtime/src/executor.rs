//! Work-stealing batch executor on scoped OS threads.
//!
//! A batch of `n` items is split round-robin across per-worker deques.
//! Each worker drains the *front* of its own deque (LIFO locality does not
//! matter here — items are independent simulations) and, when empty, steals
//! from the *back* of a victim's deque. Workers exit after a full sweep of
//! every deque finds no work; since batch items are never re-queued, an
//! empty sweep is a stable termination condition.
//!
//! The pool is deliberately `std`-only (no `crossbeam` deques): simulation
//! jobs run for microseconds to seconds, so a mutex per deque is nowhere
//! near the bottleneck, and the workspace builds without registry access.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing one batch execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Items each worker executed (indexed by worker id).
    pub per_worker: Vec<u64>,
    /// Items executed from a victim's deque rather than the worker's own.
    pub steals: u64,
}

/// Runs `f(worker_id, item_index, stolen)` for every index in `0..n_items`
/// on `workers` threads with work stealing; `stolen` is true when the item
/// came from a victim's deque rather than the worker's own. Returns
/// per-worker counters.
///
/// `f` must tolerate concurrent invocation from different threads (it is
/// `Sync`); each index is executed exactly once.
pub fn run_indexed<F>(workers: usize, n_items: usize, f: F) -> ExecutorStats
where
    F: Fn(usize, usize, bool) + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n_items).step_by(workers).collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let steals = &steals;
            let per_worker = &per_worker;
            let f = &f;
            scope.spawn(move || loop {
                // Own deque first (front), then sweep victims (back).
                let mut item = queues[me].lock().expect("queue lock").pop_front();
                let mut was_stolen = false;
                if item.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        if let Some(stolen) = queues[victim].lock().expect("queue lock").pop_back()
                        {
                            steals.fetch_add(1, Ordering::Relaxed);
                            item = Some(stolen);
                            was_stolen = true;
                            break;
                        }
                    }
                }
                match item {
                    Some(idx) => {
                        f(me, idx, was_stolen);
                        per_worker[me].fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            });
        }
    });

    ExecutorStats {
        per_worker: per_worker
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        steals: steals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_index_runs_exactly_once() {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let stats = run_indexed(4, n, |_w, i, _stolen| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.per_worker.iter().sum::<u64>(), n as u64);
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // Make worker 0's items slow: with round-robin seeding and no
        // stealing it would own a quarter of the items but most of the
        // runtime; stealing shifts its queue to idle workers.
        let n = 64;
        let flagged = AtomicUsize::new(0);
        let stats = run_indexed(4, n, |_w, i, stolen| {
            if stolen {
                flagged.fetch_add(1, Ordering::Relaxed);
            }
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        assert_eq!(stats.per_worker.iter().sum::<u64>(), n as u64);
        assert!(
            stats.steals > 0,
            "idle workers steal the slow worker's backlog"
        );
        assert_eq!(
            flagged.load(Ordering::Relaxed) as u64,
            stats.steals,
            "the per-item stolen flag agrees with the aggregate counter"
        );
    }

    #[test]
    fn single_worker_and_empty_batches_work() {
        let ran = AtomicUsize::new(0);
        let stats = run_indexed(1, 5, |w, _i, _stolen| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        assert_eq!(stats.per_worker, vec![5]);

        let stats = run_indexed(8, 0, |_w, _i, _stolen| panic!("no items"));
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 0);
    }

    #[test]
    fn worker_count_is_clamped_to_items() {
        let stats = run_indexed(16, 3, |_w, _i, _stolen| {});
        assert_eq!(stats.per_worker.len(), 3, "no more workers than items");
    }
}
