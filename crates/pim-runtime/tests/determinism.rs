//! The runtime's determinism contract, end to end.
//!
//! A job's `ExecReport` must be a pure function of the job itself:
//! submitting the same jobs in a different order, on a different number of
//! workers, or with the schedule cache disabled must produce byte-identical
//! serialized reports for every job. This is what makes the schedule cache
//! safe (a hit is indistinguishable from a fresh lowering) and what makes
//! sweep results reproducible across machines with different core counts.

use pim_baselines::PlatformKind;
use pim_device::OptLevel;
use pim_runtime::{Job, Runtime, RuntimeConfig};
use pim_workloads::{DnnKind, Kernel, WorkloadSpec};
use std::collections::HashMap;

/// A mixed batch: every platform family, duplicate (config, workload)
/// pairs to exercise cache sharing, and config overrides.
fn mixed_jobs() -> Vec<Job> {
    let mut jobs = vec![
        Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        )
        .named("atax-duplicate"),
        Job::new(
            WorkloadSpec::polybench(Kernel::Bicg, 0.02),
            PlatformKind::StPimE,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Mvt, 0.02),
            PlatformKind::Coruscant,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Gesummv, 0.02),
            PlatformKind::Elp2im,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Gemm, 0.01),
            PlatformKind::Felix,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Syrk, 0.01),
            PlatformKind::CpuRm,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Syr2k, 0.01),
            PlatformKind::CpuDram,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Gemm, 0.01),
            PlatformKind::Gpu,
        ),
        Job::new(WorkloadSpec::dnn(DnnKind::Mlp), PlatformKind::StPim),
        Job::new(
            WorkloadSpec::MatMul {
                m: 48,
                k: 32,
                n: 40,
            },
            PlatformKind::StPim,
        ),
        Job::new(
            WorkloadSpec::polybench(Kernel::Atax, 0.02),
            PlatformKind::StPim,
        )
        .with_opt(OptLevel::Distribute)
        .named("atax-distribute-only"),
    ];
    // A second copy of several jobs, renamed, so shuffled orders still
    // contain cache-colliding pairs far apart.
    let dup: Vec<Job> = jobs
        .iter()
        .take(4)
        .map(|j| j.clone().named(format!("{}-again", j.name)))
        .collect();
    jobs.extend(dup);
    jobs
}

/// Serialized report per job *name* for a given runtime configuration and
/// submission order. Names are unique in `mixed_jobs`.
fn reports_by_name(jobs: &[Job], workers: usize, cache: bool) -> HashMap<String, String> {
    let runtime = Runtime::new(RuntimeConfig {
        workers,
        cache_enabled: cache,
        ..RuntimeConfig::default()
    });
    let batch = runtime.run_batch(jobs);
    assert_eq!(batch.failed(), 0, "all mixed jobs succeed");
    batch
        .outcomes
        .into_iter()
        .map(|o| {
            let json = serde_json::to_string(o.report.as_ref().unwrap()).unwrap();
            (o.name, json)
        })
        .collect()
}

/// A deterministic order permutation (no RNG: reverse, then rotate).
fn shuffled(jobs: &[Job]) -> Vec<Job> {
    let mut out: Vec<Job> = jobs.to_vec();
    out.reverse();
    out.rotate_left(jobs.len() / 3);
    out
}

#[test]
fn reports_identical_across_order_workers_and_cache() {
    let jobs = mixed_jobs();
    let reference = reports_by_name(&jobs, 1, true);
    assert_eq!(reference.len(), jobs.len(), "names are unique");

    let variants = [
        ("shuffled order", reports_by_name(&shuffled(&jobs), 1, true)),
        ("4 workers", reports_by_name(&jobs, 4, true)),
        (
            "4 workers shuffled",
            reports_by_name(&shuffled(&jobs), 4, true),
        ),
        ("8 workers", reports_by_name(&jobs, 8, true)),
        ("cache off", reports_by_name(&jobs, 1, false)),
        ("cache off, 4 workers", reports_by_name(&jobs, 4, false)),
    ];
    for (label, variant) in variants {
        assert_eq!(variant.len(), reference.len(), "{label}");
        for (name, json) in &reference {
            assert_eq!(
                variant
                    .get(name)
                    .unwrap_or_else(|| panic!("{label}: missing {name}")),
                json,
                "{label}: job {name} must produce a byte-identical report"
            );
        }
    }
}

#[test]
fn warm_cache_reproduces_cold_reports_with_hits() {
    let jobs = mixed_jobs();
    let runtime = Runtime::new(RuntimeConfig {
        workers: 4,
        cache_enabled: true,
        ..RuntimeConfig::default()
    });
    let cold = runtime.run_batch(&jobs);
    let hits_after_cold = runtime.cache().hits();
    let warm = runtime.run_batch(&jobs);
    assert!(
        runtime.cache().hits() > hits_after_cold,
        "second batch hits the cache"
    );
    // Every PIM job hits on the warm batch: misses stop growing.
    let misses = runtime.cache().misses();
    runtime.run_batch(&jobs);
    assert_eq!(runtime.cache().misses(), misses, "fully warm");
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c, w, "warm outcome identical to cold for {}", c.name);
    }
}

#[test]
fn repeated_single_worker_runs_are_bitwise_stable() {
    let jobs = mixed_jobs();
    let a = reports_by_name(&jobs, 1, true);
    let b = reports_by_name(&jobs, 1, true);
    assert_eq!(a, b);
}
